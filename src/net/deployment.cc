#include "net/deployment.h"

#include <algorithm>
#include <cmath>

#include "support/require.h"

namespace bc::net {

using geometry::Box2;
using geometry::Point2;

Deployment::Deployment(std::vector<Point2> positions, Box2 field, Point2 depot,
                       double demand_j)
    : Deployment(std::move(positions), field, depot,
                 std::vector<double>()) {
  support::require(demand_j > 0.0, "sensor demand must be positive");
  for (Sensor& s : sensors_) s.demand_j = demand_j;
  max_demand_j_ = demand_j;
  uniform_demand_ = true;
}

Deployment::Deployment(std::vector<Point2> positions, Box2 field, Point2 depot,
                       std::vector<double> demands_j)
    : positions_(std::move(positions)), field_(field), depot_(depot) {
  support::require(!positions_.empty(), "deployment needs at least one sensor");
  // An empty demand vector is the delegation path of the uniform-demand
  // constructor, which fills demands afterwards.
  const bool explicit_demands = !demands_j.empty();
  support::require(!explicit_demands || demands_j.size() == positions_.size(),
                   "one demand per sensor");
  sensors_.reserve(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    support::require(field_.contains(positions_[i]),
                     "sensor position outside the field");
    const double demand = explicit_demands ? demands_j[i] : 1.0;
    support::require(demand > 0.0, "sensor demand must be positive");
    sensors_.push_back(Sensor{static_cast<SensorId>(i), positions_[i],
                              demand});
    max_demand_j_ = std::max(max_demand_j_, demand);
  }
  if (explicit_demands) {
    uniform_demand_ = std::all_of(
        sensors_.begin(), sensors_.end(),
        [&](const Sensor& s) { return s.demand_j == sensors_[0].demand_j; });
  }
}

Deployment with_demands(const Deployment& base,
                        std::vector<double> demands_j) {
  std::vector<Point2> positions(base.positions().begin(),
                                base.positions().end());
  return Deployment(std::move(positions), base.field(), base.depot(),
                    std::move(demands_j));
}

const Sensor& Deployment::sensor(SensorId id) const {
  support::require(id < sensors_.size(), "sensor id out of range");
  return sensors_[id];
}

Deployment uniform_random_deployment(std::size_t n, const FieldSpec& spec,
                                     support::Rng& rng) {
  support::require(n > 0, "need at least one sensor");
  std::vector<Point2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(spec.field.lo.x, spec.field.hi.x),
                         rng.uniform(spec.field.lo.y, spec.field.hi.y)});
  }
  return Deployment(std::move(positions), spec.field, spec.depot,
                    spec.demand_j);
}

Deployment clustered_deployment(std::size_t n, std::size_t clusters,
                                double sigma, const FieldSpec& spec,
                                support::Rng& rng) {
  support::require(n > 0, "need at least one sensor");
  support::require(clusters > 0, "need at least one cluster");
  support::require(sigma > 0.0, "cluster sigma must be positive");
  std::vector<Point2> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back({rng.uniform(spec.field.lo.x, spec.field.hi.x),
                       rng.uniform(spec.field.lo.y, spec.field.hi.y)});
  }
  std::vector<Point2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 center = centers[rng.below(clusters)];
    Point2 p;
    do {  // truncated normal: resample until inside the field
      p = {rng.gaussian(center.x, sigma), rng.gaussian(center.y, sigma)};
    } while (!spec.field.contains(p));
    positions.push_back(p);
  }
  return Deployment(std::move(positions), spec.field, spec.depot,
                    spec.demand_j);
}

Deployment jittered_grid_deployment(std::size_t n, double jitter_fraction,
                                    const FieldSpec& spec, support::Rng& rng) {
  support::require(n > 0, "need at least one sensor");
  support::require(jitter_fraction >= 0.0 && jitter_fraction <= 1.0,
                   "jitter fraction must be in [0, 1]");
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const double cell_w = spec.field.width() / static_cast<double>(side);
  const double cell_h = spec.field.height() / static_cast<double>(side);
  std::vector<Point2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gx = i % side;
    const std::size_t gy = i / side;
    const Point2 cell_center{
        spec.field.lo.x + (static_cast<double>(gx) + 0.5) * cell_w,
        spec.field.lo.y + (static_cast<double>(gy) + 0.5) * cell_h};
    const double jx = rng.uniform(-0.5, 0.5) * jitter_fraction * cell_w;
    const double jy = rng.uniform(-0.5, 0.5) * jitter_fraction * cell_h;
    Point2 p = cell_center + Point2{jx, jy};
    p.x = std::clamp(p.x, spec.field.lo.x, spec.field.hi.x);
    p.y = std::clamp(p.y, spec.field.lo.y, spec.field.hi.y);
    positions.push_back(p);
  }
  return Deployment(std::move(positions), spec.field, spec.depot,
                    spec.demand_j);
}

Deployment explicit_deployment(std::vector<Point2> positions, Point2 depot,
                               double demand_j) {
  support::require(!positions.empty(), "need at least one sensor");
  Box2 box = geometry::bounding_box(positions);
  box = box.expanded_to(depot);
  return Deployment(std::move(positions), box, depot, demand_j);
}

Deployment testbed_deployment() {
  std::vector<Point2> positions{{1.0, 1.0}, {1.0, 3.0}, {1.0, 4.0},
                                {2.0, 4.0}, {4.0, 4.0}, {4.0, 1.0}};
  return Deployment(std::move(positions), Box2{{0.0, 0.0}, {5.0, 5.0}},
                    /*depot=*/{0.0, 0.0}, /*demand_j=*/0.004);
}

}  // namespace bc::net
