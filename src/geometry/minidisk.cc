#include "geometry/minidisk.h"

#include <algorithm>

#include "support/require.h"

namespace bc::geometry {

namespace {

// Smallest disk with 0, 1, 2 or 3 prescribed boundary points.
Circle disk_from_boundary(std::span<const Point2> boundary) {
  switch (boundary.size()) {
    case 0:
      return Circle{{0.0, 0.0}, 0.0};
    case 1:
      return Circle{boundary[0], 0.0};
    case 2:
      return circle_from_two(boundary[0], boundary[1]);
    default: {
      const auto circ =
          circle_from_three(boundary[0], boundary[1], boundary[2]);
      if (circ.has_value()) return *circ;
      // Collinear support: the widest pair's diametral circle covers all.
      Circle best = circle_from_two(boundary[0], boundary[1]);
      for (std::size_t i = 0; i < boundary.size(); ++i) {
        for (std::size_t j = i + 1; j < boundary.size(); ++j) {
          const Circle c = circle_from_two(boundary[i], boundary[j]);
          if (c.radius > best.radius) best = c;
        }
      }
      return best;
    }
  }
}

// Welzl with move-to-front heuristic, written iteratively over a recursion
// on the boundary set only (depth <= 3).
Circle welzl(std::vector<Point2>& pts, std::size_t n,
             std::vector<Point2>& boundary) {
  if (n == 0 || boundary.size() == 3) {
    return disk_from_boundary(boundary);
  }
  // Process points in order; on violation, recurse with the violator pinned
  // to the boundary and move it to the front (speeds up future passes).
  Circle disk = disk_from_boundary(boundary);
  for (std::size_t i = 0; i < n; ++i) {
    if (disk.contains(pts[i])) continue;
    boundary.push_back(pts[i]);
    disk = welzl(pts, i, boundary);
    boundary.pop_back();
    // Move-to-front.
    const Point2 violator = pts[i];
    for (std::size_t j = i; j > 0; --j) pts[j] = pts[j - 1];
    pts[0] = violator;
  }
  return disk;
}

}  // namespace

Circle smallest_enclosing_disk(std::span<const Point2> points,
                               bc::support::Rng rng) {
  bc::support::require(!points.empty(),
                       "smallest_enclosing_disk of empty point set");
  std::vector<Point2> pts(points.begin(), points.end());
  rng.shuffle(pts.begin(), pts.end());
  std::vector<Point2> boundary;
  boundary.reserve(3);
  return welzl(pts, pts.size(), boundary);
}

bool fits_in_radius(std::span<const Point2> points, double r,
                    bc::support::Rng rng) {
  bc::support::require(r >= 0.0, "fits_in_radius needs r >= 0");
  if (points.empty()) return true;
  const Circle sed = smallest_enclosing_disk(points, rng);
  return sed.radius <= r * (1.0 + 1e-9) + 1e-12;
}

Circle smallest_enclosing_disk_brute(std::span<const Point2> points) {
  bc::support::require(!points.empty(),
                       "smallest_enclosing_disk_brute of empty point set");
  const auto covers_all = [&](const Circle& c) {
    return std::all_of(points.begin(), points.end(),
                       [&](Point2 p) { return c.contains(p, 1e-7); });
  };
  Circle best{points[0], 0.0};
  bool found = false;
  const auto consider = [&](const Circle& c) {
    if (!covers_all(c)) return;
    if (!found || c.radius < best.radius) {
      best = c;
      found = true;
    }
  };
  consider(Circle{points[0], 0.0});
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      consider(circle_from_two(points[i], points[j]));
      for (std::size_t k = j + 1; k < points.size(); ++k) {
        const auto c = circle_from_three(points[i], points[j], points[k]);
        if (c.has_value()) consider(*c);
      }
    }
  }
  bc::support::ensure(found, "brute-force SED must find a covering disk");
  return best;
}

}  // namespace bc::geometry
