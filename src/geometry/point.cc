#include "geometry/point.h"

#include <algorithm>
#include <ostream>

namespace bc::geometry {

Point2 Point2::normalized() const {
  const double n = norm();
  if (n == 0.0) return *this;
  return {x / n, y / n};
}

double distance(Point2 a, Point2 b) { return (a - b).norm(); }

bool almost_equal(Point2 a, Point2 b, double tolerance) {
  return distance(a, b) <= tolerance;
}

std::ostream& operator<<(std::ostream& os, Point2 p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

Box2 Box2::expanded_to(Point2 p) const {
  return Box2{{std::min(lo.x, p.x), std::min(lo.y, p.y)},
              {std::max(hi.x, p.x), std::max(hi.y, p.y)}};
}

}  // namespace bc::geometry
