// Line-segment utilities: projection, point-segment distance.
//
// The CSS planner's "substitute" move slides a stop toward the chord
// between its neighbours; these helpers provide the projections it needs.

#ifndef BUNDLECHARGE_GEOMETRY_SEGMENT_H_
#define BUNDLECHARGE_GEOMETRY_SEGMENT_H_

#include "geometry/point.h"

namespace bc::geometry {

struct Segment {
  Point2 a;
  Point2 b;

  double length() const { return distance(a, b); }
};

// Parameter t in [0, 1] of the point on `seg` closest to `p`.
double closest_parameter(const Segment& seg, Point2 p);

// The point on `seg` closest to `p`.
Point2 closest_point(const Segment& seg, Point2 p);

// Euclidean distance from `p` to the segment.
double distance_to_segment(const Segment& seg, Point2 p);

// Sign of the cross product (b - a) x (c - a): +1 left turn, -1 right
// turn, 0 collinear. Exact for the sign-of-double comparison it is used
// for (no epsilon; callers wanting robustness pre-perturb their inputs).
int orientation(Point2 a, Point2 b, Point2 c);

// True when the closed segments intersect, including touching at an
// endpoint or overlapping collinearly. The graph metric treats obstacle
// segments as walls, so a sight-line grazing a wall endpoint counts as
// blocked; place waypoints strictly off obstacle endpoints.
bool segments_intersect(const Segment& s1, const Segment& s2);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_SEGMENT_H_
