#include "geometry/ellipse.h"

#include <cmath>

namespace bc::geometry {

Ellipse Ellipse::through_point(Point2 f1, Point2 f2, Point2 p) {
  return Ellipse{f1, f2, focal_sum(f1, f2, p) / 2.0};
}

double Ellipse::level(Point2 p) const {
  return focal_sum(focus_a, focus_b, p) - 2.0 * semi_major;
}

double Ellipse::semi_minor() const {
  const double c = focal_distance() / 2.0;
  const double b2 = semi_major * semi_major - c * c;
  return b2 > 0.0 ? std::sqrt(b2) : 0.0;
}

double focal_sum(Point2 a, Point2 b, Point2 p) {
  return distance(a, p) + distance(p, b);
}

}  // namespace bc::geometry
