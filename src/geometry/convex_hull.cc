#include "geometry/convex_hull.h"

#include <algorithm>

namespace bc::geometry {

std::vector<Point2> convex_hull(std::span<const Point2> points) {
  std::vector<Point2> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), [](Point2 a, Point2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() <= 2) return pts;

  std::vector<Point2> hull(2 * pts.size());
  std::size_t k = 0;
  // Lower hull.
  for (const Point2 p : pts) {
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).cross(p - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = p;
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (auto it = pts.rbegin() + 1; it != pts.rend(); ++it) {
    while (k >= lower &&
           (hull[k - 1] - hull[k - 2]).cross(*it - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = *it;
  }
  hull.resize(k - 1);
  return hull;
}

double hull_perimeter(std::span<const Point2> hull) {
  if (hull.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    total += distance(hull[i], hull[(i + 1) % hull.size()]);
  }
  // For a 2-point "hull" the loop already counts the out-and-back distance.
  return total;
}

}  // namespace bc::geometry
