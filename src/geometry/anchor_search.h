// Optimal point on a circle minimising the detour through it —
// the computational core of the paper's Theorems 4 and 5.
//
// Given the previous tour stop A, the next stop B, and a circle of radius d
// around the current anchor C, BC-OPT must find the point P on the circle
// minimising |AP| + |PB|. Theorem 4 identifies P as the tangency point of
// the smallest confocal ellipse (foci A, B) touching the circle; Theorem 5
// shows that at P the radius CP bisects the angle ∠APB, which lets the
// point be located by a 1-D root search in O(log h) instead of scanning h²
// grid positions.
//
// We expose both the production search (coarse angular scan to bracket the
// bisector-condition sign change, then bisection on the derivative) and a
// brute-force reference used by tests.

#ifndef BUNDLECHARGE_GEOMETRY_ANCHOR_SEARCH_H_
#define BUNDLECHARGE_GEOMETRY_ANCHOR_SEARCH_H_

#include <cstddef>

#include "geometry/point.h"

namespace bc::geometry {

struct AnchorSearchResult {
  Point2 point;       // argmin over the circle
  double detour = 0;  // |A point| + |point B|
};

struct AnchorSearchOptions {
  // Number of coarse samples used to bracket the optimum before the
  // bisection refinement. 32 is ample: the objective has at most two local
  // minima on the circle.
  std::size_t coarse_samples = 32;
  // Bisection terminates when the angular bracket is below this (radians).
  double angle_tolerance = 1e-10;
};

// Minimises |A P| + |P B| over P on the circle centred at `center` with
// radius `radius`. Preconditions: radius >= 0. When radius == 0 the answer
// is `center` itself. Works for any placement of A/B including A == B and
// foci inside the circle.
AnchorSearchResult optimal_point_on_circle(Point2 a, Point2 b, Point2 center,
                                           double radius,
                                           const AnchorSearchOptions& options =
                                               AnchorSearchOptions{});

// O(h) reference: evaluates `samples` evenly spaced angles and returns the
// best. Used by property tests to validate the bisection search.
AnchorSearchResult optimal_point_on_circle_brute(Point2 a, Point2 b,
                                                 Point2 center, double radius,
                                                 std::size_t samples = 20000);

// Theorem 5 residual: difference of cosines between the inward radius
// direction and the two focal directions at P (zero when CP bisects ∠APB).
// Exposed for tests that validate the bisector property at the optimum.
double bisector_residual(Point2 a, Point2 b, Point2 center, Point2 p);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_ANCHOR_SEARCH_H_
