#include "geometry/segment.h"

#include <algorithm>

namespace bc::geometry {

double closest_parameter(const Segment& seg, Point2 p) {
  const Point2 d = seg.b - seg.a;
  const double len2 = d.norm_squared();
  if (len2 == 0.0) return 0.0;  // degenerate segment
  const double t = (p - seg.a).dot(d) / len2;
  return std::clamp(t, 0.0, 1.0);
}

Point2 closest_point(const Segment& seg, Point2 p) {
  return lerp(seg.a, seg.b, closest_parameter(seg, p));
}

double distance_to_segment(const Segment& seg, Point2 p) {
  return distance(p, closest_point(seg, p));
}

int orientation(Point2 a, Point2 b, Point2 c) {
  const double cross =
      (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (cross > 0.0) return 1;
  if (cross < 0.0) return -1;
  return 0;
}

namespace {

// Collinear a,b,c: is c within the bounding box of [a,b]?
bool on_segment(Point2 a, Point2 b, Point2 c) {
  return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) {
  const int o1 = orientation(s1.a, s1.b, s2.a);
  const int o2 = orientation(s1.a, s1.b, s2.b);
  const int o3 = orientation(s2.a, s2.b, s1.a);
  const int o4 = orientation(s2.a, s2.b, s1.b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(s1.a, s1.b, s2.a)) return true;
  if (o2 == 0 && on_segment(s1.a, s1.b, s2.b)) return true;
  if (o3 == 0 && on_segment(s2.a, s2.b, s1.a)) return true;
  if (o4 == 0 && on_segment(s2.a, s2.b, s1.b)) return true;
  return false;
}

}  // namespace bc::geometry
