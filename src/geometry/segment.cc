#include "geometry/segment.h"

#include <algorithm>

namespace bc::geometry {

double closest_parameter(const Segment& seg, Point2 p) {
  const Point2 d = seg.b - seg.a;
  const double len2 = d.norm_squared();
  if (len2 == 0.0) return 0.0;  // degenerate segment
  const double t = (p - seg.a).dot(d) / len2;
  return std::clamp(t, 0.0, 1.0);
}

Point2 closest_point(const Segment& seg, Point2 p) {
  return lerp(seg.a, seg.b, closest_parameter(seg, p));
}

double distance_to_segment(const Segment& seg, Point2 p) {
  return distance(p, closest_point(seg, p));
}

}  // namespace bc::geometry
