// Circles: containment, circumcircles, and the two radius-r circles
// through a point pair.
//
// Candidate charging bundles are enumerated from pair-circles (every
// maximal set of sensors coverable by a radius-r disk admits a covering
// disk with two sensors on its boundary), so `circles_through_pair` is the
// geometric core of bundle generation.

#ifndef BUNDLECHARGE_GEOMETRY_CIRCLE_H_
#define BUNDLECHARGE_GEOMETRY_CIRCLE_H_

#include <optional>
#include <utility>

#include "geometry/point.h"

namespace bc::geometry {

struct Circle {
  Point2 center;
  double radius = 0.0;

  // Containment with a small relative slack so that boundary points
  // produced by the constructions below always test inside.
  bool contains(Point2 p, double tolerance = 1e-9) const;
};

// Smallest circle through two points (diameter = |ab|).
Circle circle_from_two(Point2 a, Point2 b);

// Circumcircle through three points. Returns nullopt when the points are
// (numerically) collinear, in which case no finite circumcircle exists.
std::optional<Circle> circle_from_three(Point2 a, Point2 b, Point2 c);

// The centers of the (up to two) circles of radius `r` passing through both
// `a` and `b`. Empty when |ab| > 2r; a single (duplicated) center when
// |ab| == 2r.
std::optional<std::pair<Point2, Point2>> circles_through_pair(Point2 a,
                                                              Point2 b,
                                                              double r);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_CIRCLE_H_
