// Welzl's smallest enclosing disk — the paper's Algorithm 1 (MinDisk).
//
// The planner needs both the constructive form (the anchor point of a
// charging bundle is the SED center, Definition 2/3) and a decisional form
// ("can this sensor set be a bundle of radius <= r?"). Welzl's randomised
// incremental algorithm runs in expected linear time; we implement the
// classic move-to-front variant, which is robust and allocation-free after
// the initial copy.

#ifndef BUNDLECHARGE_GEOMETRY_MINIDISK_H_
#define BUNDLECHARGE_GEOMETRY_MINIDISK_H_

#include <span>
#include <vector>

#include "geometry/circle.h"
#include "geometry/point.h"
#include "support/rng.h"

namespace bc::geometry {

// Smallest enclosing disk of a non-empty point set. Deterministic for a
// given `rng` seed; the default seed makes repeated calls reproducible.
// Expected O(n) time.
Circle smallest_enclosing_disk(std::span<const Point2> points,
                               bc::support::Rng rng = bc::support::Rng(42));

// Decisional MinDisk: true iff the SED radius of `points` is <= r (with a
// tiny tolerance so radius == r sets are accepted).
bool fits_in_radius(std::span<const Point2> points, double r,
                    bc::support::Rng rng = bc::support::Rng(42));

// Brute-force O(n^4) reference used by tests: tries all 2- and 3-point
// support sets. Precondition: !points.empty().
Circle smallest_enclosing_disk_brute(std::span<const Point2> points);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_MINIDISK_H_
