// Convex hull (Andrew's monotone chain).
//
// Used as a lower-bound oracle in TSP tests (the optimal tour visits hull
// vertices in hull order) and by examples for plotting field outlines.

#ifndef BUNDLECHARGE_GEOMETRY_CONVEX_HULL_H_
#define BUNDLECHARGE_GEOMETRY_CONVEX_HULL_H_

#include <span>
#include <vector>

#include "geometry/point.h"

namespace bc::geometry {

// Returns hull vertices in counter-clockwise order, starting from the
// lexicographically smallest point. Collinear points on hull edges are
// dropped. Duplicates are tolerated. Empty input yields an empty hull.
std::vector<Point2> convex_hull(std::span<const Point2> points);

// Perimeter of the hull polygon (0 for fewer than 2 vertices; twice the
// segment length for exactly 2).
double hull_perimeter(std::span<const Point2> hull);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_CONVEX_HULL_H_
