// 2-D point/vector algebra and axis-aligned boxes.
//
// All planner and simulator code works in a flat Euclidean plane, matching
// the paper's obstacle-free field model (§III-B). Points are value types
// with double coordinates; `Point2` doubles as a displacement vector.

#ifndef BUNDLECHARGE_GEOMETRY_POINT_H_
#define BUNDLECHARGE_GEOMETRY_POINT_H_

#include <cmath>
#include <iosfwd>

namespace bc::geometry {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Point2() = default;
  constexpr Point2(double px, double py) : x(px), y(py) {}

  constexpr Point2 operator+(Point2 other) const {
    return {x + other.x, y + other.y};
  }
  constexpr Point2 operator-(Point2 other) const {
    return {x - other.x, y - other.y};
  }
  constexpr Point2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Point2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Point2& operator+=(Point2 other) {
    x += other.x;
    y += other.y;
    return *this;
  }
  constexpr Point2& operator-=(Point2 other) {
    x -= other.x;
    y -= other.y;
    return *this;
  }
  friend constexpr Point2 operator*(double s, Point2 p) { return p * s; }
  friend constexpr bool operator==(Point2 a, Point2 b) {
    return a.x == b.x && a.y == b.y;
  }

  constexpr double dot(Point2 other) const { return x * other.x + y * other.y; }
  // 2-D cross product (z-component); positive when `other` is CCW of *this.
  constexpr double cross(Point2 other) const {
    return x * other.y - y * other.x;
  }
  constexpr double norm_squared() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }
  // Unit vector in the same direction; the zero vector maps to itself.
  Point2 normalized() const;
  // Rotated 90 degrees counter-clockwise.
  constexpr Point2 perp() const { return {-y, x}; }
};

// Euclidean distance between two points.
double distance(Point2 a, Point2 b);
// Squared distance (no sqrt); preferred in comparisons.
constexpr double distance_squared(Point2 a, Point2 b) {
  return (a - b).norm_squared();
}
// Midpoint of the segment ab.
constexpr Point2 midpoint(Point2 a, Point2 b) {
  return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}
// Linear interpolation: t=0 gives a, t=1 gives b.
constexpr Point2 lerp(Point2 a, Point2 b, double t) {
  return a + (b - a) * t;
}
// True when |a-b| <= tolerance in each coordinate sense (Euclidean).
bool almost_equal(Point2 a, Point2 b, double tolerance = 1e-9);

std::ostream& operator<<(std::ostream& os, Point2 p);

// Axis-aligned bounding box; used for deployment fields and grid covers.
struct Box2 {
  Point2 lo;
  Point2 hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr double area() const { return width() * height(); }
  constexpr Point2 center() const { return midpoint(lo, hi); }
  constexpr bool contains(Point2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  // Smallest box containing both this box and `p`.
  Box2 expanded_to(Point2 p) const;
};

// Bounding box of a non-empty point range.
template <typename Range>
Box2 bounding_box(const Range& points) {
  auto it = points.begin();
  Box2 box{*it, *it};
  for (++it; it != points.end(); ++it) box = box.expanded_to(*it);
  return box;
}

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_POINT_H_
