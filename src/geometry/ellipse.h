// Ellipses defined by their two foci.
//
// Theorem 4 of the paper characterises the optimal relocated anchor point
// as the tangency point between a circle around the bundle centre and the
// smallest ellipse whose foci are the neighbouring tour stops. These
// helpers express that family of confocal ellipses: an ellipse is the level
// set { p : |p f1| + |p f2| = 2a }.

#ifndef BUNDLECHARGE_GEOMETRY_ELLIPSE_H_
#define BUNDLECHARGE_GEOMETRY_ELLIPSE_H_

#include "geometry/point.h"

namespace bc::geometry {

struct Ellipse {
  Point2 focus_a;
  Point2 focus_b;
  double semi_major = 0.0;  // a; the level value is 2a

  // The confocal ellipse through `p` (degenerate if p is on the focal
  // segment; still well defined as a level set).
  static Ellipse through_point(Point2 f1, Point2 f2, Point2 p);

  // Sum of focal distances of `p` minus the level value 2a: negative
  // inside, zero on, positive outside the ellipse.
  double level(Point2 p) const;

  double focal_distance() const { return distance(focus_a, focus_b); }
  // Semi-minor axis b = sqrt(a^2 - c^2) with c = half focal distance.
  double semi_minor() const;
  Point2 center() const { return midpoint(focus_a, focus_b); }
};

// Sum of distances |a p| + |p b| — the tour-detour cost of visiting `p`
// between stops `a` and `b`.
double focal_sum(Point2 a, Point2 b, Point2 p);

}  // namespace bc::geometry

#endif  // BUNDLECHARGE_GEOMETRY_ELLIPSE_H_
