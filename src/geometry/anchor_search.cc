#include "geometry/anchor_search.h"

#include <cmath>
#include <numbers>

#include "geometry/ellipse.h"
#include "obs/metrics.h"
#include "support/require.h"

namespace bc::geometry {

namespace {

Point2 on_circle(Point2 center, double radius, double theta) {
  return {center.x + radius * std::cos(theta),
          center.y + radius * std::sin(theta)};
}

// Derivative of theta -> |A P(theta)| + |P(theta) B| (up to the positive
// factor `radius`). A root with positive curvature is a local minimum; by
// Theorem 5 the root satisfies the bisector property.
double detour_derivative(Point2 a, Point2 b, Point2 center, double radius,
                         double theta) {
  const Point2 p = on_circle(center, radius, theta);
  const Point2 tangent{-std::sin(theta), std::cos(theta)};
  double d = 0.0;
  const double da = distance(a, p);
  if (da > 0.0) d += (p - a).dot(tangent) / da;
  const double db = distance(b, p);
  if (db > 0.0) d += (p - b).dot(tangent) / db;
  return d;
}

}  // namespace

double bisector_residual(Point2 a, Point2 b, Point2 center, Point2 p) {
  const Point2 w = (center - p).normalized();
  const Point2 u = (a - p).normalized();
  const Point2 v = (b - p).normalized();
  return w.dot(u) - w.dot(v);
}

AnchorSearchResult optimal_point_on_circle(Point2 a, Point2 b, Point2 center,
                                           double radius,
                                           const AnchorSearchOptions& options) {
  bc::support::require(radius >= 0.0,
                       "optimal_point_on_circle needs radius >= 0");
  bc::support::require(options.coarse_samples >= 4,
                       "need at least 4 coarse samples");
  if (radius == 0.0) {
    return AnchorSearchResult{center, focal_sum(a, b, center)};
  }

  // Coarse scan: find the best sampled angle. The objective is smooth with
  // at most two local minima, so the global optimum lies within one sample
  // step of the best sample.
  const double two_pi = 2.0 * std::numbers::pi;
  const double step = two_pi / static_cast<double>(options.coarse_samples);
  double best_theta = 0.0;
  double best_value = focal_sum(a, b, on_circle(center, radius, 0.0));
  for (std::size_t i = 1; i < options.coarse_samples; ++i) {
    const double theta = step * static_cast<double>(i);
    const double value = focal_sum(a, b, on_circle(center, radius, theta));
    if (value < best_value) {
      best_value = value;
      best_theta = theta;
    }
  }

  // Refine inside [best - step, best + step] — this bracket contains the
  // minimum, so the derivative changes sign across it. Bisection on the
  // derivative realises the paper's O(log h) search of Theorem 5; if the
  // derivative does not bracket a root (flat/degenerate geometry, e.g.
  // A == B == center), fall back to golden-section on the objective.
  double lo = best_theta - step;
  double hi = best_theta + step;
  const double d_lo = detour_derivative(a, b, center, radius, lo);
  const double d_hi = detour_derivative(a, b, center, radius, hi);

  // This runs per tour edge inside hot solver loops: counters only (one
  // batched flush below), no trace spans.
  std::uint64_t bisection_iters = 0;
  std::uint64_t golden_iters = 0;
  const bool bracketed = d_lo < 0.0 && d_hi > 0.0;
  double theta = best_theta;
  if (bracketed) {
    while (hi - lo > options.angle_tolerance) {
      ++bisection_iters;
      const double mid = (lo + hi) / 2.0;
      if (detour_derivative(a, b, center, radius, mid) < 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    theta = (lo + hi) / 2.0;
  } else {
    constexpr double kInvPhi = 0.6180339887498949;
    double x1 = hi - kInvPhi * (hi - lo);
    double x2 = lo + kInvPhi * (hi - lo);
    double f1 = focal_sum(a, b, on_circle(center, radius, x1));
    double f2 = focal_sum(a, b, on_circle(center, radius, x2));
    while (hi - lo > options.angle_tolerance) {
      ++golden_iters;
      if (f1 <= f2) {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - kInvPhi * (hi - lo);
        f1 = focal_sum(a, b, on_circle(center, radius, x1));
      } else {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + kInvPhi * (hi - lo);
        f2 = focal_sum(a, b, on_circle(center, radius, x2));
      }
    }
    theta = (lo + hi) / 2.0;
  }
  {
    static const obs::Counter calls("anchor.calls");
    static const obs::Counter bisections("anchor.bisection_iters");
    static const obs::Counter goldens("anchor.golden_iters");
    static const obs::Counter fallbacks("anchor.golden_fallbacks");
    calls.add();
    bisections.add(bisection_iters);
    goldens.add(golden_iters);
    fallbacks.add(bracketed ? 0 : 1);
  }

  const Point2 p = on_circle(center, radius, theta);
  const double value = focal_sum(a, b, p);
  // Guard against a refinement that somehow regressed below the coarse
  // sample (cannot happen, but keep the cheaper answer if it did).
  if (value <= best_value) {
    return AnchorSearchResult{p, value};
  }
  return AnchorSearchResult{on_circle(center, radius, best_theta), best_value};
}

AnchorSearchResult optimal_point_on_circle_brute(Point2 a, Point2 b,
                                                 Point2 center, double radius,
                                                 std::size_t samples) {
  bc::support::require(samples >= 1, "need at least one sample");
  const double two_pi = 2.0 * std::numbers::pi;
  AnchorSearchResult best{on_circle(center, radius, 0.0), 0.0};
  best.detour = focal_sum(a, b, best.point);
  for (std::size_t i = 1; i < samples; ++i) {
    const double theta = two_pi * static_cast<double>(i) /
                         static_cast<double>(samples);
    const Point2 p = on_circle(center, radius, theta);
    const double value = focal_sum(a, b, p);
    if (value < best.detour) {
      best = AnchorSearchResult{p, value};
    }
  }
  return best;
}

}  // namespace bc::geometry
