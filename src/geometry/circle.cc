#include "geometry/circle.h"

#include <cmath>

namespace bc::geometry {

bool Circle::contains(Point2 p, double tolerance) const {
  const double slack = radius * tolerance + tolerance;
  return distance(center, p) <= radius + slack;
}

Circle circle_from_two(Point2 a, Point2 b) {
  return Circle{midpoint(a, b), distance(a, b) / 2.0};
}

std::optional<Circle> circle_from_three(Point2 a, Point2 b, Point2 c) {
  const Point2 ab = b - a;
  const Point2 ac = c - a;
  const double det = 2.0 * ab.cross(ac);
  if (std::abs(det) < 1e-12) return std::nullopt;
  const double ab2 = ab.norm_squared();
  const double ac2 = ac.norm_squared();
  const Point2 center{a.x + (ac.y * ab2 - ab.y * ac2) / det,
                      a.y + (ab.x * ac2 - ac.x * ab2) / det};
  return Circle{center, distance(center, a)};
}

std::optional<std::pair<Point2, Point2>> circles_through_pair(Point2 a,
                                                              Point2 b,
                                                              double r) {
  const double half = distance(a, b) / 2.0;
  if (half > r) return std::nullopt;
  const Point2 mid = midpoint(a, b);
  const double offset = std::sqrt(std::max(0.0, r * r - half * half));
  const Point2 dir = (b - a).normalized().perp();
  return std::make_pair(mid + dir * offset, mid - dir * offset);
}

}  // namespace bc::geometry
