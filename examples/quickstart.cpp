// Quickstart: plan a charging tour for a random 100-sensor field with all
// four algorithms and print the energy breakdown of each.
//
//   ./quickstart [--nodes=100] [--radius=20] [--seed=7]

#include <iostream>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "quickstart: compare SC/CSS/BC/BC-OPT on one random deployment");
  flags.define_int("nodes", 100, "number of sensors");
  flags.define_double("radius", 20.0, "bundle radius r (metres)");
  flags.define_int("seed", 7, "deployment RNG seed");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.planner.bundle_radius = flags.get_double("radius");

  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  std::cout << "bundlecharge quickstart: " << deployment.size()
            << " sensors, field " << profile.field.field.width() << " x "
            << profile.field.field.height() << " m, r = "
            << profile.planner.bundle_radius << " m\n\n";

  const bc::core::BundleChargingPlanner planner(profile);
  bc::support::Table table({"algorithm", "stops", "tour [m]", "move [J]",
                            "charge time [s]", "charge [J]", "total [J]",
                            "min demand frac"});
  for (const bc::tour::Algorithm algorithm :
       {bc::tour::Algorithm::kSc, bc::tour::Algorithm::kCss,
        bc::tour::Algorithm::kBc, bc::tour::Algorithm::kBcOpt}) {
    const bc::core::PlanResult result = planner.plan(deployment, algorithm);
    const bc::sim::PlanMetrics& m = result.metrics;
    table.add_row({std::string(bc::tour::to_string(algorithm)),
                   bc::support::Table::num(
                       static_cast<long long>(m.num_stops)),
                   bc::support::Table::num(m.tour_length_m, 0),
                   bc::support::Table::num(m.move_energy_j, 0),
                   bc::support::Table::num(m.charge_time_s, 0),
                   bc::support::Table::num(m.charge_energy_j, 0),
                   bc::support::Table::num(m.total_energy_j, 0),
                   bc::support::Table::num(m.min_demand_fraction, 3)});
  }
  table.print(std::cout);

  std::cout << "\nBC-OPT should post the lowest total energy; the paper's "
               "Fig. 12(a) reports ~38 % below SC at favourable radii.\n";
  return 0;
}
