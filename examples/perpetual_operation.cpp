// Example: can the network run forever? — the paper's §I motivation
// ("the lifetime of a WRSN can be extended infinitely for perpetual
// operations").
//
// Simulates weeks of battery drain with charging missions triggered
// whenever a battery falls below a threshold, and reports, per planning
// algorithm: whether the network survived, how many missions fired, how
// much charger energy they used, and the maximum sensor drain each
// algorithm can sustain perpetually. Exposes two real effects: SC's
// quick per-sensor missions sustain the highest drains (short missions =
// little drain while the charger is busy), and bundling pays off on
// charger energy exactly when per-mission deficits are small relative to
// movement (small batteries / frequent missions) — with deep deficits,
// charging cost dominates and the optimal bundle radius collapses
// (compare bench_ablation's Ablation 3).
//
// With --faults, additionally stress the loop against an injected fault
// world (sensor deaths, outages, degraded harvesters, position noise, a
// capped charger battery) and print survival curves with and without
// online replanning — the disruption-tolerance counterpart of the clean
// perpetual-operation story.
//
//   ./perpetual_operation [--nodes=60] [--radius=60] [--days=14]
//   ./perpetual_operation --faults [--death-rate=0.1] [--eff-loss=0.3]
//                         [--pos-noise=2] [--mc-battery=8000] [--no-replan]

#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/bundlecharge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/lifetime.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

// Minimal observability wiring (the bench harness has the full-featured
// version in bench/bench_util.h; examples carry their own copy so they
// stay includable without the bench tree). Installs a trace journal for
// main()'s lifetime and writes the journal / metrics snapshot on exit.
class ObsOutputs {
 public:
  explicit ObsOutputs(const bc::support::CliFlags& flags)
      : trace_path_(flags.get_string("trace-out")),
        metrics_path_(flags.get_string("metrics-out")) {
    const std::string clock = flags.get_string("trace-clock");
    if (clock != "steady" && clock != "virtual") {
      std::cerr << "invalid --trace-clock (want steady|virtual): " << clock
                << "\n";
      std::exit(1);
    }
    if (!trace_path_.empty()) {
      journal_.emplace(clock == "virtual"
                           ? std::make_unique<bc::obs::VirtualTraceClock>()
                           : nullptr);
      scope_.emplace(journal_.value());
    }
  }

  ~ObsOutputs() {
    scope_.reset();
    if (journal_.has_value()) {
      auto written = journal_->write(trace_path_);
      if (!written) {
        std::cerr << "trace write failed: "
                  << bc::support::describe(written.fault()) << "\n";
      }
    }
    if (!metrics_path_.empty()) {
      auto written = bc::obs::write_metrics_json(
          metrics_path_, bc::obs::global_metrics().snapshot());
      if (!written) {
        std::cerr << "metrics write failed: "
                  << bc::support::describe(written.fault()) << "\n";
      }
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::optional<bc::obs::TraceJournal> journal_;
  std::optional<bc::obs::ScopedTraceJournal> scope_;
};

// Runs the faulted loop under one degradation posture and returns stats.
bc::sim::FaultLifetimeStats run_faulted(
    const bc::net::Deployment& deployment,
    const bc::sim::FaultLifetimeConfig& config) {
  auto result = bc::sim::simulate_lifetime_with_faults(deployment, config);
  if (!result) {
    std::cerr << "fault simulation failed: "
              << bc::support::describe(result.fault()) << "\n";
    std::exit(1);
  }
  return result.value();
}

void print_survival(const char* label,
                    const std::vector<bc::sim::SurvivalPoint>& curve) {
  // Down-sample the event curve to ~12 points so it reads as a sparkline.
  std::cout << "  " << label << ": ";
  const std::size_t step = std::max<std::size_t>(1, curve.size() / 12);
  for (std::size_t i = 0; i < curve.size(); i += step) {
    std::cout << static_cast<int>(curve[i].alive_fraction * 100.0 + 0.5)
              << "% ";
  }
  if ((curve.size() - 1) % step != 0) {
    std::cout << static_cast<int>(curve.back().alive_fraction * 100.0 + 0.5)
              << "%";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "perpetual_operation: WRSN lifetime under periodic charging");
  flags.define_int("nodes", 60, "number of sensors");
  flags.define_double("radius", 60.0, "bundle radius (m)");
  flags.define_double("days", 14.0, "simulated horizon (days)");
  flags.define_double("drain-mw", 0.05, "per-sensor drain (mW)");
  flags.define_double("battery", 4.0, "per-sensor battery capacity (J)");
  flags.define_int("seed", 7, "RNG seed");
  flags.define_bool("faults", false,
                    "inject faults and compare degradation policies");
  flags.define_double("death-rate", 0.1,
                      "permanent sensor deaths per sensor-day (--faults)");
  flags.define_double("outage-rate", 0.5,
                      "transient outages per sensor-day (--faults)");
  flags.define_double("eff-loss", 0.3,
                      "max harvester efficiency loss, 0..1 (--faults)");
  flags.define_double("pos-noise", 2.0,
                      "survey position noise stddev (m, --faults)");
  flags.define_double("mc-battery", 0.0,
                      "charger battery per mission (J, 0 = unlimited)");
  flags.define_bool("no-replan", false,
                    "skip the with-replanning run (--faults)");
  bc::support::define_budget_flags(flags);  // --deadline, --node-budget
  flags.define_string("trace-out", "",
                      "write a JSONL trace journal here (empty = off)");
  flags.define_string("metrics-out", "",
                      "write a metrics snapshot JSON here (empty = off)");
  flags.define_string("trace-clock", "steady",
                      "trace timestamps: steady|virtual (virtual is "
                      "deterministic, for diffing runs)");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;
  ObsOutputs obs(flags);

  const bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  bc::sim::LifetimeConfig config;
  config.planner = profile.planner;
  config.planner.bundle_radius = flags.get_double("radius");
  // Every planning call inside the lifetime loop (including online
  // replans) runs under this budget and degrades anytime-style on a trip.
  config.planner.budget = bc::support::budget_from_flags(flags);
  config.evaluation = profile.evaluation;
  config.horizon_s = flags.get_double("days") * 24.0 * 3600.0;
  config.drain_w = {flags.get_double("drain-mw") * 1e-3};
  config.battery_capacity_j = flags.get_double("battery");
  config.trigger_fraction = 0.5;

  std::cout << "WRSN lifetime: " << deployment.size() << " sensors, "
            << flags.get_double("drain-mw") << " mW drain each, "
            << flags.get_double("days") << " days simulated\n\n";

  if (flags.get_bool("faults")) {
    bc::sim::FaultLifetimeConfig fault_config;
    fault_config.base = config;
    fault_config.base.algorithm = bc::tour::Algorithm::kBcOpt;
    fault_config.faults.seed =
        static_cast<std::uint64_t>(flags.get_int("seed"));
    fault_config.faults.permanent_death_rate_per_day =
        flags.get_double("death-rate");
    fault_config.faults.transient_outage_rate_per_day =
        flags.get_double("outage-rate");
    fault_config.faults.max_efficiency_loss = flags.get_double("eff-loss");
    fault_config.faults.position_noise_stddev_m =
        flags.get_double("pos-noise");
    fault_config.faults.mc_battery_capacity_j =
        flags.get_double("mc-battery");
    fault_config.faults.horizon_s = fault_config.base.horizon_s;

    std::cout << "Fault injection: " << flags.get_double("death-rate")
              << " deaths + " << flags.get_double("outage-rate")
              << " outages per sensor-day, up to "
              << flags.get_double("eff-loss") * 100.0
              << "% harvester loss, " << flags.get_double("pos-noise")
              << " m survey noise\n\n";

    bc::support::Table table(
        {"policy", "missions", "degraded", "replans", "disruptions",
         "hw failures", "dead sensor-hours", "final alive"});
    const auto add_row = [&](const char* name,
                             const bc::sim::FaultLifetimeStats& stats) {
      table.add_row(
          {name,
           bc::support::Table::num(
               static_cast<long long>(stats.base.missions)),
           bc::support::Table::num(
               static_cast<long long>(stats.missions_degraded)),
           bc::support::Table::num(static_cast<long long>(stats.replans)),
           bc::support::Table::num(
               static_cast<long long>(stats.total_disruptions)),
           bc::support::Table::num(
               static_cast<long long>(stats.sensors_failed)),
           bc::support::Table::num(stats.base.dead_time_sensor_s / 3600.0, 1),
           bc::support::Table::num(
               stats.survival.back().alive_fraction * 100.0, 1) + "%"});
    };

    fault_config.executor.on_dead_member = bc::sim::DisruptionPolicy::kSkip;
    fault_config.executor.on_overrun = bc::sim::DisruptionPolicy::kTruncate;
    fault_config.executor.on_battery_shortfall =
        bc::sim::DisruptionPolicy::kTruncate;
    const bc::sim::FaultLifetimeStats truncate =
        run_faulted(deployment, fault_config);
    add_row("truncate", truncate);

    if (!flags.get_bool("no-replan")) {
      fault_config.executor.on_dead_member =
          bc::sim::DisruptionPolicy::kReplan;
      fault_config.executor.on_overrun = bc::sim::DisruptionPolicy::kReplan;
      fault_config.executor.on_battery_shortfall =
          bc::sim::DisruptionPolicy::kReplan;
      const bc::sim::FaultLifetimeStats replan =
          run_faulted(deployment, fault_config);
      add_row("replan", replan);
      table.print(std::cout);
      std::cout << "\nSurvival (alive fraction over time):\n";
      print_survival("truncate", truncate.survival);
      print_survival("replan  ", replan.survival);
      std::cout << "\nReplanning reroutes the charger around disruptions "
                   "mid-mission; truncation abandons the rest of the tour. "
                   "Hardware deaths are identical in both runs — only the "
                   "energy outcomes differ.\n";
    } else {
      table.print(std::cout);
      std::cout << "\nSurvival (alive fraction over time):\n";
      print_survival("truncate", truncate.survival);
    }
    return 0;
  }

  bc::support::Table table({"algorithm", "perpetual", "missions",
                            "charger busy [h]", "charger energy [kJ]",
                            "dead sensor-hours", "max drain [mW]"});
  for (const auto algorithm :
       {bc::tour::Algorithm::kSc, bc::tour::Algorithm::kBc,
        bc::tour::Algorithm::kBcOpt}) {
    config.algorithm = algorithm;
    const bc::sim::LifetimeStats stats =
        bc::sim::simulate_lifetime(deployment, config);
    bc::sim::LifetimeConfig probe = config;
    probe.horizon_s = std::min(config.horizon_s, 7.0 * 24.0 * 3600.0);
    const double max_drain = bc::sim::max_sustainable_drain_w(
        deployment, probe, 1e-6, 5e-3, /*probes=*/8);
    table.add_row(
        {std::string(bc::tour::to_string(algorithm)),
         stats.perpetual ? "yes" : "NO",
         bc::support::Table::num(static_cast<long long>(stats.missions)),
         bc::support::Table::num(stats.charger_busy_s / 3600.0, 1),
         bc::support::Table::num(stats.charger_energy_j / 1000.0, 1),
         bc::support::Table::num(stats.dead_time_sensor_s / 3600.0, 1),
         bc::support::Table::num(max_drain * 1000.0, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShorter missions survive higher drains; bundling wins on "
               "charger energy when per-mission deficits are shallow. Pick "
               "the planner for the bottleneck you have.\n";
  return 0;
}
