// Example: can the network run forever? — the paper's §I motivation
// ("the lifetime of a WRSN can be extended infinitely for perpetual
// operations").
//
// Simulates weeks of battery drain with charging missions triggered
// whenever a battery falls below a threshold, and reports, per planning
// algorithm: whether the network survived, how many missions fired, how
// much charger energy they used, and the maximum sensor drain each
// algorithm can sustain perpetually. Exposes two real effects: SC's
// quick per-sensor missions sustain the highest drains (short missions =
// little drain while the charger is busy), and bundling pays off on
// charger energy exactly when per-mission deficits are small relative to
// movement (small batteries / frequent missions) — with deep deficits,
// charging cost dominates and the optimal bundle radius collapses
// (compare bench_ablation's Ablation 3).
//
//   ./perpetual_operation [--nodes=60] [--radius=60] [--days=14]

#include <iostream>

#include "core/bundlecharge.h"
#include "sim/lifetime.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "perpetual_operation: WRSN lifetime under periodic charging");
  flags.define_int("nodes", 60, "number of sensors");
  flags.define_double("radius", 60.0, "bundle radius (m)");
  flags.define_double("days", 14.0, "simulated horizon (days)");
  flags.define_double("drain-mw", 0.05, "per-sensor drain (mW)");
  flags.define_double("battery", 4.0, "per-sensor battery capacity (J)");
  flags.define_int("seed", 7, "RNG seed");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  const bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  bc::sim::LifetimeConfig config;
  config.planner = profile.planner;
  config.planner.bundle_radius = flags.get_double("radius");
  config.evaluation = profile.evaluation;
  config.horizon_s = flags.get_double("days") * 24.0 * 3600.0;
  config.drain_w = {flags.get_double("drain-mw") * 1e-3};
  config.battery_capacity_j = flags.get_double("battery");
  config.trigger_fraction = 0.5;

  std::cout << "WRSN lifetime: " << deployment.size() << " sensors, "
            << flags.get_double("drain-mw") << " mW drain each, "
            << flags.get_double("days") << " days simulated\n\n";

  bc::support::Table table({"algorithm", "perpetual", "missions",
                            "charger busy [h]", "charger energy [kJ]",
                            "dead sensor-hours", "max drain [mW]"});
  for (const auto algorithm :
       {bc::tour::Algorithm::kSc, bc::tour::Algorithm::kBc,
        bc::tour::Algorithm::kBcOpt}) {
    config.algorithm = algorithm;
    const bc::sim::LifetimeStats stats =
        bc::sim::simulate_lifetime(deployment, config);
    bc::sim::LifetimeConfig probe = config;
    probe.horizon_s = std::min(config.horizon_s, 7.0 * 24.0 * 3600.0);
    const double max_drain = bc::sim::max_sustainable_drain_w(
        deployment, probe, 1e-6, 5e-3, /*probes=*/8);
    table.add_row(
        {std::string(bc::tour::to_string(algorithm)),
         stats.perpetual ? "yes" : "NO",
         bc::support::Table::num(static_cast<long long>(stats.missions)),
         bc::support::Table::num(stats.charger_busy_s / 3600.0, 1),
         bc::support::Table::num(stats.charger_energy_j / 1000.0, 1),
         bc::support::Table::num(stats.dead_time_sensor_s / 3600.0, 1),
         bc::support::Table::num(max_drain * 1000.0, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShorter missions survive higher drains; bundling wins on "
               "charger energy when per-mission deficits are shallow. Pick "
               "the planner for the bottleneck you have.\n";
  return 0;
}
