// Example: sizing and operating a fleet of mobile chargers — the
// minimum-chargers question of the paper's related work [26, 27].
//
//   ./charger_fleet [--nodes=200] [--radius=60] [--deadline-min=60]

#include <iostream>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"
#include "tour/fleet.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "charger_fleet: split a charging mission among k chargers");
  flags.define_int("nodes", 200, "number of sensors");
  flags.define_double("radius", 60.0, "bundle radius (m)");
  flags.define_double("deadline-min", 60.0,
                      "mission deadline in minutes (for fleet sizing)");
  flags.define_int("seed", 41, "RNG seed");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.planner.bundle_radius = flags.get_double("radius");
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  const bc::core::BundleChargingPlanner planner(profile);
  const bc::core::PlanResult result =
      planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
  const double solo_s = bc::tour::route_time_s(
      deployment, result.plan, profile.planner.charging,
      profile.planner.movement);
  std::cout << "one charger finishes the BC-OPT mission in "
            << bc::support::Table::num(solo_s / 60.0, 1) << " min\n\n";

  bc::support::Table table({"chargers", "makespan [min]", "speedup",
                            "total energy [J]", "energy overhead [%]"});
  double base_energy = 0.0;
  for (const std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const bc::tour::FleetPlan fleet = bc::tour::split_among_chargers(
        deployment, result.plan, profile.planner.charging,
        profile.planner.movement, k);
    const bc::tour::FleetMetrics m = bc::tour::evaluate_fleet(
        deployment, fleet, profile.planner.charging,
        profile.planner.movement);
    if (k == 1) base_energy = m.total_energy_j;
    table.add_row(
        {bc::support::Table::num(static_cast<long long>(k)),
         bc::support::Table::num(m.makespan_s / 60.0, 1),
         bc::support::Table::num(solo_s / m.makespan_s, 2) + "x",
         bc::support::Table::num(m.total_energy_j, 0),
         bc::support::Table::num(
             100.0 * (m.total_energy_j - base_energy) / base_energy, 1)});
  }
  table.print(std::cout);

  const double deadline_s = flags.get_double("deadline-min") * 60.0;
  const std::size_t needed = bc::tour::minimum_fleet_size(
      deployment, result.plan, profile.planner.charging,
      profile.planner.movement, deadline_s);
  std::cout << "\nto finish within "
            << bc::support::Table::num(deadline_s / 60.0, 0)
            << " min you need " << needed << " charger(s).\n";
  return 0;
}
