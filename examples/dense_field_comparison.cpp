// Example: the paper's motivating scenario — a dense monitoring field
// (habitat monitoring / smart dust, §III-B) where sensors arrive in
// clusters. Compares all four planners on uniform vs clustered deployments
// of the same size and shows where bundle charging pays off most.
//
//   ./dense_field_comparison [--nodes=200] [--radius=60] [--clusters=6]

#include <iostream>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

void compare(const bc::core::BundleChargingPlanner& planner,
             const bc::net::Deployment& deployment, const char* label) {
  std::cout << "-- " << label << " (" << deployment.size()
            << " sensors) --\n";
  bc::support::Table table({"algorithm", "stops", "tour [m]",
                            "charge time [s]", "total [J]", "vs SC [%]"});
  double sc_energy = 0.0;
  for (const auto algorithm :
       {bc::tour::Algorithm::kSc, bc::tour::Algorithm::kCss,
        bc::tour::Algorithm::kBc, bc::tour::Algorithm::kBcOpt}) {
    const auto result = planner.plan(deployment, algorithm);
    const auto& m = result.metrics;
    if (algorithm == bc::tour::Algorithm::kSc) sc_energy = m.total_energy_j;
    table.add_row(
        {std::string(bc::tour::to_string(algorithm)),
         bc::support::Table::num(static_cast<long long>(m.num_stops)),
         bc::support::Table::num(m.tour_length_m, 0),
         bc::support::Table::num(m.charge_time_s, 0),
         bc::support::Table::num(m.total_energy_j, 0),
         bc::support::Table::num(
             100.0 * (sc_energy - m.total_energy_j) / sc_energy, 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "dense_field_comparison: uniform vs clustered deployments");
  flags.define_int("nodes", 200, "number of sensors");
  flags.define_double("radius", 60.0, "bundle radius (m)");
  flags.define_int("clusters", 6, "number of deployment hot-spots");
  flags.define_double("sigma", 40.0, "hot-spot spread (m)");
  flags.define_int("seed", 11, "RNG seed");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.planner.bundle_radius = flags.get_double("radius");
  const bc::core::BundleChargingPlanner planner(profile);

  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  bc::support::Rng rng_uniform(
      static_cast<std::uint64_t>(flags.get_int("seed")));
  bc::support::Rng rng_clustered(
      static_cast<std::uint64_t>(flags.get_int("seed")));

  compare(planner,
          bc::net::uniform_random_deployment(n, profile.field, rng_uniform),
          "uniform field");
  compare(planner,
          bc::net::clustered_deployment(
              n, static_cast<std::size_t>(flags.get_int("clusters")),
              flags.get_double("sigma"), profile.field, rng_clustered),
          "clustered field");

  std::cout << "Clustering is where bundle charging shines: whole hot-spots "
               "collapse into single stops, so BC/BC-OPT save far more "
               "energy than on the uniform field.\n";
  return 0;
}
