// Example: a battery-limited mobile charger. Plans a BC-OPT tour, then
// splits it into depot-anchored trips that each fit the charger's battery
// — the capacity-constrained regime of the paper's baseline [4].
//
//   ./capacitated_charger [--nodes=150] [--radius=60] [--battery=20000]

#include <iostream>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"
#include "tour/multi_trip.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "capacitated_charger: split a charging tour into battery-sized trips");
  flags.define_int("nodes", 150, "number of sensors");
  flags.define_double("radius", 60.0, "bundle radius (m)");
  flags.define_double("battery", 20000.0, "charger battery capacity (J)");
  flags.define_int("seed", 31, "RNG seed");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.planner.bundle_radius = flags.get_double("radius");
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  const bc::core::BundleChargingPlanner planner(profile);
  const bc::core::PlanResult result =
      planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
  const double single_trip = bc::tour::trip_energy_j(
      deployment, result.plan, profile.planner.charging,
      profile.planner.movement);

  const double battery = flags.get_double("battery");
  std::cout << "BC-OPT tour needs "
            << bc::support::Table::num(single_trip, 0)
            << " J in one trip; battery holds "
            << bc::support::Table::num(battery, 0) << " J\n\n";

  const bc::tour::MultiTripPlan trips = bc::tour::split_into_trips(
      deployment, result.plan, profile.planner.charging,
      profile.planner.movement, battery);

  bc::support::Table table(
      {"trip", "stops", "length [m]", "energy [J]", "battery used [%]"});
  for (std::size_t t = 0; t < trips.trips.size(); ++t) {
    const double energy = bc::tour::trip_energy_j(
        deployment, trips.trips[t], profile.planner.charging,
        profile.planner.movement);
    table.add_row(
        {bc::support::Table::num(static_cast<long long>(t + 1)),
         bc::support::Table::num(
             static_cast<long long>(trips.trips[t].stops.size())),
         bc::support::Table::num(
             bc::tour::plan_tour_length(trips.trips[t]), 0),
         bc::support::Table::num(energy, 0),
         bc::support::Table::num(100.0 * energy / battery, 1)});
  }
  table.print(std::cout);

  const bc::tour::MultiTripMetrics m = bc::tour::evaluate_trips(
      deployment, trips, profile.planner.charging, profile.planner.movement);
  std::cout << "\n" << m.num_trips << " trips, total "
            << bc::support::Table::num(m.total_energy_j, 0) << " J ("
            << bc::support::Table::num(
                   100.0 * (m.total_energy_j - single_trip) / single_trip, 1)
            << " % overhead from the extra depot legs).\n";
  return 0;
}
