// Example: picking the bundle radius (§IV-C). Sweeps the radius with the
// facade's tuner, prints the energy curve as an ASCII chart, and re-plans
// at the optimum — the workflow the paper recommends ("try different
// charging bundle radii until a best bundle radius r is found").
//
//   ./radius_tuning [--nodes=150] [--min-radius=5] [--max-radius=300]

#include <algorithm>
#include <iostream>
#include <string>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("radius_tuning: find the optimal bundle radius");
  flags.define_int("nodes", 150, "number of sensors");
  flags.define_double("min-radius", 5.0, "sweep lower bound (m)");
  flags.define_double("max-radius", 300.0, "sweep upper bound (m)");
  flags.define_int("steps", 12, "sweep steps");
  flags.define_int("seed", 21, "RNG seed");
  flags.define_int("threads", 0,
                   "worker threads (0 = BC_THREADS env or hardware)");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.threads.threads =
      static_cast<std::size_t>(flags.get_int("threads"));
  bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const bc::net::Deployment deployment = bc::net::uniform_random_deployment(
      static_cast<std::size_t>(flags.get_int("nodes")), profile.field, rng);

  const bc::core::BundleChargingPlanner planner(profile);
  const bc::core::RadiusSweep sweep = planner.sweep_radius(
      deployment, bc::tour::Algorithm::kBc, flags.get_double("min-radius"),
      flags.get_double("max-radius"),
      static_cast<std::size_t>(flags.get_int("steps")));

  double max_energy = 0.0;
  double min_energy = sweep.points.front().metrics.total_energy_j;
  for (const auto& p : sweep.points) {
    max_energy = std::max(max_energy, p.metrics.total_energy_j);
    min_energy = std::min(min_energy, p.metrics.total_energy_j);
  }

  std::cout << "Total energy vs bundle radius (BC, " << deployment.size()
            << " sensors):\n\n";
  for (const auto& p : sweep.points) {
    const double fraction =
        max_energy == min_energy
            ? 1.0
            : (p.metrics.total_energy_j - min_energy) /
                  (max_energy - min_energy);
    const auto bar_len = static_cast<std::size_t>(10.0 + 50.0 * fraction);
    std::cout << "  r = " << bc::support::Table::num(p.radius_m, 0) << "\t"
              << std::string(bar_len, '#') << " "
              << bc::support::Table::num(p.metrics.total_energy_j, 0)
              << " J\n";
  }

  const bc::core::PlanResult tuned = planner.plan_with_tuned_radius(
      deployment, bc::tour::Algorithm::kBc, flags.get_double("min-radius"),
      flags.get_double("max-radius"),
      static_cast<std::size_t>(flags.get_int("steps")));
  std::cout << "\nBest radius: " << sweep.best_radius_m << " m -> "
            << tuned.metrics.num_stops << " stops, "
            << bc::support::Table::num(tuned.metrics.total_energy_j, 0)
            << " J total ("
            << bc::support::Table::num(tuned.metrics.move_energy_j, 0)
            << " J moving + "
            << bc::support::Table::num(tuned.metrics.charge_energy_j, 0)
            << " J charging).\n";
  return 0;
}
