// Example: replay of the paper's §VII testbed — a Powercast-equipped robot
// car charging six sensors in a 5 m x 5 m office — including the charging
// schedule a real controller would execute (drive legs, park durations,
// energy ledger per stop).
//
//   ./testbed_replay [--radius=1.2] [--algorithm=BC-OPT]

#include <iostream>
#include <string>

#include "core/bundlecharge.h"
#include "sim/schedule.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags("testbed_replay: simulate the §VII testbed");
  flags.define_double("radius", 1.2, "bundle radius (m)");
  flags.define_string("algorithm", "BC-OPT", "SC | CSS | BC | BC-OPT");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::tour::Algorithm algorithm = bc::tour::Algorithm::kBcOpt;
  const std::string& name = flags.get_string("algorithm");
  if (name == "SC") algorithm = bc::tour::Algorithm::kSc;
  else if (name == "CSS") algorithm = bc::tour::Algorithm::kCss;
  else if (name == "BC") algorithm = bc::tour::Algorithm::kBc;
  else if (name != "BC-OPT") {
    std::cerr << "unknown --algorithm '" << name << "'\n";
    return 1;
  }

  bc::core::Profile profile = bc::core::testbed_profile();
  profile.planner.bundle_radius = flags.get_double("radius");
  const bc::net::Deployment deployment = bc::net::testbed_deployment();
  const bc::core::BundleChargingPlanner planner(profile);
  const bc::core::PlanResult result = planner.plan(deployment, algorithm);

  std::cout << "Testbed replay: " << result.plan.algorithm << ", r = "
            << profile.planner.bundle_radius << " m, robot at "
            << profile.planner.movement.speed_m_per_s() << " m/s\n\n";

  const auto times = bc::sim::schedule_stop_times(
      deployment, result.plan, profile.evaluation.charging,
      profile.evaluation.policy);

  bc::support::Table table({"leg", "drive to", "drive [s]", "park [s]",
                            "sensors served", "stop energy [J]"});
  bc::geometry::Point2 from = result.plan.depot;
  for (std::size_t i = 0; i < result.plan.stops.size(); ++i) {
    const auto& stop = result.plan.stops[i];
    const double leg = bc::geometry::distance(from, stop.position);
    std::string served;
    for (const auto id : stop.members) {
      if (!served.empty()) served += ' ';
      served += 's' + std::to_string(id);
    }
    table.add_row(
        {bc::support::Table::num(static_cast<long long>(i + 1)),
         "(" + bc::support::Table::num(stop.position.x, 2) + ", " +
             bc::support::Table::num(stop.position.y, 2) + ")",
         bc::support::Table::num(
             profile.planner.movement.move_time_s(leg), 1),
         bc::support::Table::num(times[i], 2), served,
         bc::support::Table::num(
             profile.planner.movement.move_energy_j(leg) +
                 profile.evaluation.charging.cost_of_stop_j(times[i]),
             2)});
    from = stop.position;
  }
  table.print(std::cout);

  const auto& m = result.metrics;
  std::cout << "\nreturn to depot: "
            << bc::support::Table::num(bc::geometry::distance(
                                           from, result.plan.depot),
                                       2)
            << " m\ntotals: tour "
            << bc::support::Table::num(m.tour_length_m, 2) << " m, mission "
            << bc::support::Table::num(m.total_time_s, 1) << " s, energy "
            << bc::support::Table::num(m.total_energy_j, 2) << " J ("
            << bc::support::Table::num(m.move_energy_j, 2) << " moving + "
            << bc::support::Table::num(m.charge_energy_j, 2)
            << " charging), every sensor >= "
            << bc::support::Table::num(m.min_demand_fraction * 100.0, 1)
            << " % of its 4 mJ demand.\n";
  return 0;
}
