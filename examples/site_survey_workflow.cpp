// Example: the full downstream workflow on surveyed coordinates.
//
//   1. load sensor positions from a CSV site survey (or generate a demo
//      survey when no file is given),
//   2. plan a BC-OPT charging tour,
//   3. export the executable schedule as JSON and the map as SVG.
//
//   ./site_survey_workflow [--survey=path.csv] [--out-dir=/tmp]
//                          [--radius=40] [--demand=2]

#include <iostream>

#include "core/bundlecharge.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  bc::support::CliFlags flags(
      "site_survey_workflow: CSV survey -> plan -> JSON + SVG");
  flags.define_string("survey", "", "CSV of sensor positions (x,y rows); "
                                    "empty generates a demo survey");
  flags.define_string("out-dir", ".", "where plan.json / plan.svg go");
  flags.define_double("radius", 40.0, "bundle radius (m)");
  flags.define_double("demand", 2.0, "per-sensor demand (J)");
  flags.define_int("seed", 13, "seed for the demo survey");
  if (!flags.parse(argc, argv, std::cerr)) return 1;
  if (flags.help_requested()) return 0;

  bc::core::Profile profile = bc::core::icdcs2019_simulation_profile();
  profile.planner.bundle_radius = flags.get_double("radius");

  // 1. Load or synthesise the survey.
  std::vector<bc::geometry::Point2> positions;
  if (const std::string& path = flags.get_string("survey"); !path.empty()) {
    std::string error;
    auto loaded = bc::io::read_positions_csv_file(path, &error);
    if (!loaded.has_value()) {
      std::cerr << "failed to load survey: " << error << "\n";
      return 1;
    }
    positions = std::move(*loaded);
    std::cout << "loaded " << positions.size() << " sensors from " << path
              << "\n";
  } else {
    bc::support::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const auto demo = bc::net::clustered_deployment(
        120, 5, 45.0, profile.field, rng);
    positions.assign(demo.positions().begin(), demo.positions().end());
    std::cout << "generated a demo survey of " << positions.size()
              << " sensors (pass --survey=... to use your own)\n";
  }
  const bc::net::Deployment deployment = bc::io::deployment_from_positions(
      std::move(positions), profile.field.depot, flags.get_double("demand"));

  // 2. Plan.
  const bc::core::BundleChargingPlanner planner(profile);
  const bc::core::PlanResult result =
      planner.plan(deployment, bc::tour::Algorithm::kBcOpt);
  std::cout << "planned " << result.plan.algorithm << ": "
            << result.metrics.num_stops << " stops, "
            << bc::support::Table::num(result.metrics.tour_length_m, 0)
            << " m tour, "
            << bc::support::Table::num(result.metrics.total_energy_j, 0)
            << " J total\n";

  // 3. Export.
  const std::string out_dir = flags.get_string("out-dir");
  const std::string json_path = out_dir + "/plan.json";
  const std::string svg_path = out_dir + "/plan.svg";
  const std::string csv_path = out_dir + "/survey_echo.csv";
  if (!bc::io::write_plan_json_file(deployment, result.plan,
                                    planner.profile().evaluation,
                                    json_path)) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  if (!bc::viz::render_plan(deployment, result.plan).write_file(svg_path)) {
    std::cerr << "cannot write " << svg_path << "\n";
    return 1;
  }
  bc::io::write_positions_csv_file(deployment, csv_path);
  std::cout << "wrote " << json_path << ", " << svg_path << " and "
            << csv_path << "\n";
  return 0;
}
