// Tests for the two-phase simplex solver, including randomized property
// sweeps against feasibility/optimality certificates.

#include "lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::lp {
namespace {

Problem make_problem(std::size_t num_vars, std::vector<double> objective,
                     std::vector<std::vector<double>> rows,
                     std::vector<double> rhs) {
  Problem p;
  p.num_vars = num_vars;
  p.objective = std::move(objective);
  p.rows = std::move(rows);
  p.rhs = std::move(rhs);
  return p;
}

TEST(SimplexTest, TrivialUnconstrainedProblems) {
  const Solution zero = solve(make_problem(2, {1.0, 2.0}, {}, {}));
  EXPECT_EQ(zero.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(zero.objective, 0.0);
  const Solution unbounded = solve(make_problem(1, {-1.0}, {}, {}));
  EXPECT_EQ(unbounded.status, Status::kUnbounded);
}

TEST(SimplexTest, SingleVariableCoverage) {
  // min t s.t. 2t >= 10  ->  t = 5.
  const Solution s = solve(make_problem(1, {1.0}, {{2.0}}, {10.0}));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 5.0, 1e-9);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(SimplexTest, KnownTwoVariableOptimum) {
  // min x + y  s.t.  x + 2y >= 4,  3x + y >= 6. Vertex at (8/5, 6/5).
  const Solution s = solve(
      make_problem(2, {1.0, 1.0}, {{1.0, 2.0}, {3.0, 1.0}}, {4.0, 6.0}));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 1.6, 1e-9);
  EXPECT_NEAR(s.x[1], 1.2, 1e-9);
  EXPECT_NEAR(s.objective, 2.8, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x >= 2 and -x >= -1 (i.e. x <= 1) cannot both hold.
  const Solution s =
      solve(make_problem(1, {1.0}, {{1.0}, {-1.0}}, {2.0, -1.0}));
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedPhaseTwo) {
  // min -x s.t. x >= 1: feasible, objective goes to -inf.
  const Solution s = solve(make_problem(1, {-1.0}, {{1.0}}, {1.0}));
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(SimplexTest, NegativeRhsRowsAreNormalised) {
  // -x - y >= -10 (x + y <= 10) with min -x - y bounded by it: max x+y=10.
  const Solution s =
      solve(make_problem(2, {-1.0, -1.0}, {{-1.0, -1.0}}, {-10.0}));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
}

TEST(SimplexTest, RedundantConstraintsAreHarmless) {
  const Solution s = solve(make_problem(
      1, {1.0}, {{1.0}, {1.0}, {2.0}}, {3.0, 3.0, 6.0}));
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, ValidatesShapes) {
  Problem bad;
  bad.num_vars = 2;
  bad.objective = {1.0};
  EXPECT_THROW(solve(bad), support::PreconditionError);
  bad.objective = {1.0, 1.0};
  bad.rows = {{1.0}};
  bad.rhs = {1.0};
  EXPECT_THROW(solve(bad), support::PreconditionError);
}

// Property sweep: random covering problems (positive coefficients and
// demands, min-cost). The optimum must (1) be feasible, (2) not exceed
// the trivial single-variable upper bound, and (3) match a brute-force
// vertex enumeration on 2-variable instances.
class SimplexCoverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexCoverPropertyTest, OptimaAreFeasibleAndTight) {
  support::Rng rng(8000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng.below(6);
    const std::size_t m = 1 + rng.below(6);
    Problem p;
    p.num_vars = n;
    p.objective.assign(n, 0.0);
    for (auto& c : p.objective) c = rng.uniform(0.5, 3.0);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> row(n);
      for (auto& a : row) a = rng.uniform(0.1, 2.0);
      p.rows.push_back(std::move(row));
      p.rhs.push_back(rng.uniform(1.0, 10.0));
    }
    const Solution s = solve(p);
    ASSERT_EQ(s.status, Status::kOptimal);
    // Feasibility.
    for (std::size_t i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += p.rows[i][j] * s.x[j];
      ASSERT_GE(lhs, p.rhs[i] - 1e-6);
    }
    for (const double xj : s.x) ASSERT_GE(xj, -1e-9);
    // Upper bound: satisfy everything with variable 0 alone.
    double worst = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      worst = std::max(worst, p.rhs[i] / p.rows[i][0]);
    }
    ASSERT_LE(s.objective, p.objective[0] * worst + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexCoverPropertyTest,
                         ::testing::Range(0, 6));

TEST(SimplexTest, MatchesVertexEnumerationOnTwoVariables) {
  support::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    Problem p;
    p.num_vars = 2;
    p.objective = {rng.uniform(0.5, 2.0), rng.uniform(0.5, 2.0)};
    const std::size_t m = 2 + rng.below(3);
    for (std::size_t i = 0; i < m; ++i) {
      p.rows.push_back({rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0)});
      p.rhs.push_back(rng.uniform(1.0, 5.0));
    }
    const Solution s = solve(p);
    ASSERT_EQ(s.status, Status::kOptimal);

    // Enumerate candidate vertices: axis intercepts and row intersections.
    double best = std::numeric_limits<double>::infinity();
    const auto consider = [&](double x, double y) {
      if (x < -1e-9 || y < -1e-9) return;
      for (std::size_t i = 0; i < m; ++i) {
        if (p.rows[i][0] * x + p.rows[i][1] * y < p.rhs[i] - 1e-7) return;
      }
      best = std::min(best, p.objective[0] * x + p.objective[1] * y);
    };
    for (std::size_t i = 0; i < m; ++i) {
      consider(p.rhs[i] / p.rows[i][0], 0.0);
      consider(0.0, p.rhs[i] / p.rows[i][1]);
      for (std::size_t j = i + 1; j < m; ++j) {
        const double det =
            p.rows[i][0] * p.rows[j][1] - p.rows[i][1] * p.rows[j][0];
        if (std::abs(det) < 1e-9) continue;
        const double x =
            (p.rhs[i] * p.rows[j][1] - p.rows[i][1] * p.rhs[j]) / det;
        const double y =
            (p.rows[i][0] * p.rhs[j] - p.rhs[i] * p.rows[j][0]) / det;
        consider(x, y);
      }
    }
    ASSERT_NEAR(s.objective, best, 1e-5) << "trial " << trial;
  }
}

// --- termination, anti-cycling, budgets ----------------------------------

TEST(SimplexTest, StatusStringsAndFaultKinds) {
  EXPECT_EQ(to_string(Status::kOptimal), "optimal");
  EXPECT_EQ(to_string(Status::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(Status::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(Status::kIterationLimit), "iteration-limit");
  EXPECT_EQ(to_string(Status::kBudgetExhausted), "budget-exhausted");

  EXPECT_EQ(to_fault_kind(Status::kOptimal), support::FaultKind::kNone);
  EXPECT_EQ(to_fault_kind(Status::kInfeasible),
            support::FaultKind::kInvalidInput);
  EXPECT_EQ(to_fault_kind(Status::kUnbounded),
            support::FaultKind::kInvalidInput);
  EXPECT_EQ(to_fault_kind(Status::kIterationLimit),
            support::FaultKind::kBudgetExhausted);
  EXPECT_EQ(to_fault_kind(Status::kBudgetExhausted),
            support::FaultKind::kBudgetExhausted);
}

TEST(SimplexTest, IterationCapReportsLimit) {
  SimplexOptions options;
  options.max_iterations = 1;  // phase 1 alone needs more than one pivot
  const Solution s = solve(
      make_problem(2, {1.0, 1.0}, {{1.0, 2.0}, {3.0, 1.0}}, {4.0, 6.0}),
      options);
  EXPECT_EQ(s.status, Status::kIterationLimit);
}

TEST(SimplexTest, NodeBudgetTripsAsBudgetExhausted) {
  SimplexOptions options;
  options.budget.node_cap = 1;  // one pivot allowed, solve needs more
  const Solution s = solve(
      make_problem(2, {1.0, 1.0}, {{1.0, 2.0}, {3.0, 1.0}}, {4.0, 6.0}),
      options);
  EXPECT_EQ(s.status, Status::kBudgetExhausted);
}

TEST(SimplexTest, SharedMeterIsChargedAndHonoured) {
  const Problem p =
      make_problem(2, {1.0, 1.0}, {{1.0, 2.0}, {3.0, 1.0}}, {4.0, 6.0});

  support::Budget budget;
  budget.node_cap = 100000;
  support::BudgetMeter meter(budget);
  const Solution s = solve(p, SimplexOptions{}, &meter);
  EXPECT_EQ(s.status, Status::kOptimal);
  EXPECT_GT(meter.nodes_used(), 0u);  // every pivot charged the caller

  // A meter another solver already exhausted stops the LP immediately.
  support::Budget tiny;
  tiny.node_cap = 1;
  support::BudgetMeter drained(tiny);
  while (drained.charge()) {
  }
  const Solution stopped = solve(p, SimplexOptions{}, &drained);
  EXPECT_EQ(stopped.status, Status::kBudgetExhausted);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Many constraints active at the same optimal vertex (2, 2): scaled
  // duplicates force degenerate pivots, the classic cycling hazard under
  // Dantzig pricing. The Bland fallback must still reach the optimum.
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  for (double k = 1.0; k <= 8.0; k += 1.0) {
    p.rows.push_back({k, k});
    p.rhs.push_back(4.0 * k);
    p.rows.push_back({k, 2.0 * k});
    p.rhs.push_back(6.0 * k);
    p.rows.push_back({2.0 * k, k});
    p.rhs.push_back(6.0 * k);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(SimplexTest, EarlyBlandSwitchMatchesDantzig) {
  // Forcing the anti-cycling fallback after a single degenerate pivot must
  // not change any optimum — only the pivot path.
  support::Rng rng(4242);
  SimplexOptions eager;
  eager.degenerate_pivot_switch = 1;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.below(5);
    const std::size_t m = 1 + rng.below(6);
    Problem p;
    p.num_vars = n;
    p.objective.assign(n, 0.0);
    for (auto& c : p.objective) c = rng.uniform(0.5, 3.0);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> row(n);
      for (auto& a : row) a = rng.uniform(0.1, 2.0);
      p.rows.push_back(std::move(row));
      p.rhs.push_back(rng.uniform(1.0, 10.0));
    }
    const Solution dantzig = solve(p);
    const Solution bland = solve(p, eager);
    ASSERT_EQ(dantzig.status, Status::kOptimal);
    ASSERT_EQ(bland.status, Status::kOptimal);
    ASSERT_NEAR(dantzig.objective, bland.objective, 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace bc::lp
