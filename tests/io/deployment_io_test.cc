// Tests for deployment CSV I/O.

#include "io/deployment_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::io {
namespace {

using geometry::Point2;

TEST(DeploymentIoTest, ReadsPlainRows) {
  std::istringstream in("1.5,2.5\n3,4\n");
  const auto positions = read_positions_csv(in);
  ASSERT_TRUE(positions.has_value());
  ASSERT_EQ(positions->size(), 2u);
  EXPECT_EQ((*positions)[0], (Point2{1.5, 2.5}));
  EXPECT_EQ((*positions)[1], (Point2{3.0, 4.0}));
}

TEST(DeploymentIoTest, SkipsHeaderCommentsAndBlanks) {
  std::istringstream in("x,y\n# comment\n\n 10 , 20 \n");
  const auto positions = read_positions_csv(in);
  ASSERT_TRUE(positions.has_value());
  ASSERT_EQ(positions->size(), 1u);
  EXPECT_EQ((*positions)[0], (Point2{10.0, 20.0}));
}

TEST(DeploymentIoTest, ReportsMalformedRows) {
  std::string error;
  std::istringstream missing_comma("1.0 2.0\n");
  EXPECT_FALSE(read_positions_csv(missing_comma, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  std::istringstream bad_number("1,2\nfoo,3\n");
  EXPECT_FALSE(read_positions_csv(bad_number, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(DeploymentIoTest, EmptyInputIsAnError) {
  std::string error;
  std::istringstream in("# only comments\n");
  EXPECT_FALSE(read_positions_csv(in, &error).has_value());
  EXPECT_NE(error.find("no sensor positions"), std::string::npos);
}

TEST(DeploymentIoTest, RoundTripsThroughWriter) {
  support::Rng rng(3);
  net::FieldSpec spec;
  const net::Deployment original =
      net::uniform_random_deployment(50, spec, rng);
  std::ostringstream out;
  write_positions_csv(original, out);
  std::istringstream in(out.str());
  const auto positions = read_positions_csv(in);
  ASSERT_TRUE(positions.has_value());
  ASSERT_EQ(positions->size(), original.size());
  for (std::size_t i = 0; i < positions->size(); ++i) {
    ASSERT_NEAR((*positions)[i].x, original.sensor(i).position.x, 1e-4);
    ASSERT_NEAR((*positions)[i].y, original.sensor(i).position.y, 1e-4);
  }
}

TEST(DeploymentIoTest, FileRoundTrip) {
  support::Rng rng(5);
  net::FieldSpec spec;
  const net::Deployment original =
      net::uniform_random_deployment(10, spec, rng);
  const std::string path = ::testing::TempDir() + "/bc_deploy.csv";
  ASSERT_TRUE(write_positions_csv_file(original, path));
  const auto positions = read_positions_csv_file(path);
  ASSERT_TRUE(positions.has_value());
  EXPECT_EQ(positions->size(), original.size());
  std::string error;
  EXPECT_FALSE(
      read_positions_csv_file("/no/such/file.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// Hostile-input hardening: every rejection names the offending line.
// (CI's Release job selects these by the "Hardening" suite name.)

TEST(DeploymentIoHardeningTest, RejectsNonFiniteCoordinates) {
  for (const char* row : {"nan,1.0\n", "1.0,nan\n", "inf,1.0\n", "1.0,-inf\n",
                          "INFINITY,2\n"}) {
    std::string error;
    std::istringstream in(std::string("5,5\n") + row);
    EXPECT_FALSE(read_positions_csv(in, &error).has_value()) << row;
    EXPECT_NE(error.find("line 2"), std::string::npos) << row;
    EXPECT_NE(error.find("non-finite"), std::string::npos) << row;
  }
}

TEST(DeploymentIoHardeningTest, NonFiniteFirstLineIsNotAHeader) {
  // "nan,inf" parses as numbers, so it must be rejected as data, never
  // silently swallowed by the header tolerance.
  std::string error;
  std::istringstream in("nan,inf\n1,2\n");
  EXPECT_FALSE(read_positions_csv(in, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("non-finite"), std::string::npos);
}

TEST(DeploymentIoHardeningTest, RejectsEmbeddedNul) {
  std::string error;
  std::string text = "1,2\n3,4\n";
  text[2] = '\0';  // "1,\0\n3,4\n" — strtod would silently truncate
  std::istringstream in(text);
  EXPECT_FALSE(read_positions_csv(in, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("NUL"), std::string::npos);
}

TEST(DeploymentIoHardeningTest, RejectsWrongFieldCounts) {
  std::string error;
  std::istringstream three("1,2\n3,4,5\n");
  EXPECT_FALSE(read_positions_csv(three, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("expected 2 fields, got 3"), std::string::npos);

  std::istringstream trailing("1,2,\n");
  EXPECT_FALSE(read_positions_csv(trailing, &error).has_value());
  EXPECT_NE(error.find("expected 2 fields, got 3"), std::string::npos);

  std::istringstream one("42\n");
  EXPECT_FALSE(read_positions_csv(one, &error).has_value());
  EXPECT_NE(error.find("expected 2 fields, got 1"), std::string::npos);
}

TEST(DeploymentIoHardeningTest, HeaderToleranceIsExactlyOneTwoFieldRow) {
  // A three-field first line is a shape error, not a header.
  std::string error;
  std::istringstream three_field_header("x,y,z\n1,2\n");
  EXPECT_FALSE(read_positions_csv(three_field_header, &error).has_value());
  EXPECT_NE(error.find("expected 2 fields, got 3"), std::string::npos);

  // A non-numeric row after data is an error even if it looks header-ish.
  std::istringstream late_header("1,2\nx,y\n");
  EXPECT_FALSE(read_positions_csv(late_header, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);

  // The legitimate header still works.
  std::istringstream ok("x,y\n1,2\n");
  EXPECT_TRUE(read_positions_csv(ok, &error).has_value());
}

TEST(DeploymentIoHardeningTest, CrlfLineEndingsParse) {
  // Files written on Windows arrive with \r\n; \r must not leak into the
  // last field of any row (header, data, or comment).
  std::string error;
  std::istringstream crlf("x,y\r\n1.5,2.5\r\n# note\r\n3,4\r\n");
  const auto positions = read_positions_csv(crlf, &error);
  ASSERT_TRUE(positions.has_value()) << error;
  ASSERT_EQ(positions->size(), 2u);
  EXPECT_DOUBLE_EQ((*positions)[0].x, 1.5);
  EXPECT_DOUBLE_EQ((*positions)[0].y, 2.5);
  EXPECT_DOUBLE_EQ((*positions)[1].x, 3.0);
  EXPECT_DOUBLE_EQ((*positions)[1].y, 4.0);
}

TEST(DeploymentIoHardeningTest, Utf8BomIsStrippedFromFirstLine) {
  // A BOM before a header parses as before.
  std::string error;
  std::istringstream bom_header("\xEF\xBB\xBFx,y\n1,2\n");
  const auto with_header = read_positions_csv(bom_header, &error);
  ASSERT_TRUE(with_header.has_value()) << error;
  EXPECT_EQ(with_header->size(), 1u);

  // A BOM before a data row must not turn the row into a fake header:
  // the first sensor was silently dropped before the BOM strip existed.
  std::istringstream bom_data("\xEF\xBB\xBF" "1,2\n3,4\n");
  const auto with_data = read_positions_csv(bom_data, &error);
  ASSERT_TRUE(with_data.has_value()) << error;
  ASSERT_EQ(with_data->size(), 2u);
  EXPECT_DOUBLE_EQ((*with_data)[0].x, 1.0);
  EXPECT_DOUBLE_EQ((*with_data)[0].y, 2.0);
}

TEST(DeploymentIoHardeningTest, BomOnlyOnFirstLine) {
  // A BOM sequence mid-file is real (malformed) content, not stripped.
  std::string error;
  std::istringstream late_bom("1,2\n\xEF\xBB\xBF" "3,4\n");
  EXPECT_FALSE(read_positions_csv(late_bom, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(DeploymentIoTest, DeploymentFromPositionsIncludesDepot) {
  const net::Deployment d = deployment_from_positions(
      {{10.0, 10.0}, {20.0, 5.0}}, {0.0, 0.0}, 2.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.field().contains({0.0, 0.0}));
  EXPECT_DOUBLE_EQ(d.demand_j(), 2.0);
}

}  // namespace
}  // namespace bc::io
