// Graph-input hardening: waypoint-graph CSVs come from outside the trust
// boundary, so every malformed record must be rejected with a structured,
// line-numbered fault — and a graph that cannot reach every sensor from
// the depot's component must fault kDisconnected naming the sensor.

#include "io/graph_io.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "geometry/point.h"

namespace bc::io {
namespace {

support::Fault must_fault(const std::string& csv) {
  std::istringstream in(csv);
  auto graph = read_waypoint_graph_csv(in);
  EXPECT_FALSE(graph.has_value()) << "accepted: " << csv;
  return graph.has_value() ? support::Fault{} : graph.fault();
}

net::WaypointGraph must_read(const std::string& csv) {
  std::istringstream in(csv);
  auto graph = read_waypoint_graph_csv(in);
  EXPECT_TRUE(graph.has_value()) << graph.fault().message;
  return graph.has_value() ? std::move(graph.value()) : net::WaypointGraph{};
}

TEST(GraphIoTest, ReadsNodesEdgesAndObstacles) {
  const net::WaypointGraph g = must_read(
      "# comment\n"
      "node,0,0\n"
      "node,100,0\n"
      "\n"
      "edge,0,1\n"
      "obstacle,50,-10,50,10\n");
  ASSERT_EQ(g.nodes.size(), 2u);
  ASSERT_EQ(g.edges.size(), 1u);
  ASSERT_EQ(g.obstacles.size(), 1u);
  // Omitted weight defaults to the chord length.
  EXPECT_EQ(g.edges[0].weight, 100.0);
}

TEST(GraphIoTest, NanAndInfWeightsAreRejectedWithTheLineNumber) {
  const support::Fault nan_fault = must_fault(
      "node,0,0\nnode,1,1\nedge,0,1,nan\n");
  EXPECT_EQ(nan_fault.kind, support::FaultKind::kInvalidInput);
  EXPECT_NE(nan_fault.message.find("line 3"), std::string::npos)
      << nan_fault.message;

  const support::Fault inf_fault = must_fault(
      "node,0,0\n\nnode,1,1\nedge,0,1,inf\n");
  EXPECT_NE(inf_fault.message.find("line 4"), std::string::npos)
      << "blank lines still count: " << inf_fault.message;

  const support::Fault neg_fault = must_fault(
      "node,0,0\nnode,1,1\nedge,0,1,-5\n");
  EXPECT_NE(neg_fault.message.find("line 3"), std::string::npos);
}

TEST(GraphIoTest, NonFiniteCoordinatesAreRejected) {
  EXPECT_NE(must_fault("node,nan,0\n").message.find("line 1"),
            std::string::npos);
  EXPECT_NE(must_fault("node,0,0\nobstacle,0,0,inf,1\n")
                .message.find("line 2"),
            std::string::npos);
}

TEST(GraphIoTest, SelfLoopsAreRejected) {
  const support::Fault fault =
      must_fault("node,0,0\nnode,1,1\nedge,1,1,5\n");
  EXPECT_EQ(fault.kind, support::FaultKind::kInvalidInput);
  EXPECT_NE(fault.message.find("line 3"), std::string::npos);
  EXPECT_NE(fault.message.find("self-loop"), std::string::npos);
}

TEST(GraphIoTest, DanglingEndpointsAreRejected) {
  const support::Fault fault =
      must_fault("node,0,0\nnode,1,1\nedge,0,7\n");
  EXPECT_NE(fault.message.find("line 3"), std::string::npos);
  EXPECT_NE(fault.message.find("dangling"), std::string::npos);
}

TEST(GraphIoTest, DuplicateEdgesAreRejectedCitingBothLines) {
  // The duplicate is reported at its own line and names the first
  // occurrence — including the reversed-orientation duplicate.
  const support::Fault fault = must_fault(
      "node,0,0\nnode,1,1\nedge,0,1,5\nedge,1,0,7\n");
  EXPECT_NE(fault.message.find("line 4"), std::string::npos)
      << fault.message;
  EXPECT_NE(fault.message.find("first at line 3"), std::string::npos)
      << fault.message;
}

TEST(GraphIoTest, MalformedRecordsAreRejected) {
  EXPECT_NE(must_fault("node,1\n").message.find("line 1"),
            std::string::npos);
  EXPECT_NE(must_fault("node,0,0\nedge,0\n").message.find("line 2"),
            std::string::npos);
  EXPECT_NE(must_fault("node,0,0\nedge,a,b\n").message.find("line 2"),
            std::string::npos);
  EXPECT_NE(must_fault("truck,0,0\n").message.find("unknown record"),
            std::string::npos);
  EXPECT_NE(must_fault("").message.find("no nodes"), std::string::npos);
}

TEST(GraphIoTest, CoincidentNodesCannotDefaultTheirWeight) {
  const support::Fault fault =
      must_fault("node,5,5\nnode,5,5\nedge,0,1\n");
  EXPECT_NE(fault.message.find("line 3"), std::string::npos);
}

TEST(GraphIoTest, RoundTripsThroughWriteAndRead) {
  net::WaypointGraph g;
  g.nodes = {{0.0, 0.0}, {250.0, 0.0}, {250.0, 125.0}};
  g.edges = {{0, 1, 250.0}, {1, 2, 125.0}};
  g.obstacles = {{{100.0, -50.0}, {100.0, 50.0}}};
  std::ostringstream out;
  write_waypoint_graph_csv(g, out);
  const net::WaypointGraph back = must_read(out.str());
  ASSERT_EQ(back.nodes.size(), g.nodes.size());
  ASSERT_EQ(back.edges.size(), g.edges.size());
  ASSERT_EQ(back.obstacles.size(), g.obstacles.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].x, g.nodes[i].x);
    EXPECT_EQ(back.nodes[i].y, g.nodes[i].y);
  }
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].u, g.edges[i].u);
    EXPECT_EQ(back.edges[i].v, g.edges[i].v);
    EXPECT_EQ(back.edges[i].weight, g.edges[i].weight);
  }
}

TEST(GraphIoTest, MissingFileIsInvalidInput) {
  auto graph = read_waypoint_graph_csv_file("/nonexistent/never.csv");
  ASSERT_FALSE(graph.has_value());
  EXPECT_EQ(graph.fault().kind, support::FaultKind::kInvalidInput);
  EXPECT_NE(graph.fault().message.find("cannot open"), std::string::npos);
}

TEST(GraphIoTest, DisconnectedGraphNamesTheFirstUnreachableSensor) {
  // Two components: depot snaps into {0,1}; sensors near node 2 cannot
  // be reached.
  net::WaypointGraph g;
  g.nodes = {{0.0, 0.0}, {100.0, 0.0}, {1000.0, 1000.0}, {900.0, 1000.0}};
  g.edges = {{0, 1, 100.0}, {2, 3, 100.0}};
  const std::vector<geometry::Point2> sensors = {
      {10.0, 10.0}, {980.0, 990.0}, {990.0, 995.0}};
  auto verdict = validate_waypoint_graph(g, sensors, {0.0, 0.0});
  ASSERT_FALSE(verdict.has_value());
  EXPECT_EQ(verdict.fault().kind, support::FaultKind::kDisconnected);
  EXPECT_NE(verdict.fault().message.find("sensor 1"), std::string::npos)
      << verdict.fault().message;
  EXPECT_EQ(verdict.fault().stop_index, 1u);
}

TEST(GraphIoTest, ConnectedGraphValidates) {
  net::WaypointGraph g;
  g.nodes = {{0.0, 0.0}, {500.0, 500.0}, {1000.0, 1000.0}};
  g.edges = {{0, 1, 720.0}, {1, 2, 720.0}};
  const std::vector<geometry::Point2> sensors = {{10.0, 10.0},
                                                 {990.0, 990.0}};
  auto verdict = validate_waypoint_graph(g, sensors, {0.0, 0.0});
  ASSERT_TRUE(verdict.has_value()) << verdict.fault().message;
  EXPECT_TRUE(verdict.value());
}

}  // namespace
}  // namespace bc::io
