// Tests for plan JSON export.

#include "io/plan_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tour/planner.h"

namespace bc::io {
namespace {

struct Fixture {
  net::Deployment deployment;
  tour::ChargingPlan plan;
  sim::EvaluationConfig evaluation{};
};

Fixture make_fixture() {
  support::Rng rng(7);
  net::FieldSpec spec;
  net::Deployment d = net::uniform_random_deployment(25, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  tour::ChargingPlan plan = tour::plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

TEST(PlanIoTest, JsonContainsAllSections) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  EXPECT_NE(json.find("\"algorithm\": \"BC\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_policy\": \"isolated\""),
            std::string::npos);
  EXPECT_NE(json.find("\"depot\": [0, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"stops\": ["), std::string::npos);
  EXPECT_NE(json.find("\"stop_time_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"total_energy_j\":"), std::string::npos);
}

TEST(PlanIoTest, StopCountMatchesPlan) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"position\"");
       pos != std::string::npos; pos = json.find("\"position\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, f.plan.stops.size());
}

TEST(PlanIoTest, JsonBracesBalance) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(PlanIoTest, PolicyAffectsReportedTimes) {
  const Fixture f = make_fixture();
  sim::EvaluationConfig lp = f.evaluation;
  lp.policy = sim::SchedulePolicy::kOptimalLp;
  const std::string a = plan_to_json(f.deployment, f.plan, f.evaluation);
  const std::string b = plan_to_json(f.deployment, f.plan, lp);
  EXPECT_NE(a, b);
  EXPECT_NE(b.find("\"schedule_policy\": \"optimal-lp\""),
            std::string::npos);
}

TEST(PlanIoTest, WritesFile) {
  const Fixture f = make_fixture();
  const std::string path = ::testing::TempDir() + "/bc_plan.json";
  ASSERT_TRUE(
      write_plan_json_file(f.deployment, f.plan, f.evaluation, path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, plan_to_json(f.deployment, f.plan, f.evaluation));
  EXPECT_FALSE(write_plan_json_file(f.deployment, f.plan, f.evaluation,
                                    "/no/such/dir/plan.json"));
}

}  // namespace
}  // namespace bc::io
