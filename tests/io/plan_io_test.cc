// Tests for plan JSON export and the hardened read path.

#include "io/plan_io.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tour/planner.h"

namespace bc::io {
namespace {

struct Fixture {
  net::Deployment deployment;
  tour::ChargingPlan plan;
  sim::EvaluationConfig evaluation{};
};

Fixture make_fixture() {
  support::Rng rng(7);
  net::FieldSpec spec;
  net::Deployment d = net::uniform_random_deployment(25, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  tour::ChargingPlan plan = tour::plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

TEST(PlanIoTest, JsonContainsAllSections) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  EXPECT_NE(json.find("\"algorithm\": \"BC\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_policy\": \"isolated\""),
            std::string::npos);
  EXPECT_NE(json.find("\"depot\": [0, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"stops\": ["), std::string::npos);
  EXPECT_NE(json.find("\"stop_time_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"total_energy_j\":"), std::string::npos);
}

TEST(PlanIoTest, StopCountMatchesPlan) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"position\"");
       pos != std::string::npos; pos = json.find("\"position\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, f.plan.stops.size());
}

TEST(PlanIoTest, JsonBracesBalance) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(PlanIoTest, PolicyAffectsReportedTimes) {
  const Fixture f = make_fixture();
  sim::EvaluationConfig lp = f.evaluation;
  lp.policy = sim::SchedulePolicy::kOptimalLp;
  const std::string a = plan_to_json(f.deployment, f.plan, f.evaluation);
  const std::string b = plan_to_json(f.deployment, f.plan, lp);
  EXPECT_NE(a, b);
  EXPECT_NE(b.find("\"schedule_policy\": \"optimal-lp\""),
            std::string::npos);
}

TEST(PlanIoTest, WritesFile) {
  const Fixture f = make_fixture();
  const std::string path = ::testing::TempDir() + "/bc_plan.json";
  ASSERT_TRUE(
      write_plan_json_file(f.deployment, f.plan, f.evaluation, path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, plan_to_json(f.deployment, f.plan, f.evaluation));
  EXPECT_FALSE(write_plan_json_file(f.deployment, f.plan, f.evaluation,
                                    "/no/such/dir/plan.json"));
}

// --- read path -----------------------------------------------------------

TEST(PlanIoReadTest, RoundTripsExportedPlan) {
  const Fixture f = make_fixture();
  const std::string json = plan_to_json(f.deployment, f.plan, f.evaluation);
  const auto loaded = read_plan_json(json, f.deployment.size());
  ASSERT_TRUE(loaded.has_value()) << support::describe(loaded.fault());
  const LoadedPlan& back = loaded.value();
  EXPECT_EQ(back.plan.algorithm, f.plan.algorithm);
  EXPECT_EQ(back.plan.depot.x, f.plan.depot.x);
  EXPECT_EQ(back.plan.depot.y, f.plan.depot.y);
  ASSERT_EQ(back.plan.stops.size(), f.plan.stops.size());
  ASSERT_EQ(back.stop_times_s.size(), f.plan.stops.size());
  for (std::size_t i = 0; i < back.plan.stops.size(); ++i) {
    EXPECT_EQ(back.plan.stops[i].members, f.plan.stops[i].members);
    EXPECT_GE(back.stop_times_s[i], 0.0);
  }
  EXPECT_TRUE(tour::plan_is_partition(f.deployment, back.plan));
}

TEST(PlanIoReadTest, RoundTripsViaFile) {
  const Fixture f = make_fixture();
  const std::string path = ::testing::TempDir() + "/bc_plan_rt.json";
  ASSERT_TRUE(
      write_plan_json_file(f.deployment, f.plan, f.evaluation, path));
  const auto loaded = read_plan_json_file(path, f.deployment.size());
  ASSERT_TRUE(loaded.has_value()) << support::describe(loaded.fault());
  EXPECT_EQ(loaded.value().plan.stops.size(), f.plan.stops.size());

  const auto missing = read_plan_json_file("/no/such/plan.json", 0);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.fault().kind, support::FaultKind::kInvalidInput);
}

// Minimal hand-written document accepted by the reader; the tests below
// mutate it one defect at a time.
std::string tiny_plan() {
  return R"({
  "algorithm": "BC",
  "depot": [0, 0],
  "stops": [
    {"position": [1, 2], "stop_time_s": 3.5, "members": [0, 2]},
    {"position": [4, 5], "stop_time_s": 0, "members": [1]}
  ]
})";
}

TEST(PlanIoReadTest, AcceptsTinyPlanAndIgnoresMetricsBlock) {
  const auto loaded = read_plan_json(tiny_plan(), 3);
  ASSERT_TRUE(loaded.has_value()) << support::describe(loaded.fault());
  EXPECT_EQ(loaded.value().plan.stops.size(), 2u);
  EXPECT_EQ(loaded.value().stop_times_s[0], 3.5);
}

TEST(PlanIoReadTest, RejectsNonFiniteNumbers) {
  for (const char* bad : {"1e999", "-1e999"}) {
    std::string json = tiny_plan();
    json.replace(json.find("3.5"), 3, bad);
    const auto loaded = read_plan_json(json, 3);
    ASSERT_FALSE(loaded.has_value()) << bad;
    EXPECT_EQ(loaded.fault().kind, support::FaultKind::kInvalidInput);
    EXPECT_NE(loaded.fault().message.find("non-finite"), std::string::npos);
  }
  // JSON has no NaN/Infinity literals; they must fail the parse, not
  // silently read as zero.
  std::string json = tiny_plan();
  json.replace(json.find("3.5"), 3, "NaN");
  EXPECT_FALSE(read_plan_json(json, 3).has_value());
}

TEST(PlanIoReadTest, RejectsWrongDepotArity) {
  std::string json = tiny_plan();
  json.replace(json.find("[0, 0]"), 6, "[0, 0, 0]");
  const auto loaded = read_plan_json(json, 3);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.fault().message.find("2-element"), std::string::npos);
  // The error names the offending line (depot is on line 3).
  EXPECT_NE(loaded.fault().message.find("line 3"), std::string::npos);
}

TEST(PlanIoReadTest, RejectsMemberIndexOutOfRange) {
  const auto loaded = read_plan_json(tiny_plan(), 2);  // member 2 invalid
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.fault().message.find("out of range"), std::string::npos);
  EXPECT_NE(loaded.fault().message.find("line 5"), std::string::npos);
}

TEST(PlanIoReadTest, RejectsDoubleAndMissingAssignment) {
  std::string dup = tiny_plan();
  dup.replace(dup.find("\"members\": [1]"), 14, "\"members\": [1, 0]");
  const auto doubled = read_plan_json(dup, 3);
  ASSERT_FALSE(doubled.has_value());
  EXPECT_NE(doubled.fault().message.find("more than one stop"),
            std::string::npos);

  const auto uncovered = read_plan_json(tiny_plan(), 4);  // sensor 3 unused
  ASSERT_FALSE(uncovered.has_value());
  EXPECT_NE(uncovered.fault().message.find("not assigned"),
            std::string::npos);

  // expected_sensors = 0 skips the partition checks entirely.
  EXPECT_TRUE(read_plan_json(tiny_plan(), 0).has_value());
}

TEST(PlanIoReadTest, RejectsStructuralDamage) {
  const std::string json = tiny_plan();
  // Truncation at any point must fail cleanly, never crash or accept.
  for (std::size_t cut = 0; cut < json.size(); cut += 7) {
    const auto loaded = read_plan_json(json.substr(0, cut), 3);
    EXPECT_FALSE(loaded.has_value()) << "cut at " << cut;
  }
  std::string nul = json;
  nul[nul.find("BC")] = '\0';
  EXPECT_FALSE(read_plan_json(nul, 3).has_value());

  std::string negative_time = json;
  negative_time.replace(negative_time.find("3.5"), 3, "-1");
  const auto neg = read_plan_json(negative_time, 3);
  ASSERT_FALSE(neg.has_value());
  EXPECT_NE(neg.fault().message.find("negative stop time"),
            std::string::npos);

  std::string fractional_member = json;
  fractional_member.replace(fractional_member.find("[0, 2]"), 6, "[0.5, 2]");
  EXPECT_FALSE(read_plan_json(fractional_member, 3).has_value());

  EXPECT_FALSE(read_plan_json("", 3).has_value());
  EXPECT_FALSE(read_plan_json("[1, 2, 3]", 3).has_value());
  EXPECT_FALSE(read_plan_json(json + "trailing", 3).has_value());
}

}  // namespace
}  // namespace bc::io
