// BoundedQueue semantics: non-blocking admission at capacity, blocking
// pop, and close() that drains accepted work but refuses new work.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/bounded_queue.h"

namespace bc {
namespace {

using service::BoundedQueue;

TEST(BoundedQueueTest, TryPushRefusesBeyondCapacityWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full: immediate refusal, no wait
  EXPECT_EQ(queue.size(), 2u);
  auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped.value(), 1);
  EXPECT_TRUE(queue.try_push(3));  // slot freed
}

TEST(BoundedQueueTest, CloseDrainsAcceptedWorkThenReleasesPoppers) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(7));
  ASSERT_TRUE(queue.try_push(8));
  queue.close();
  EXPECT_FALSE(queue.try_push(9)) << "closed queue must refuse admission";
  EXPECT_EQ(queue.pop().value(), 7);
  EXPECT_EQ(queue.pop().value(), 8);
  EXPECT_FALSE(queue.pop().has_value()) << "drained + closed = worker exit";
}

TEST(BoundedQueueTest, BlockedPopperIsWokenByPush) {
  BoundedQueue<int> queue(1);
  int received = 0;
  std::thread popper([&] { received = queue.pop().value_or(-1); });
  ASSERT_TRUE(queue.try_push(42));
  popper.join();
  EXPECT_EQ(received, 42);
}

TEST(BoundedQueueTest, CloseWakesEveryBlockedPopper) {
  BoundedQueue<int> queue(1);
  std::vector<std::thread> poppers;
  std::atomic<int> exited{0};
  for (int i = 0; i < 4; ++i) {
    poppers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      exited.fetch_add(1);
    });
  }
  queue.close();
  for (std::thread& t : poppers) t.join();
  EXPECT_EQ(exited.load(), 4);
}

TEST(BoundedQueueTest, PeakTracksTheDepthHighWaterMark) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.peak(), 0u);
  ASSERT_TRUE(queue.try_push(1));
  ASSERT_TRUE(queue.try_push(2));
  ASSERT_TRUE(queue.try_push(3));
  EXPECT_EQ(queue.peak(), 3u);
  // Draining never lowers the high-water mark.
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  EXPECT_EQ(queue.pop().value_or(-1), 2);
  EXPECT_EQ(queue.peak(), 3u);
  // Refilling to capacity raises it; rejected pushes do not overshoot.
  ASSERT_TRUE(queue.try_push(4));
  ASSERT_TRUE(queue.try_push(5));
  ASSERT_TRUE(queue.try_push(6));
  EXPECT_FALSE(queue.try_push(7));
  EXPECT_EQ(queue.peak(), 4u);
}

TEST(BoundedQueueTest, ConcurrentProducersNeverExceedCapacity) {
  BoundedQueue<int> queue(8);
  std::atomic<int> admitted{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (queue.try_push(i)) admitted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_LE(queue.size(), 8u);
  EXPECT_EQ(static_cast<std::size_t>(admitted.load()), queue.size());
}

}  // namespace
}  // namespace bc
