// Incremental replanning engine: sketch/diff/classify units, the
// differential mutation corpus (patched plans must be valid partitions
// within the fallback bound of a cold solve), determinism, and the
// server-level fast path + cross-request batching.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/request_mapping.h"
#include "geometry/point.h"
#include "io/deployment_io.h"
#include "service/client.h"
#include "service/incremental.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "service/wire.h"
#include "sim/evaluate.h"
#include "support/deadline.h"
#include "tour/plan.h"

namespace bc {
namespace {

using service::BaseEntry;
using service::BaseStore;
using service::HttpResponse;
using service::IncrementalOptions;
using service::PatchResult;
using service::PatchVerdict;
using service::PlanRequest;
using service::Server;
using service::ServerOptions;

constexpr double kRadius = 120.0;

// Deterministic LCG scatter; `span` controls the field side.
std::vector<geometry::Point2> scatter(std::size_t n, std::uint64_t seed,
                                      double span = 2000.0) {
  std::vector<geometry::Point2> out;
  out.reserve(n);
  std::uint64_t state = seed * 2654435761u + 12345u;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 100000) / 100000.0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double x = next() * span;
    const double y = next() * span;
    out.push_back({x, y});
  }
  return out;
}

PlanRequest make_request(std::vector<geometry::Point2> positions) {
  PlanRequest request;
  request.algorithm = "BC";
  request.radius_m = kRadius;
  request.positions = std::move(positions);
  return request;
}

struct ColdSolve {
  core::Profile profile;
  net::Deployment deployment;
  tour::ChargingPlan plan;
  double objective_j = 0.0;
};

ColdSolve cold_solve(const PlanRequest& request) {
  auto resolved = core::resolve_plan_request(request.profile,
                                             request.algorithm,
                                             request.radius_m, 0.0);
  EXPECT_TRUE(resolved.has_value());
  ColdSolve cold{resolved.value().profile,
                 io::deployment_from_positions(request.positions,
                                               request.depot,
                                               request.demand_j),
                 {},
                 0.0};
  support::BudgetMeter meter(cold.profile.planner.budget);
  cold.plan = tour::plan_charging_tour(cold.deployment,
                                       resolved.value().algorithm,
                                       cold.profile.planner, &meter);
  cold.objective_j =
      sim::evaluate_plan(cold.deployment, cold.plan, cold.profile.evaluation)
          .total_energy_j;
  return cold;
}

BaseEntry make_base(const PlanRequest& request, const ColdSolve& cold,
                    const IncrementalOptions& options) {
  BaseEntry base;
  base.key = service::hash_fingerprint(service::canonical_fingerprint(request));
  base.request = request;
  base.plan = cold.plan;
  base.objective_j = cold.objective_j;
  base.radius_m = kRadius;
  base.sketch = service::position_sketch(
      request.positions, options.patch_radius_factor * kRadius,
      options.sketch_hashes);
  return base;
}

// One mutated request: `kind` 0 = add near existing sensors, 1 = remove,
// 2 = move by a small delta. All mutations are local by construction.
PlanRequest mutate(const PlanRequest& base, int kind, std::size_t k,
                   std::uint64_t seed) {
  PlanRequest request = base;
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 7u;
  const auto pick = [&state](std::size_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>((state >> 33) % bound);
  };
  if (kind == 0) {
    for (std::size_t i = 0; i < k; ++i) {
      const geometry::Point2 anchor = request.positions[
          pick(base.positions.size())];
      const double dx = static_cast<double>(pick(101)) - 50.0;
      const double dy = static_cast<double>(pick(101)) - 50.0;
      request.positions.push_back({anchor.x + dx, anchor.y + dy});
    }
  } else if (kind == 1) {
    std::vector<std::size_t> victims;
    while (victims.size() < k) {
      const std::size_t id = pick(base.positions.size());
      if (std::find(victims.begin(), victims.end(), id) == victims.end()) {
        victims.push_back(id);
      }
    }
    std::sort(victims.rbegin(), victims.rend());
    for (const std::size_t id : victims) {
      request.positions.erase(request.positions.begin() +
                              static_cast<std::ptrdiff_t>(id));
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t id = pick(request.positions.size());
      request.positions[id].x += static_cast<double>(pick(61)) - 30.0;
      request.positions[id].y += static_cast<double>(pick(61)) - 30.0;
    }
  }
  return request;
}

TEST(IncrementalSketchTest, NearDuplicatesOverlapUnrelatedFieldsDoNot) {
  const IncrementalOptions options;
  const auto base = scatter(200, 1);
  auto moved = base;
  moved[7].x += 25.0;
  moved[91].y -= 40.0;
  moved.push_back({base[3].x + 10.0, base[3].y - 5.0});
  const double cell = options.patch_radius_factor * kRadius;
  const auto sketch_base =
      service::position_sketch(base, cell, options.sketch_hashes);
  const auto sketch_moved =
      service::position_sketch(moved, cell, options.sketch_hashes);
  EXPECT_GE(service::sketch_overlap(sketch_base, sketch_moved),
            options.min_sketch_overlap);

  // A deployment in a disjoint region of the plane shares no cells.
  auto far = scatter(200, 2);
  for (auto& p : far) p.x += 50000.0;
  const auto sketch_far =
      service::position_sketch(far, cell, options.sketch_hashes);
  EXPECT_EQ(service::sketch_overlap(sketch_base, sketch_far), 0u);
}

TEST(IncrementalDiffTest, MatchesBitExactlyIncludingDuplicatePositions) {
  PlanRequest base = make_request(
      {{0.0, 0.0}, {10.0, 10.0}, {10.0, 10.0}, {20.0, 5.0}});
  // New request: one copy of the duplicate gone, one sensor moved, one new.
  PlanRequest request = make_request(
      {{0.0, 0.0}, {10.0, 10.0}, {21.0, 5.0}, {99.0, 99.0}});
  const service::RequestDiff diff = service::diff_requests(base, request);
  // Base id 0 -> new id 0; the duplicate at (10,10): base id 1 takes new
  // id 1 (front-first), base id 2 is removed; base id 3 (moved) removed.
  EXPECT_EQ(diff.base_to_new[0], 0u);
  EXPECT_EQ(diff.base_to_new[1], 1u);
  EXPECT_EQ(diff.base_to_new[2], service::RequestDiff::kUnmatched);
  EXPECT_EQ(diff.base_to_new[3], service::RequestDiff::kUnmatched);
  EXPECT_EQ(diff.added, (std::vector<net::SensorId>{2, 3}));
  EXPECT_EQ(diff.removed, (std::vector<net::SensorId>{2, 3}));
  EXPECT_EQ(diff.size(), 4u);
}

TEST(IncrementalClassifyTest, OversizedAndNonLocalDiffsAreRejected) {
  IncrementalOptions options;
  const PlanRequest base_request = make_request(scatter(80, 3));
  const ColdSolve cold = cold_solve(base_request);
  const BaseEntry base = make_base(base_request, cold, options);

  // Too large: more added sensors than max_diff_sensors.
  options.max_diff_sensors = 4;
  PlanRequest big = mutate(base_request, 0, 6, 11);
  {
    const auto deployment = io::deployment_from_positions(
        big.positions, big.depot, big.demand_j);
    const PatchResult result = service::patch_plan(
        deployment, big, base, cold.profile, options);
    EXPECT_EQ(result.verdict, PatchVerdict::kDiffTooLarge);
  }

  // Not local: an added sensor in untouched far field.
  options.max_diff_sensors = 40;
  PlanRequest far = base_request;
  far.positions.push_back({90000.0, 90000.0});
  {
    const auto deployment = io::deployment_from_positions(
        far.positions, far.depot, far.demand_j);
    const PatchResult result = service::patch_plan(
        deployment, far, base, cold.profile, options);
    EXPECT_EQ(result.verdict, PatchVerdict::kDiffNotLocal);
  }
}

TEST(IncrementalBaseStoreTest, FifoEvictionAndNearestBySketchOverlap) {
  IncrementalOptions options;
  options.max_bases = 2;
  options.min_sketch_overlap = 4;
  BaseStore store(options);
  const double cell = options.patch_radius_factor * kRadius;

  const auto mk = [&](std::uint64_t seed, const std::string& key) {
    BaseEntry entry;
    entry.key = key;
    entry.request = make_request(scatter(60, seed));
    entry.radius_m = kRadius;
    entry.sketch = service::position_sketch(entry.request.positions, cell,
                                            options.sketch_hashes);
    return entry;
  };
  store.insert(mk(1, "a"));
  store.insert(mk(2, "b"));
  EXPECT_EQ(store.size(), 2u);
  store.insert(mk(1, "a"));  // refresh, not duplicate
  EXPECT_EQ(store.size(), 2u);
  store.insert(mk(3, "c"));  // evicts the FIFO head
  EXPECT_EQ(store.size(), 2u);

  // A near-duplicate of seed-3 finds the "c" base.
  PlanRequest probe = make_request(scatter(60, 3));
  probe.positions[5].x += 20.0;
  const auto sketch = service::position_sketch(probe.positions, cell,
                                               options.sketch_hashes);
  const BaseEntry* nearest = store.nearest(probe, sketch);
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->key, "c");

  // Different radius = incompatible, even with a perfect sketch.
  probe.radius_m = kRadius + 1.0;
  EXPECT_EQ(store.nearest(probe, sketch), nullptr);
}

// The differential corpus: add/remove/move x K in {1, 4, 16}. Every
// mutation is local, so the patch must succeed, produce a valid
// partition, and stay within fallback_ratio of the mutated instance's
// own cold solve.
TEST(IncrementalDifferentialTest, PatchedPlansAreValidAndWithinFallbackBound) {
  const IncrementalOptions options;
  const PlanRequest base_request = make_request(scatter(120, 17));
  const ColdSolve base_cold = cold_solve(base_request);
  const BaseEntry base = make_base(base_request, base_cold, options);

  for (int kind = 0; kind < 3; ++kind) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}}) {
      SCOPED_TRACE("kind=" + std::to_string(kind) +
                   " k=" + std::to_string(k));
      const PlanRequest request =
          mutate(base_request, kind, k, 1000 + static_cast<std::uint64_t>(
                                                   kind * 100 + k));
      const auto deployment = io::deployment_from_positions(
          request.positions, request.depot, request.demand_j);
      const PatchResult result = service::patch_plan(
          deployment, request, base, base_cold.profile, options);
      ASSERT_EQ(result.verdict, PatchVerdict::kPatched)
          << service::to_string(result.verdict);
      EXPECT_TRUE(tour::plan_is_partition(deployment, result.plan));
      const ColdSolve mutated_cold = cold_solve(request);
      EXPECT_LE(result.objective_j,
                options.fallback_ratio * mutated_cold.objective_j)
          << "patched " << result.objective_j << " vs cold "
          << mutated_cold.objective_j;
    }
  }
}

TEST(IncrementalDeterminismTest, PatchedPlansAreBitIdenticalAcrossRuns) {
  const IncrementalOptions options;
  const PlanRequest base_request = make_request(scatter(100, 23));
  const ColdSolve cold = cold_solve(base_request);
  const BaseEntry base = make_base(base_request, cold, options);
  const PlanRequest request = mutate(base_request, 2, 8, 42);
  const auto deployment = io::deployment_from_positions(
      request.positions, request.depot, request.demand_j);

  const PatchResult first = service::patch_plan(
      deployment, request, base, cold.profile, options);
  const PatchResult second = service::patch_plan(
      deployment, request, base, cold.profile, options);
  ASSERT_EQ(first.verdict, PatchVerdict::kPatched);
  ASSERT_EQ(second.verdict, PatchVerdict::kPatched);
  EXPECT_EQ(service::encode_plan(first.plan),
            service::encode_plan(second.plan));
  EXPECT_EQ(first.objective_j, second.objective_j);
}

// ---- Server-level fast path -------------------------------------------

std::string positions_body(const std::vector<geometry::Point2>& positions) {
  std::string out = "algorithm=BC\nradius=120\npositions=";
  char buffer[64];
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::snprintf(buffer, sizeof buffer, "%.17g,%.17g", positions[i].x,
                  positions[i].y);
    out += buffer;
    if (i + 1 < positions.size()) out += ";";
  }
  out += "\ndepot=0,0\n";
  return out;
}

HttpResponse must_roundtrip(std::uint16_t port, const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  auto response = service::http_roundtrip(port, method, path, body);
  EXPECT_TRUE(response.has_value()) << response.fault().message;
  return response.has_value() ? response.value() : HttpResponse{};
}

std::string field_str(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << body;
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = body.find_first_of(",\n", start);
  if (end == std::string::npos) end = body.size();
  return body.substr(start, end - start);
}

std::uint64_t field_u64(const std::string& body, const std::string& name) {
  return std::strtoull(field_str(body, name).c_str(), nullptr, 10);
}

TEST(ServerIncrementalTest, NearDuplicateRequestIsServedIncrementally) {
  auto started = Server::start(ServerOptions{});
  ASSERT_TRUE(started.has_value()) << started.fault().message;
  auto& server = started.value();

  const auto base = scatter(100, 5, 1000.0);
  const HttpResponse cold = must_roundtrip(server->port(), "POST", "/v1/plan",
                                           positions_body(base));
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_EQ(field_str(cold.body, "incremental"), "false");

  auto moved = base;
  moved[13].x += 30.0;
  moved[57].y -= 25.0;
  const HttpResponse patched = must_roundtrip(
      server->port(), "POST", "/v1/plan", positions_body(moved));
  ASSERT_EQ(patched.status, 200) << patched.body;
  EXPECT_EQ(field_str(patched.body, "cached"), "false");
  EXPECT_EQ(field_str(patched.body, "incremental"), "true");

  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  EXPECT_EQ(field_u64(stats.body, "incremental_attempts"), 1u);
  EXPECT_EQ(field_u64(stats.body, "incremental_hits"), 1u);
  EXPECT_EQ(field_u64(stats.body, "incremental_fallbacks"), 0u);
  EXPECT_EQ(field_u64(stats.body, "cache_misses"), 2u);
  EXPECT_GE(field_u64(stats.body, "queue_depth_peak"), 1u);
  EXPECT_EQ(field_u64(stats.body, "base_entries"), 1u);
}

TEST(ServerIncrementalTest, DisablingTheFastPathColdSolvesEverything) {
  ServerOptions options;
  options.enable_incremental = false;
  auto started = Server::start(options);
  ASSERT_TRUE(started.has_value()) << started.fault().message;
  auto& server = started.value();

  const auto base = scatter(60, 6, 1000.0);
  must_roundtrip(server->port(), "POST", "/v1/plan", positions_body(base));
  auto moved = base;
  moved[9].x += 20.0;
  const HttpResponse second = must_roundtrip(
      server->port(), "POST", "/v1/plan", positions_body(moved));
  EXPECT_EQ(field_str(second.body, "incremental"), "false");
  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  EXPECT_EQ(field_u64(stats.body, "incremental_attempts"), 0u);
  EXPECT_EQ(field_u64(stats.body, "base_entries"), 0u);
}

TEST(ServerBatchingTest, ConcurrentDuplicatesCoalesceOntoOneSolve) {
  ServerOptions options;
  options.workers = 1;
  options.enable_test_hooks = true;
  auto started = Server::start(options);
  ASSERT_TRUE(started.has_value()) << started.fault().message;
  auto& server = started.value();

  // Occupy the single worker so the leader stays in-flight long enough
  // for every duplicate to park on it.
  const std::string stall_body =
      positions_body(scatter(30, 7, 1000.0)) + "stall_ms=400\n";
  std::thread stall([&] {
    must_roundtrip(server->port(), "POST", "/v1/plan", stall_body);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const std::string body = positions_body(scatter(40, 8, 1000.0));
  constexpr std::size_t kClients = 5;
  std::vector<HttpResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] = must_roundtrip(server->port(), "POST", "/v1/plan", body);
    });
  }
  for (auto& t : clients) t.join();
  stall.join();

  for (const HttpResponse& response : responses) {
    ASSERT_EQ(response.status, 200) << response.body;
  }
  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  // Exactly one request solved this body; the rest coalesced (and were
  // served from the cache entry the leader created).
  EXPECT_EQ(field_u64(stats.body, "coalesced"), kClients - 1);
  EXPECT_EQ(field_u64(stats.body, "cache_hits"), kClients - 1);
  // Waiters are served through the normal path, so their bodies match a
  // serial cache hit byte for byte; the leader's differs only in the
  // "cached" field.
  std::size_t cached_count = 0;
  for (const HttpResponse& response : responses) {
    if (field_str(response.body, "cached") == "true") ++cached_count;
  }
  EXPECT_EQ(cached_count, kClients - 1);
}

}  // namespace
}  // namespace bc
