// Wire-protocol hardening tests: the HTTP subset and the plan-request
// schema both read hostile bytes, so every malformed input must map to a
// structured fault, and the canonical fingerprint must be exactly as
// sensitive as the planner (every result-affecting field, nothing else).

#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "service/wire.h"
#include "support/socket.h"

namespace bc {
namespace {

using service::HttpRequest;
using service::HttpResponse;
using service::PlanRequest;
using service::WireLimits;

// Feeds `bytes` to the request/response readers through a pipe (read_some
// works on any fd).
struct Feed {
  int read_fd = -1;
  explicit Feed(const std::string& bytes) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
      ADD_FAILURE() << "pipe() failed";
      return;
    }
    read_fd = fds[0];
    EXPECT_TRUE(support::write_all(fds[1], bytes).has_value());
    ::close(fds[1]);
  }
  ~Feed() { ::close(read_fd); }
};

const std::string kBody =
    "algorithm=BC\npositions=10,10;20,20\ndepot=0,0\n";

TEST(WireHttpTest, RequestRoundTripsThroughSerializeAndParse) {
  Feed feed(service::serialize_request("POST", "/v1/plan", kBody));
  auto request = service::read_http_request(feed.read_fd, WireLimits{});
  ASSERT_TRUE(request.has_value()) << request.fault().message;
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().path, "/v1/plan");
  EXPECT_EQ(request.value().body, kBody);
  EXPECT_EQ(request.value().header("connection"), "close");
}

TEST(WireHttpTest, ResponseRoundTripsThroughSerializeAndParse) {
  HttpResponse out;
  out.status = 503;
  out.reason = "Service Unavailable";
  out.headers.emplace_back("Retry-After", "1");
  out.body = "{\"error\": \"overloaded\"}";
  Feed feed(service::serialize_response(out));
  auto response = service::read_http_response(feed.read_fd, WireLimits{});
  ASSERT_TRUE(response.has_value()) << response.fault().message;
  EXPECT_EQ(response.value().status, 503);
  EXPECT_EQ(response.value().body, out.body);
  EXPECT_EQ(response.value().header("retry-after"), "1");
}

TEST(WireHttpTest, PostWithoutContentLengthIsRejected) {
  Feed feed("POST /v1/plan HTTP/1.1\r\nHost: x\r\n\r\n");
  auto request = service::read_http_request(feed.read_fd, WireLimits{});
  ASSERT_FALSE(request.has_value());
  EXPECT_NE(request.fault().message.find("Content-Length"),
            std::string::npos);
}

TEST(WireHttpTest, TransferEncodingIsRejected) {
  Feed feed(
      "POST /v1/plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_FALSE(
      service::read_http_request(feed.read_fd, WireLimits{}).has_value());
}

TEST(WireHttpTest, OversizedHeaderBlockIsRejected) {
  WireLimits limits;
  limits.max_header_bytes = 128;
  Feed feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(4096, 'a') +
            "\r\n\r\n");
  EXPECT_FALSE(service::read_http_request(feed.read_fd, limits).has_value());
}

TEST(WireHttpTest, BodyBeyondLimitIsRejected) {
  WireLimits limits;
  limits.max_body_bytes = 8;
  Feed feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
  EXPECT_FALSE(service::read_http_request(feed.read_fd, limits).has_value());
}

TEST(WireHttpTest, TruncatedBodyIsRejected) {
  Feed feed("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  auto request = service::read_http_request(feed.read_fd, WireLimits{});
  ASSERT_FALSE(request.has_value());
  EXPECT_NE(request.fault().message.find("mid-body"), std::string::npos);
}

TEST(WirePlanRequestTest, FullBodyParses) {
  const std::string body =
      "profile=icdcs2019\n"
      "algorithm=BC-OPT\n"
      "radius=25\n"
      "deadline_ms=1500\n"
      "demand=3.5\n"
      "depot=1,2\n"
      "positions=10,10;20,20;30,30\n"
      "current=5,5\n"
      "remaining=0:1.5;2:0.25\n";
  auto parsed = service::parse_plan_request(body, WireLimits{});
  ASSERT_TRUE(parsed.has_value()) << parsed.fault().message;
  const PlanRequest& request = parsed.value();
  EXPECT_EQ(request.algorithm, "BC-OPT");
  EXPECT_DOUBLE_EQ(request.radius_m, 25.0);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 1500.0);
  EXPECT_DOUBLE_EQ(request.demand_j, 3.5);
  EXPECT_EQ(request.positions.size(), 3u);
  ASSERT_EQ(request.remaining.size(), 2u);
  EXPECT_EQ(request.remaining[1], 2u);
  EXPECT_DOUBLE_EQ(request.deficits_j[1], 0.25);
}

TEST(WirePlanRequestTest, HostileBodiesAreStructuredFaults) {
  const char* bad[] = {
      "",                                     // no positions
      "positions=10,10\npositions=20,20\n",   // duplicate key
      "positions=10,10\nwarp_factor=9\n",     // unknown key
      "positions=10,nan\n",                   // non-finite
      "positions=10,1e999\n",                 // overflow to inf
      "positions=10\n",                       // not a pair
      "positions=10,10;;20,20\n",             // empty list element
      "positions=10,10\ndemand=0\n",          // demand must be > 0
      "positions=10,10\nradius=-1\n",         // negative radius
      "positions=10,10;20,20\nremaining=1:1;0:1\n",  // ids not ascending
      "positions=10,10\nremaining=5:1\n",     // id out of range
      "positions=10,10\nremaining=0:-2\n",    // non-positive deficit
      "positions=10,10\nremaining=0.5:1\n",   // non-integer id
      "no_equals_sign\n",                     // malformed line
  };
  for (const char* body : bad) {
    auto parsed = service::parse_plan_request(body, WireLimits{});
    EXPECT_FALSE(parsed.has_value()) << "accepted: " << body;
  }
}

TEST(WirePlanRequestTest, PositionCountIsBounded) {
  WireLimits limits;
  limits.max_positions = 2;
  EXPECT_FALSE(
      service::parse_plan_request("positions=1,1;2,2;3,3\n", limits)
          .has_value());
}

TEST(WireFingerprintTest, CoversEveryResultAffectingField) {
  const auto parse = [](const std::string& body) {
    auto parsed = service::parse_plan_request(body, WireLimits{});
    EXPECT_TRUE(parsed.has_value()) << parsed.fault().message;
    return parsed.value();
  };
  const PlanRequest base = parse(kBody);
  // Defaults are canonicalised: spelling the defaults out changes nothing.
  EXPECT_EQ(service::canonical_fingerprint(base),
            service::canonical_fingerprint(
                parse("profile=icdcs2019\n" + kBody)));
  // Every solver-visible field moves the fingerprint.
  const char* variants[] = {
      "algorithm=SC\npositions=10,10;20,20\ndepot=0,0\n",
      "algorithm=BC\npositions=10,10;20,21\ndepot=0,0\n",
      "algorithm=BC\npositions=10,10;20,20\ndepot=0,1\n",
      "algorithm=BC\npositions=10,10;20,20\ndepot=0,0\nradius=30\n",
      "algorithm=BC\npositions=10,10;20,20\ndepot=0,0\ndemand=1\n",
      "algorithm=BC\npositions=10,10;20,20;30,30\ndepot=0,0\n",
  };
  for (const char* body : variants) {
    EXPECT_NE(service::canonical_fingerprint(base),
              service::canonical_fingerprint(parse(body)))
        << "fingerprint blind to: " << body;
  }
  // The deadline is a *cutoff*, not an input: two requests differing only
  // in deadline must share a cache entry (non-degraded results are
  // deadline-invariant by the determinism contract).
  EXPECT_EQ(service::canonical_fingerprint(base),
            service::canonical_fingerprint(
                parse(kBody + std::string("deadline_ms=1000\n"))));
}

TEST(WireJsonEscapeTest, EscapesControlAndQuoteBytes) {
  EXPECT_EQ(service::json_escape("a\"b\\c\nd\x01"), "a\\\"b\\\\c\\nd\\u0001");
}

}  // namespace
}  // namespace bc
