// Plan-cache crash safety: the journal must survive SIGKILL at any
// instant and reload byte-identically, the codec must round-trip plans
// bit-exactly, and corruption must be detected, never replayed.

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "service/plan_cache.h"
#include "support/atomic_file.h"

namespace bc {
namespace {

using service::PlanCache;

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "plan_cache_" + tag + "_" +
         std::to_string(::getpid());
}

tour::ChargingPlan sample_plan() {
  tour::ChargingPlan plan;
  plan.algorithm = "BC-OPT";
  plan.depot = {0.0, 0.0};
  plan.stops.push_back({{10.5, -3.25}, {0, 2, 5}});
  plan.stops.push_back({{0.1 + 0.2, 1e-17}, {1, 3, 4}});  // non-exact doubles
  plan.stops.push_back({{-7.0, 42.0}, {}});               // empty members
  return plan;
}

TEST(PlanCodecTest, RoundTripsBitExactly) {
  const tour::ChargingPlan plan = sample_plan();
  const std::string payload = service::encode_plan(plan);
  EXPECT_EQ(payload.find(' '), std::string::npos)
      << "payload must be whitespace-free (journal field separator)";
  auto decoded = service::decode_plan(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.fault().message;
  // Bit-exact: re-encoding the decoded plan reproduces the payload.
  EXPECT_EQ(service::encode_plan(decoded.value()), payload);
  ASSERT_EQ(decoded.value().stops.size(), plan.stops.size());
  EXPECT_EQ(decoded.value().stops[0].members, plan.stops[0].members);
  EXPECT_EQ(decoded.value().stops[1].position.x, plan.stops[1].position.x);
}

TEST(PlanCodecTest, MalformedPayloadsAreFaults) {
  const char* bad[] = {
      "",
      "v2|BC|0x0p+0,0x0p+0",                  // wrong version
      "v1||0x0p+0,0x0p+0",                    // empty algorithm
      "v1|BC|0x0p+0",                         // depot not a pair
      "v1|BC|0x0p+0,0x0p+0|1,2",              // stop without ':'
      "v1|BC|0x0p+0,0x0p+0|zz,1:0",           // bad anchor
      "v1|BC|0x0p+0,0x0p+0|0x1p+1,0x1p+1:x",  // bad member id
  };
  for (const char* payload : bad) {
    EXPECT_FALSE(service::decode_plan(payload).has_value())
        << "accepted: " << payload;
  }
}

TEST(PlanCacheTest, HashIsStableAndCollisionResistant) {
  const std::string key = service::hash_fingerprint("v1|profile=x");
  EXPECT_EQ(key.size(), 24u);
  EXPECT_EQ(key, service::hash_fingerprint("v1|profile=x"));
  EXPECT_NE(key, service::hash_fingerprint("v1|profile=y"));
}

TEST(PlanCacheTest, FlushAndReopenPreservesEntries) {
  const std::string path = temp_path("reopen");
  {
    auto cache = PlanCache::open(path);
    ASSERT_TRUE(cache.has_value());
    cache.value().put("k2", service::encode_plan(sample_plan()));
    cache.value().put("k1", "v1|BC|0x0p+0,0x0p+0");
    ASSERT_TRUE(cache.value().flush().has_value());
  }
  auto reloaded = PlanCache::open(path);
  ASSERT_TRUE(reloaded.has_value()) << reloaded.fault().message;
  EXPECT_EQ(reloaded.value().size(), 2u);
  ASSERT_NE(reloaded.value().lookup("k2"), nullptr);
  EXPECT_EQ(*reloaded.value().lookup("k2"),
            service::encode_plan(sample_plan()));
  EXPECT_EQ(reloaded.value().lookup("absent"), nullptr);
  std::remove(path.c_str());
}

TEST(PlanCacheTest, FileBytesDependOnlyOnTheEntrySet) {
  const std::string path_a = temp_path("order_a");
  const std::string path_b = temp_path("order_b");
  auto a = PlanCache::open(path_a);
  auto b = PlanCache::open(path_b);
  ASSERT_TRUE(a.has_value() && b.has_value());
  a.value().put("alpha", "v1|BC|0x0p+0,0x0p+0");
  a.value().put("beta", "v1|SC|0x0p+0,0x0p+0");
  b.value().put("beta", "v1|SC|0x0p+0,0x0p+0");  // reversed insert order
  b.value().put("alpha", "v1|BC|0x0p+0,0x0p+0");
  ASSERT_TRUE(a.value().flush().has_value());
  ASSERT_TRUE(b.value().flush().has_value());
  auto bytes_a = support::read_file(path_a);
  auto bytes_b = support::read_file(path_b);
  ASSERT_TRUE(bytes_a.has_value() && bytes_b.has_value());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(PlanCacheTest, InteriorCorruptionIsFatalTornTailIsDropped) {
  const std::string path = temp_path("corrupt");
  auto cache = PlanCache::open(path);
  ASSERT_TRUE(cache.has_value());
  cache.value().put("k1", "payload1");
  cache.value().put("k2", "payload2");
  ASSERT_TRUE(cache.value().flush().has_value());
  auto bytes = support::read_file(path);
  ASSERT_TRUE(bytes.has_value());

  // Truncate mid-final-record: a torn tail, tolerated with the prefix kept.
  const std::string torn = bytes.value().substr(0, bytes.value().size() - 5);
  ASSERT_TRUE(support::write_file_atomic(path, torn).has_value());
  auto tolerant = PlanCache::open(path);
  ASSERT_TRUE(tolerant.has_value()) << tolerant.fault().message;
  EXPECT_EQ(tolerant.value().size(), 1u);
  EXPECT_NE(tolerant.value().lookup("k1"), nullptr);

  // Flip a payload byte in the *interior* record: fatal.
  std::string flipped = bytes.value();
  const std::size_t at = flipped.find("payload1");
  ASSERT_NE(at, std::string::npos);
  flipped[at] = 'X';
  ASSERT_TRUE(support::write_file_atomic(path, flipped).has_value());
  EXPECT_FALSE(PlanCache::open(path).has_value());

  // Wrong header: fatal.
  ASSERT_TRUE(
      support::write_file_atomic(path, "some-other-format v9\n").has_value());
  EXPECT_FALSE(PlanCache::open(path).has_value());
  std::remove(path.c_str());
}

// The SIGKILL chaos test: a child process journals entries in a loop and
// is killed at an arbitrary instant with no chance to clean up. Flushes
// are fsynced appends (with atomic compactions underneath), so the
// surviving file must always (a) reload cleanly — at most the torn final
// line is lost — and (b) compact to bytes identical to a clean cache
// holding exactly the entries it claims to hold — never a torn or
// interleaved state.
TEST(PlanCacheChaosTest, SigkillMidFlushRecoversByteIdentically) {
  const std::string path = temp_path("sigkill");
  const auto entry_payload = [](int i) {
    tour::ChargingPlan plan = sample_plan();
    plan.stops[0].position.x = static_cast<double>(i);
    return service::encode_plan(plan);
  };

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: flush an ever-growing cache as fast as possible.
    auto cache = PlanCache::open(path);
    if (!cache.has_value()) ::_exit(1);
    for (int i = 0; i < 100000; ++i) {
      cache.value().put("key" + std::to_string(i), entry_payload(i));
      if (!cache.value().flush().has_value()) ::_exit(1);
    }
    ::_exit(0);
  }
  // Parent: let some flushes land, then SIGKILL — no handler can run.
  for (int spin = 0; spin < 2000 && !support::file_exists(path); ++spin) {
    ::usleep(1000);
  }
  ::usleep(20000);
  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited before the kill landed; raise the iteration count";

  auto recovered = PlanCache::open(path);
  ASSERT_TRUE(recovered.has_value()) << recovered.fault().message;
  const std::size_t n = recovered.value().size();
  ASSERT_GT(n, 0u) << "no flush landed before the kill";
  // Byte-purity: compact the survivor, rebuild a cache with the same
  // entries cleanly, compact that too, and compare raw file bytes — the
  // kill must leave no trace in the compacted image.
  ASSERT_TRUE(recovered.value().compact().has_value());
  const std::string clean_path = temp_path("sigkill_clean");
  auto clean = PlanCache::open(clean_path);
  ASSERT_TRUE(clean.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string* payload = recovered.value().lookup(key);
    ASSERT_NE(payload, nullptr) << "missing " << key << " of " << n;
    EXPECT_EQ(*payload, entry_payload(static_cast<int>(i)));
    clean.value().put(key, entry_payload(static_cast<int>(i)));
  }
  ASSERT_TRUE(clean.value().compact().has_value());
  auto killed_bytes = support::read_file(path);
  auto clean_bytes = support::read_file(clean_path);
  ASSERT_TRUE(killed_bytes.has_value() && clean_bytes.has_value());
  EXPECT_EQ(killed_bytes.value(), clean_bytes.value());
  std::remove(path.c_str());
  std::remove(clean_path.c_str());
}

}  // namespace
}  // namespace bc
