// canonical_fingerprint stability: pinned goldens, wire-body field
// reordering, default-vs-explicit equivalence, and hexfloat round-trips.
// The fingerprint keys the plan cache and anchors the incremental diff,
// so any byte of drift silently invalidates every cached deployment.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "service/plan_cache.h"
#include "service/wire.h"

namespace bc {
namespace {

using service::PlanRequest;
using service::WireLimits;

PlanRequest must_parse(const std::string& body) {
  auto parsed = service::parse_plan_request(body, WireLimits{});
  EXPECT_TRUE(parsed.has_value()) << parsed.fault().message;
  return parsed.has_value() ? parsed.value() : PlanRequest{};
}

TEST(FingerprintTest, PinnedGoldenFingerprints) {
  PlanRequest request;
  request.algorithm = "BC";
  request.radius_m = 120.0;
  request.positions = {{17.0, 5.0}, {131.0, 202.0}, {0.125, 997.0}};
  EXPECT_EQ(service::canonical_fingerprint(request),
            "v1|profile=icdcs2019|alg=BC|r=0x1.ep+6|demand=0x1p+1|"
            "depot=0x0p+0,0x0p+0|n=3|0x1.1p+4,0x1.4p+2|"
            "0x1.06p+7,0x1.94p+7|0x1p-3,0x1.f28p+9");
  EXPECT_EQ(service::hash_fingerprint(service::canonical_fingerprint(request)),
            "2b1b5cd6d8ef34162f412722");

  PlanRequest awkward;
  awkward.profile = "icdcs2019";
  awkward.radius_m = 120.0;
  awkward.positions = {{0.1, -0.0}, {1.0 / 3.0, 1e-9}};
  EXPECT_EQ(service::canonical_fingerprint(awkward),
            "v1|profile=icdcs2019|alg=BC|r=0x1.ep+6|demand=0x1p+1|"
            "depot=0x0p+0,0x0p+0|n=2|0x1.999999999999ap-4,-0x0p+0|"
            "0x1.5555555555555p-2,0x1.12e0be826d695p-30");
  EXPECT_EQ(service::hash_fingerprint(service::canonical_fingerprint(awkward)),
            "653047d68b5ca6196e2c72fb");
}

TEST(FingerprintTest, WireFieldOrderDoesNotChangeTheFingerprint) {
  const PlanRequest a = must_parse(
      "algorithm=BC\nradius=120\npositions=1,2;3,4\ndepot=5,5\ndemand=2\n");
  const PlanRequest b = must_parse(
      "demand=2\ndepot=5,5\npositions=1,2;3,4\nradius=120\nalgorithm=BC\n");
  EXPECT_EQ(service::canonical_fingerprint(a),
            service::canonical_fingerprint(b));
}

TEST(FingerprintTest, DefaultsAndExplicitValuesShareAFingerprint) {
  // "" resolves to icdcs2019/BC inside the fingerprint, so a client that
  // names the defaults explicitly hits the same cache entries.
  PlanRequest implicit;
  implicit.radius_m = 120.0;
  implicit.positions = {{1.0, 2.0}};
  PlanRequest explicit_request = implicit;
  explicit_request.profile = "icdcs2019";
  explicit_request.algorithm = "BC";
  EXPECT_EQ(service::canonical_fingerprint(implicit),
            service::canonical_fingerprint(explicit_request));
}

TEST(FingerprintTest, HexfloatRoundTripsPreserveTheFingerprint) {
  PlanRequest request;
  request.radius_m = 120.0;
  request.positions = {{0.1, 1.0 / 3.0}, {1e-9, 2.5e17}, {-0.0, 0.062913}};

  // %.17g round-trips every double: re-parsing the rendered wire body
  // must reproduce the fingerprint bit for bit.
  std::string body = "radius=120\npositions=";
  char buffer[64];
  for (std::size_t i = 0; i < request.positions.size(); ++i) {
    std::snprintf(buffer, sizeof buffer, "%.17g,%.17g",
                  request.positions[i].x, request.positions[i].y);
    body += buffer;
    if (i + 1 < request.positions.size()) body += ";";
  }
  body += "\n";
  EXPECT_EQ(service::canonical_fingerprint(request),
            service::canonical_fingerprint(must_parse(body)));

  // The hexfloats inside the canonical string parse back to the exact
  // same doubles (%a is lossless by construction).
  const std::string canon = service::canonical_fingerprint(request);
  const std::size_t tail = canon.find("|n=3|");
  ASSERT_NE(tail, std::string::npos);
  std::size_t at = tail + 5;
  for (const auto& p : request.positions) {
    char* end = nullptr;
    EXPECT_EQ(std::strtod(canon.c_str() + at, &end), p.x);
    ASSERT_EQ(*end, ',');
    at = static_cast<std::size_t>(end - canon.c_str()) + 1;
    EXPECT_EQ(std::strtod(canon.c_str() + at, &end), p.y);
    at = static_cast<std::size_t>(end - canon.c_str()) + 1;
  }
}

TEST(FingerprintTest, BitLevelDistinctionsAreFingerprintDistinctions) {
  PlanRequest zero;
  zero.radius_m = 120.0;
  zero.positions = {{0.0, 0.0}};
  PlanRequest negative_zero = zero;
  negative_zero.positions = {{-0.0, 0.0}};
  EXPECT_NE(service::canonical_fingerprint(zero),
            service::canonical_fingerprint(negative_zero));

  PlanRequest nudged = zero;
  nudged.positions = {{std::nextafter(0.1, 1.0), 0.0}};
  PlanRequest tenth = zero;
  tenth.positions = {{0.1, 0.0}};
  EXPECT_NE(service::canonical_fingerprint(tenth),
            service::canonical_fingerprint(nudged));
}

}  // namespace
}  // namespace bc
