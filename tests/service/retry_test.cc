// Retry/backoff policy: transient faults earn bounded retries, permanent
// faults surface immediately, and backoff never sleeps past the deadline.

#include <chrono>

#include <gtest/gtest.h>

#include "service/retry.h"

namespace bc {
namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

service::RetryPolicy fast_policy() {
  service::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 0.1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 0.5;
  return policy;
}

TEST(RetryTest, TransientFaultClassification) {
  EXPECT_TRUE(service::fault_is_transient(FaultKind::kReplanExhausted));
  EXPECT_TRUE(service::fault_is_transient(FaultKind::kCoverageGap));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kInvalidInput));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kBudgetExhausted));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kSensorDead));
}

TEST(RetryTest, SucceedsOnFirstAttemptWithoutRetrying) {
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr, [] { return Expected<int>(7); }, &outcome);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST(RetryTest, TransientFaultIsRetriedUntilSuccess) {
  int calls = 0;
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr,
      [&]() -> Expected<int> {
        if (++calls < 3) {
          return Fault{FaultKind::kCoverageGap, "transient"};
        }
        return 99;
      },
      &outcome);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), 99);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(RetryTest, TransientFaultExhaustsAtMaxAttempts) {
  int calls = 0;
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr,
      [&]() -> Expected<int> {
        ++calls;
        return Fault{FaultKind::kReplanExhausted, "still failing"};
      },
      &outcome);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, FaultKind::kReplanExhausted);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(outcome.attempts, 4);
}

TEST(RetryTest, PermanentFaultIsNeverRetried) {
  int calls = 0;
  auto result = service::with_retry(fast_policy(), nullptr,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kInvalidInput,
                                                   "permanent"};
                                    });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffNeverSleepsThroughTheDeadline) {
  // A deadline far smaller than the first backoff: the retry loop must
  // give up after the first attempt instead of sleeping past it.
  service::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 200.0;
  support::Budget budget;
  budget.deadline_s = 0.05;
  support::BudgetMeter meter(budget);
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    });
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
  EXPECT_LT(elapsed_s, 0.15) << "slept through the deadline";
}

TEST(RetryTest, NegativeRemainingDeadlineStopsEvenWithZeroBackoff) {
  // The meter is already past its deadline when the retry loop runs.
  // With backoff 0 the "remaining <= backoff" guard can't fire (the
  // remaining time is negative, not merely small), so the loop must
  // catch the expiry via check() instead of spinning max_attempts times.
  support::Budget budget;
  budget.deadline_s = 1e-6;
  support::BudgetMeter meter(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service::RetryPolicy policy = fast_policy();
  policy.initial_backoff_ms = 0.0;
  int calls = 0;
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, DeadlineMs1EdgeNeverEarnsASleepAsLongAsTheDeadline) {
  // deadline_ms=1 with a backoff of exactly 1ms: remaining time starts
  // at most equal to the backoff and only shrinks, so the loop must
  // fail fast rather than sleep through the entire remaining budget.
  // Timing-robust by construction: a slow machine shrinks `remaining`
  // further, which can only make the loop stop sooner.
  service::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 1.0;
  support::Budget budget;
  budget.deadline_s = 0.001;
  support::BudgetMeter meter(budget);
  int calls = 0;
  service::RetryOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    },
                                    &outcome);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, FaultKind::kCoverageGap);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.attempts, calls);
  EXPECT_LT(elapsed_s, 0.1) << "slept on a deadline it could not meet";
}

TEST(RetryTest, TinyBackoffUnderTinyDeadlineNeverOvershootsByAFullSleep) {
  // Backoffs much smaller than the 1ms deadline may earn some retries,
  // but every sleep the loop takes is individually smaller than the
  // remaining budget at that moment — so the loop can overshoot the
  // deadline by at most one sub-millisecond backoff, never by a full
  // scheduled sleep. Attempt counts may legitimately vary with machine
  // speed (slower machines retry less); the wall-clock bound may not.
  service::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 0.05;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 0.2;
  support::Budget budget;
  budget.deadline_s = 0.001;
  support::BudgetMeter meter(budget);
  int calls = 0;
  service::RetryOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    },
                                    &outcome);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.has_value());
  EXPECT_GE(calls, 1);
  EXPECT_LE(calls, policy.max_attempts);
  EXPECT_EQ(outcome.attempts, calls);
  // Generous scheduling slack; the failure mode being pinned (sleeping
  // a full backoff ladder past a 1ms deadline) would cost far more.
  EXPECT_LT(elapsed_s, 0.25) << "backoff ladder ignored the deadline";
}

TEST(RetryTest, ExpiredMeterStopsRetriesImmediately) {
  support::Budget budget;
  budget.cancel.request_cancel();  // trips on the first check()
  support::BudgetMeter meter(budget);
  service::RetryPolicy policy = fast_policy();
  policy.initial_backoff_ms = 0.0;  // backoff smaller than any remaining
  int calls = 0;
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace bc
