// Retry/backoff policy: transient faults earn bounded retries, permanent
// faults surface immediately, and backoff never sleeps past the deadline.

#include <chrono>

#include <gtest/gtest.h>

#include "service/retry.h"

namespace bc {
namespace {

using support::Expected;
using support::Fault;
using support::FaultKind;

service::RetryPolicy fast_policy() {
  service::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 0.1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 0.5;
  return policy;
}

TEST(RetryTest, TransientFaultClassification) {
  EXPECT_TRUE(service::fault_is_transient(FaultKind::kReplanExhausted));
  EXPECT_TRUE(service::fault_is_transient(FaultKind::kCoverageGap));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kInvalidInput));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kBudgetExhausted));
  EXPECT_FALSE(service::fault_is_transient(FaultKind::kSensorDead));
}

TEST(RetryTest, SucceedsOnFirstAttemptWithoutRetrying) {
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr, [] { return Expected<int>(7); }, &outcome);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST(RetryTest, TransientFaultIsRetriedUntilSuccess) {
  int calls = 0;
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr,
      [&]() -> Expected<int> {
        if (++calls < 3) {
          return Fault{FaultKind::kCoverageGap, "transient"};
        }
        return 99;
      },
      &outcome);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value(), 99);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(RetryTest, TransientFaultExhaustsAtMaxAttempts) {
  int calls = 0;
  service::RetryOutcome outcome;
  auto result = service::with_retry(
      fast_policy(), nullptr,
      [&]() -> Expected<int> {
        ++calls;
        return Fault{FaultKind::kReplanExhausted, "still failing"};
      },
      &outcome);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, FaultKind::kReplanExhausted);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(outcome.attempts, 4);
}

TEST(RetryTest, PermanentFaultIsNeverRetried) {
  int calls = 0;
  auto result = service::with_retry(fast_policy(), nullptr,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kInvalidInput,
                                                   "permanent"};
                                    });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffNeverSleepsThroughTheDeadline) {
  // A deadline far smaller than the first backoff: the retry loop must
  // give up after the first attempt instead of sleeping past it.
  service::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 200.0;
  support::Budget budget;
  budget.deadline_s = 0.05;
  support::BudgetMeter meter(budget);
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    });
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
  EXPECT_LT(elapsed_s, 0.15) << "slept through the deadline";
}

TEST(RetryTest, ExpiredMeterStopsRetriesImmediately) {
  support::Budget budget;
  budget.cancel.request_cancel();  // trips on the first check()
  support::BudgetMeter meter(budget);
  service::RetryPolicy policy = fast_policy();
  policy.initial_backoff_ms = 0.0;  // backoff smaller than any remaining
  int calls = 0;
  auto result = service::with_retry(policy, &meter,
                                    [&]() -> Expected<int> {
                                      ++calls;
                                      return Fault{FaultKind::kCoverageGap,
                                                   "transient"};
                                    });
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace bc
