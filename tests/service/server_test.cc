// End-to-end chaos suite for the bundlecharged daemon: admission control
// under 4x overload, deadline propagation into degraded anytime answers,
// crash-safe cache reuse across a restart with bit-identical plan blocks,
// and per-request metrics isolation (concurrent == serial snapshots).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/server.h"
#include "support/atomic_file.h"

namespace bc {
namespace {

using service::HttpResponse;
using service::Server;
using service::ServerOptions;

std::string positions_line(std::size_t n, std::size_t salt = 0) {
  // Deterministic pseudo-random-ish scatter in a 1000 x 1000 field.
  std::string out = "positions=";
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + salt * 1000;
    out += std::to_string((j * 131 + 17) % 997) + "," +
           std::to_string((j * 197 + 5) % 991);
    if (i + 1 < n) out += ";";
  }
  out += "\n";
  return out;
}

std::string small_body(std::size_t salt = 0) {
  return "algorithm=BC\nradius=120\n" + positions_line(40, salt) +
         "depot=0,0\n";
}

HttpResponse must_roundtrip(std::uint16_t port, const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  auto response = service::http_roundtrip(port, method, path, body);
  EXPECT_TRUE(response.has_value()) << response.fault().message;
  return response.has_value() ? response.value() : HttpResponse{};
}

// Value of an integer stats field, e.g. field_u64(body, "shed").
std::uint64_t field_u64(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << body;
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + needle.size(), nullptr, 10);
}

std::string field_str(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << body;
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = body.find_first_of(",\n", start);
  if (end == std::string::npos) end = body.size();
  return body.substr(start, end - start);
}

// The embedded plan document: from `"plan": ` up to the metrics key.
// Byte-exact comparisons of this block are the cache-identity oracle.
std::string plan_block(const std::string& body) {
  const std::size_t start = body.find("\"plan\": ");
  const std::size_t end = body.find(",\n  \"metrics\":");
  EXPECT_NE(start, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  if (start == std::string::npos || end == std::string::npos) return {};
  return body.substr(start, end - start);
}

// The embedded per-request metrics snapshot (to the end of the envelope).
std::string metrics_block(const std::string& body) {
  const std::size_t start = body.find("\"metrics\": ");
  EXPECT_NE(start, std::string::npos);
  if (start == std::string::npos) return {};
  return body.substr(start);
}

std::unique_ptr<Server> must_start(ServerOptions options) {
  auto server = Server::start(std::move(options));
  EXPECT_TRUE(server.has_value()) << server.fault().message;
  return server.has_value() ? std::move(server.value()) : nullptr;
}

TEST(ServerTest, HealthAndStatsEndpoints) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  const HttpResponse health =
      must_roundtrip(server->port(), "GET", "/healthz", "");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"ok\""), std::string::npos);
  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  EXPECT_EQ(stats.status, 200);
  EXPECT_EQ(field_u64(stats.body, "accepted"), 0u);
  EXPECT_EQ(field_u64(stats.body, "queue_depth"), 0u);
}

TEST(ServerTest, MalformedAndUnknownRequestsAreStructuredErrors) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(must_roundtrip(server->port(), "GET", "/nope", "").status, 404);
  EXPECT_EQ(must_roundtrip(server->port(), "POST", "/v1/plan",
                           "positions=1,borked\n")
                .status,
            400);
  // Test hooks are rejected unless explicitly enabled.
  EXPECT_EQ(must_roundtrip(server->port(), "POST", "/v1/plan",
                           small_body() + "stall_ms=50\n")
                .status,
            400);
  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  EXPECT_EQ(field_u64(stats.body, "failed"), 2u);
}

TEST(ServerTest, PlanSolvesThenServesCacheHitBitIdentically) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  const HttpResponse cold =
      must_roundtrip(server->port(), "POST", "/v1/plan", small_body());
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_EQ(field_str(cold.body, "cached"), "false");
  EXPECT_EQ(field_str(cold.body, "degraded"), "false");

  const HttpResponse hot =
      must_roundtrip(server->port(), "POST", "/v1/plan", small_body());
  ASSERT_EQ(hot.status, 200);
  EXPECT_EQ(field_str(hot.body, "cached"), "true");
  // The guarantee the whole cache design serves: a hit is byte-identical
  // to the cold solve, plan document included.
  EXPECT_EQ(plan_block(hot.body), plan_block(cold.body));

  // A deadline-only difference shares the entry (cutoffs are not inputs).
  const HttpResponse deadline = must_roundtrip(
      server->port(), "POST", "/v1/plan", small_body() + "deadline_ms=60000\n");
  ASSERT_EQ(deadline.status, 200);
  EXPECT_EQ(field_str(deadline.body, "cached"), "true");

  const HttpResponse stats =
      must_roundtrip(server->port(), "GET", "/statsz", "");
  EXPECT_EQ(field_u64(stats.body, "cache_misses"), 1u);
  EXPECT_EQ(field_u64(stats.body, "cache_hits"), 2u);
  EXPECT_EQ(field_u64(stats.body, "completed"), 3u);
}

TEST(ServerTest, ReplanEndpointCoversRemainingSensors) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  const std::string body = small_body() +
                           "current=500,500\nremaining=3:1.5;7:0.5;11:2\n";
  const HttpResponse response =
      must_roundtrip(server->port(), "POST", "/v1/replan", body);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"mode\": \"replan\""), std::string::npos);
  EXPECT_EQ(field_str(response.body, "degraded"), "false");
  // Every remaining sensor appears in some stop's member list.
  const std::string plan = plan_block(response.body);
  for (const char* id : {"3", "7", "11"}) {
    EXPECT_NE(plan.find(id), std::string::npos) << plan;
  }
}

TEST(ServerTest, ExpiredReplanDeadlineFailsFastWith504) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  // A deadline of 1 ns is already gone by the first ladder checkpoint:
  // the fail-fast path must answer 504 without burning a ladder pass.
  const std::string body =
      small_body() + "current=0,0\ndeadline_ms=0.000001\n";
  const auto start = std::chrono::steady_clock::now();
  const HttpResponse response =
      must_roundtrip(server->port(), "POST", "/v1/replan", body);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.status, 504) << response.body;
  EXPECT_NE(response.body.find("deadline_exceeded"), std::string::npos);
  EXPECT_LT(elapsed_s, 5.0) << "fail-fast path burned a ladder pass";
}

TEST(ServerTest, ExpiredPlanDeadlineReturnsDegradedIncumbent) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  // Large instance, 5 ms deadline: the anytime contract must return a
  // valid (partition) plan promptly with degraded=true — never hang until
  // the full solve finishes.
  const std::string body = "algorithm=BC\nradius=60\n" +
                           positions_line(800) + "depot=0,0\ndeadline_ms=5\n";
  const HttpResponse response =
      must_roundtrip(server->port(), "POST", "/v1/plan", body);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(field_str(response.body, "degraded"), "true");
  EXPECT_EQ(field_str(response.body, "cached"), "false");
  // Degraded results are timing-dependent and must never be cached.
  const HttpResponse again =
      must_roundtrip(server->port(), "POST", "/v1/plan", body);
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(field_str(again.body, "cached"), "false");
}

TEST(ServerChaosTest, FourTimesOverloadShedsDeterministically) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.enable_test_hooks = true;
  options.retry_after_ms = 250.0;
  auto server = must_start(std::move(options));
  ASSERT_NE(server, nullptr);
  const std::uint16_t port = server->port();

  // Occupy the single worker, then fill both queue slots, with stalled
  // requests — the hook makes the overload state deterministic, not a
  // race against solver speed.
  std::vector<std::thread> stalled;
  std::atomic<int> ok{0};
  const auto stalled_request = [port, &ok] {
    auto response = service::http_roundtrip(
        port, "POST", "/v1/plan", small_body() + "stall_ms=2000\n", 60.0);
    if (response.has_value() && response.value().status == 200) {
      ok.fetch_add(1);
    }
  };
  stalled.emplace_back(stalled_request);
  // Wait until the worker popped it (accepted=1, queue back to empty).
  for (int spin = 0; spin < 4000; ++spin) {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    if (field_u64(stats.body, "accepted") == 1 &&
        field_u64(stats.body, "queue_depth") == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stalled.emplace_back(stalled_request);
  stalled.emplace_back(stalled_request);
  for (int spin = 0; spin < 4000; ++spin) {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    if (field_u64(stats.body, "queue_depth") == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(field_u64(must_roundtrip(port, "GET", "/statsz", "").body,
                      "queue_depth"),
            2u)
      << "queue never filled; stalled requests were not admitted";

  // 4x overload: capacity is 3 in flight (1 solving + 2 queued); the next
  // 9 must every one shed immediately with 503 + Retry-After — none may
  // block behind the stalled work.
  const auto shed_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 9; ++i) {
    const HttpResponse shed =
        must_roundtrip(port, "POST", "/v1/plan", small_body(i + 1));
    EXPECT_EQ(shed.status, 503) << shed.body;
    EXPECT_EQ(shed.header("retry-after"), "1");
    EXPECT_NE(shed.body.find("overloaded"), std::string::npos);
  }
  const double shed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    shed_start)
          .count();
  EXPECT_LT(shed_s, 5.0) << "shedding blocked behind stalled workers";

  for (std::thread& t : stalled) t.join();
  EXPECT_EQ(ok.load(), 3) << "admitted requests must still complete";
  const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
  EXPECT_EQ(field_u64(stats.body, "shed"), 9u);
  EXPECT_EQ(field_u64(stats.body, "accepted"), 3u);
  EXPECT_EQ(field_u64(stats.body, "completed"), 3u);
}

TEST(ServerChaosTest, RestartWithJournaledCacheServesBitIdenticalPlans) {
  const std::string cache_path = ::testing::TempDir() + "server_cache_" +
                                 std::to_string(::getpid()) + ".journal";
  std::remove(cache_path.c_str());
  std::string cold_plan;
  std::string file_after_first;
  {
    ServerOptions options;
    options.cache_path = cache_path;
    auto server = must_start(std::move(options));
    ASSERT_NE(server, nullptr);
    const HttpResponse cold =
        must_roundtrip(server->port(), "POST", "/v1/plan", small_body());
    ASSERT_EQ(cold.status, 200) << cold.body;
    EXPECT_EQ(field_str(cold.body, "cached"), "false");
    cold_plan = plan_block(cold.body);
    server->stop();
    auto bytes = support::read_file(cache_path);
    ASSERT_TRUE(bytes.has_value()) << "cache journal was never flushed";
    file_after_first = bytes.value();
  }
  {
    // A new process generation: the journal is all that survives.
    ServerOptions options;
    options.cache_path = cache_path;
    auto server = must_start(std::move(options));
    ASSERT_NE(server, nullptr);
    const HttpResponse hot =
        must_roundtrip(server->port(), "POST", "/v1/plan", small_body());
    ASSERT_EQ(hot.status, 200) << hot.body;
    EXPECT_EQ(field_str(hot.body, "cached"), "true");
    EXPECT_EQ(plan_block(hot.body), cold_plan);
    server->stop();
  }
  // Serving a hit must not rewrite the journal.
  auto bytes = support::read_file(cache_path);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes.value(), file_after_first);
  std::remove(cache_path.c_str());
}

TEST(ServerChaosTest, ConcurrentMetricsSnapshotsMatchSerialRuns) {
  constexpr std::size_t kRequests = 6;
  // Serial oracle: one worker, distinct deployments, record each
  // response's metrics snapshot keyed by its cache fingerprint hash.
  std::unordered_map<std::string, std::string> serial_metrics;
  std::unordered_map<std::string, std::string> serial_plans;
  {
    ServerOptions options;
    options.workers = 1;
    auto server = must_start(std::move(options));
    ASSERT_NE(server, nullptr);
    for (std::size_t i = 0; i < kRequests; ++i) {
      const HttpResponse response = must_roundtrip(
          server->port(), "POST", "/v1/plan", small_body(i + 1));
      ASSERT_EQ(response.status, 200) << response.body;
      const std::string key = field_str(response.body, "cache_key");
      serial_metrics[key] = metrics_block(response.body);
      serial_plans[key] = plan_block(response.body);
    }
  }
  ASSERT_EQ(serial_metrics.size(), kRequests) << "cache keys collided";

  // Concurrent run on a fresh server: every request in flight at once on
  // 4 workers. Per-request isolation means each response's snapshot (and
  // plan) must equal the serial oracle byte for byte.
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = kRequests;
  auto server = must_start(std::move(options));
  ASSERT_NE(server, nullptr);
  std::vector<std::string> bodies(kRequests);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kRequests; ++i) {
    clients.emplace_back([&, i] {
      auto response = service::http_roundtrip(
          server->port(), "POST", "/v1/plan", small_body(i + 1), 120.0);
      if (response.has_value()) bodies[i] = response.value().body;
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_FALSE(bodies[i].empty()) << "request " << i << " got no response";
    const std::string key = field_str(bodies[i], "cache_key");
    ASSERT_EQ(serial_metrics.count(key), 1u) << "unknown key " << key;
    EXPECT_EQ(metrics_block(bodies[i]), serial_metrics[key])
        << "request " << i
        << ": concurrent metrics diverged from the serial oracle";
    EXPECT_EQ(plan_block(bodies[i]), serial_plans[key]);
  }
}

TEST(ServerTest, StopIsIdempotentAndDrainsCleanly) {
  auto server = must_start(ServerOptions{});
  ASSERT_NE(server, nullptr);
  must_roundtrip(server->port(), "POST", "/v1/plan", small_body());
  server->stop();
  server->stop();  // second call is a no-op
  // Connections after stop are refused (listener closed).
  EXPECT_FALSE(
      service::http_roundtrip(server->port(), "GET", "/healthz", "", 2.0)
          .has_value());
}

}  // namespace
}  // namespace bc
