// Differential oracle suite: a GraphMetric with zero obstacles must be
// byte-identical to the null (Euclidean) metric through every planner,
// the evaluator, the fleet splitter, splice, the annealer, and the
// replanner — at BC_THREADS=1, 2 and 8. Any divergence means a call site
// swapped the FP sequence or routed a distance around the metric.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "net/deployment.h"
#include "net/metric.h"
#include "sim/evaluate.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tour/anneal.h"
#include "tour/fleet.h"
#include "tour/planner.h"
#include "tour/replan.h"
#include "tour/splice.h"

namespace bc {
namespace {

using geometry::Point2;

// A zero-obstacle waypoint graph. Its line-of-sight shortcut fires on
// every query, so distances are exactly geometry::distance — the graph
// content is irrelevant to values, only to code paths.
std::shared_ptr<const net::GraphMetric> oracle_metric() {
  net::WaypointGraph graph;
  for (int gx = 0; gx < 4; ++gx) {
    for (int gy = 0; gy < 4; ++gy) {
      graph.nodes.push_back(Point2{gx * 300.0, gy * 300.0});
    }
  }
  for (std::uint32_t i = 0; i + 1 < graph.nodes.size(); ++i) {
    graph.edges.push_back(
        {i, i + 1,
         geometry::distance(graph.nodes[i], graph.nodes[i + 1])});
  }
  return std::make_shared<net::GraphMetric>(std::move(graph));
}

net::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

void expect_identical(const tour::ChargingPlan& a,
                      const tour::ChargingPlan& b, const char* what) {
  ASSERT_EQ(a.stops.size(), b.stops.size()) << what;
  EXPECT_EQ(a.depot.x, b.depot.x) << what;
  EXPECT_EQ(a.depot.y, b.depot.y) << what;
  for (std::size_t i = 0; i < a.stops.size(); ++i) {
    EXPECT_EQ(a.stops[i].position.x, b.stops[i].position.x)
        << what << " stop " << i;
    EXPECT_EQ(a.stops[i].position.y, b.stops[i].position.y)
        << what << " stop " << i;
    EXPECT_EQ(a.stops[i].members, b.stops[i].members) << what << " stop "
                                                      << i;
  }
}

void expect_identical(const sim::PlanMetrics& a, const sim::PlanMetrics& b,
                      const char* what) {
  EXPECT_EQ(a.num_stops, b.num_stops) << what;
  EXPECT_EQ(a.tour_length_m, b.tour_length_m) << what;
  EXPECT_EQ(a.move_energy_j, b.move_energy_j) << what;
  EXPECT_EQ(a.move_time_s, b.move_time_s) << what;
  EXPECT_EQ(a.charge_time_s, b.charge_time_s) << what;
  EXPECT_EQ(a.charge_energy_j, b.charge_energy_j) << what;
  EXPECT_EQ(a.total_energy_j, b.total_energy_j) << what;
  EXPECT_EQ(a.total_time_s, b.total_time_s) << what;
  EXPECT_EQ(a.min_demand_fraction, b.min_demand_fraction) << what;
}

class MetricOracleTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { support::set_thread_count(GetParam()); }
  void TearDown() override { support::set_thread_count(0); }
};

TEST_P(MetricOracleTest, EveryPlannerIsByteIdenticalUnderAnEmptyGraph) {
  const auto metric = oracle_metric();
  const net::Deployment d = make_deployment(120, 29);
  for (const tour::Algorithm algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt, tour::Algorithm::kTspn,
        tour::Algorithm::kBcSharded}) {
    tour::PlannerConfig euclid;
    euclid.bundle_radius = 60.0;
    tour::PlannerConfig graph = euclid;
    graph.metric = metric;
    const tour::ChargingPlan a =
        tour::plan_charging_tour(d, algorithm, euclid);
    const tour::ChargingPlan b =
        tour::plan_charging_tour(d, algorithm, graph);
    expect_identical(a, b, tour::to_string(algorithm).data());

    sim::EvaluationConfig eval_euclid;
    sim::EvaluationConfig eval_graph;
    eval_graph.metric = metric.get();
    expect_identical(sim::evaluate_plan(d, a, eval_euclid),
                     sim::evaluate_plan(d, b, eval_graph),
                     tour::to_string(algorithm).data());
  }
}

TEST_P(MetricOracleTest, FleetSplitIsByteIdentical) {
  const auto metric = oracle_metric();
  const net::Deployment d = make_deployment(100, 31);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const tour::ChargingPlan plan = tour::plan_bc(d, config);
  const charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  const charging::MovementModel movement =
      charging::MovementModel::icdcs2019();
  for (const std::size_t k : {1u, 3u, 5u}) {
    const tour::FleetPlan a =
        tour::split_among_chargers(d, plan, charging, movement, k);
    const tour::FleetPlan b = tour::split_among_chargers(
        d, plan, charging, movement, k, metric.get());
    ASSERT_EQ(a.routes.size(), b.routes.size()) << "k=" << k;
    for (std::size_t r = 0; r < a.routes.size(); ++r) {
      expect_identical(a.routes[r], b.routes[r], "fleet route");
    }
    const tour::FleetMetrics ma =
        tour::evaluate_fleet(d, a, charging, movement);
    const tour::FleetMetrics mb =
        tour::evaluate_fleet(d, b, charging, movement, metric.get());
    EXPECT_EQ(ma.makespan_s, mb.makespan_s) << "k=" << k;
    EXPECT_EQ(ma.total_energy_j, mb.total_energy_j) << "k=" << k;
  }
}

TEST_P(MetricOracleTest, SpliceIsByteIdentical) {
  const auto metric = oracle_metric();
  const net::Deployment d = make_deployment(80, 37);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  tour::ChargingPlan base = tour::plan_bc(d, config);
  ASSERT_GE(base.stops.size(), 4u);
  // Peel the last two stops off into patches and splice them back.
  std::vector<tour::Stop> patches(base.stops.end() - 2, base.stops.end());
  base.stops.erase(base.stops.end() - 2, base.stops.end());
  const tour::ChargingPlan a = tour::splice_stops(base, patches);
  tour::SpliceOptions with_metric;
  with_metric.improve_options.metric = metric.get();
  const tour::ChargingPlan b =
      tour::splice_stops(base, patches, with_metric);
  expect_identical(a, b, "splice");
}

TEST_P(MetricOracleTest, AnnealIsByteIdentical) {
  const auto metric = oracle_metric();
  const net::Deployment d = make_deployment(60, 41);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const tour::ChargingPlan initial = tour::plan_bc(d, config);
  tour::AnnealOptions euclid;
  euclid.iterations = 4000;
  tour::AnnealOptions graph = euclid;
  graph.metric = metric.get();
  const tour::AnnealResult a =
      tour::anneal_plan(d, initial, config.charging, config.movement, euclid);
  const tour::AnnealResult b =
      tour::anneal_plan(d, initial, config.charging, config.movement, graph);
  EXPECT_EQ(a.best_energy_j, b.best_energy_j);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
  expect_identical(a.plan, b.plan, "anneal");
}

TEST_P(MetricOracleTest, ReplanIsByteIdentical) {
  const auto metric = oracle_metric();
  const net::Deployment d = make_deployment(90, 43);
  tour::ReplanRequest request;
  request.current_position = Point2{140.0, 260.0};
  for (std::size_t i = 10; i < 70; i += 2) {
    request.remaining.push_back(static_cast<net::SensorId>(i));
    request.deficits_j.push_back(50.0 + static_cast<double>(i));
  }
  tour::PlannerConfig euclid;
  euclid.bundle_radius = 60.0;
  tour::PlannerConfig graph = euclid;
  graph.metric = metric;
  const auto a = tour::replan_tour(d, request, euclid);
  const auto b = tour::replan_tour(d, request, graph);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_identical(a.value(), b.value(), "replan");
}

INSTANTIATE_TEST_SUITE_P(Threads, MetricOracleTest,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "BC_THREADS_" +
                                  std::to_string(info.param);
                         });

}  // namespace
}  // namespace bc
