// Service-level differential oracle: a bundlecharged server configured
// with a zero-obstacle waypoint graph must serve plan blocks byte-
// identical to a plain Euclidean server, while its cache keys differ (the
// metric salt keeps journals from leaking plans across configurations).
// An obstacle graph must actually change the answer.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/server.h"

namespace bc {
namespace {

using service::HttpResponse;
using service::Server;
using service::ServerOptions;

std::string positions_line(std::size_t n) {
  std::string out = "positions=";
  for (std::size_t i = 0; i < n; ++i) {
    out += std::to_string((i * 131 + 17) % 997) + "," +
           std::to_string((i * 197 + 5) % 991);
    if (i + 1 < n) out += ";";
  }
  out += "\n";
  return out;
}

std::string small_body() {
  return "algorithm=BC\nradius=120\n" + positions_line(40) + "depot=0,0\n";
}

HttpResponse must_roundtrip(std::uint16_t port, const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  auto response = service::http_roundtrip(port, method, path, body);
  EXPECT_TRUE(response.has_value()) << response.fault().message;
  return response.has_value() ? response.value() : HttpResponse{};
}

std::string field_str(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << body;
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  std::size_t end = body.find_first_of(",\n", start);
  if (end == std::string::npos) end = body.size();
  return body.substr(start, end - start);
}

// The embedded plan document: from `"plan": ` up to the metrics key.
std::string plan_block(const std::string& body) {
  const std::size_t start = body.find("\"plan\": ");
  const std::size_t end = body.find(",\n  \"metrics\":");
  EXPECT_NE(start, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  if (start == std::string::npos || end == std::string::npos) return {};
  return body.substr(start, end - start);
}

std::unique_ptr<Server> must_start(ServerOptions options) {
  auto server = Server::start(std::move(options));
  EXPECT_TRUE(server.has_value()) << server.fault().message;
  return server.has_value() ? std::move(server.value()) : nullptr;
}

class TempGraphFile {
 public:
  explicit TempGraphFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "metric_graph_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".csv";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempGraphFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// A waypoint grid spanning the 1000x1000 test field, no obstacles.
std::string empty_obstacle_graph_csv() {
  std::string csv = "# oracle graph: zero obstacles\n";
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      csv += "node," + std::to_string(gx * 500) + "," +
             std::to_string(gy * 500) + "\n";
    }
  }
  for (int i = 0; i + 1 < 9; ++i) {
    csv += "edge," + std::to_string(i) + "," + std::to_string(i + 1) + "\n";
  }
  return csv;
}

TEST(ServiceMetricTest, ZeroObstacleGraphServesByteIdenticalPlans) {
  const TempGraphFile graph(empty_obstacle_graph_csv());
  auto plain = must_start(ServerOptions{});
  ServerOptions with_graph;
  with_graph.metric_graph_path = graph.path();
  auto graphed = must_start(with_graph);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(graphed, nullptr);

  const std::string body = small_body();
  const HttpResponse a =
      must_roundtrip(plain->port(), "POST", "/v1/plan", body);
  const HttpResponse b =
      must_roundtrip(graphed->port(), "POST", "/v1/plan", body);
  ASSERT_EQ(a.status, 200);
  ASSERT_EQ(b.status, 200);

  // The entire plan document — stop positions, members, order, metrics
  // derived in the solve — must match byte for byte.
  EXPECT_EQ(plan_block(a.body), plan_block(b.body));
  EXPECT_EQ(field_str(a.body, "tour_length_m"),
            field_str(b.body, "tour_length_m"));

  // But the cache keys must differ: the graphed server salts its
  // fingerprints with the graph's content hash.
  EXPECT_NE(field_str(a.body, "cache_key"),
            field_str(b.body, "cache_key"));
}

TEST(ServiceMetricTest, GraphCacheHitsStayByteIdentical) {
  const TempGraphFile graph(empty_obstacle_graph_csv());
  ServerOptions options;
  options.metric_graph_path = graph.path();
  auto server = must_start(options);
  ASSERT_NE(server, nullptr);
  const std::string body = small_body();
  const HttpResponse cold =
      must_roundtrip(server->port(), "POST", "/v1/plan", body);
  const HttpResponse hot =
      must_roundtrip(server->port(), "POST", "/v1/plan", body);
  ASSERT_EQ(cold.status, 200);
  ASSERT_EQ(hot.status, 200);
  EXPECT_EQ(plan_block(cold.body), plan_block(hot.body));
  EXPECT_EQ(field_str(cold.body, "cached"), "false");
  EXPECT_EQ(field_str(hot.body, "cached"), "true");
}

TEST(ServiceMetricTest, ObstacleGraphChangesTheServedTourLength) {
  // A wall across the middle of the field with one gap routed through a
  // two-node corridor: crossing legs must detour, so the graph server's
  // tour is strictly longer than the Euclidean server's.
  std::string csv = empty_obstacle_graph_csv();
  csv += "obstacle,-100,480,1100,480\n";
  // The grid's column at x=500 crosses y=480; add corridor nodes around
  // an implied gap far to the right so paths stay finite.
  csv += "node,1050,470\nnode,1050,490\nedge,9,10\n";
  csv += "edge,2,9\nedge,0,10\n";
  const TempGraphFile graph(csv);

  auto plain = must_start(ServerOptions{});
  ServerOptions with_graph;
  with_graph.metric_graph_path = graph.path();
  auto graphed = must_start(with_graph);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(graphed, nullptr);

  const std::string body = small_body();
  const HttpResponse a =
      must_roundtrip(plain->port(), "POST", "/v1/plan", body);
  const HttpResponse b =
      must_roundtrip(graphed->port(), "POST", "/v1/plan", body);
  ASSERT_EQ(a.status, 200);
  ASSERT_EQ(b.status, 200);
  const double euclid_len =
      std::stod(field_str(a.body, "tour_length_m"));
  const double graph_len = std::stod(field_str(b.body, "tour_length_m"));
  EXPECT_GT(graph_len, euclid_len);
}

TEST(ServiceMetricTest, UnloadableGraphIsAStartupFault) {
  ServerOptions options;
  options.metric_graph_path = "/nonexistent/never/graph.csv";
  auto server = Server::start(std::move(options));
  EXPECT_FALSE(server.has_value());
}

TEST(ServiceMetricTest, MalformedGraphIsAStartupFault) {
  const TempGraphFile graph("node,0,0\nedge,0,0,5\n");  // self-loop
  ServerOptions options;
  options.metric_graph_path = graph.path();
  auto server = Server::start(std::move(options));
  ASSERT_FALSE(server.has_value());
  EXPECT_NE(server.fault().message.find("line"), std::string::npos);
}

}  // namespace
}  // namespace bc
