// Property and fuzz tests for the GraphMetric backend: metric axioms on
// the memoized node distances (symmetry, triangle inequality), path
// endpoint contracts, cache-hit == cold-Dijkstra bit-identity, and the
// line-of-sight shortcut that makes an obstacle-free graph byte-identical
// to Euclidean.

#include "net/metric.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/point.h"
#include "support/rng.h"

namespace bc::net {
namespace {

using geometry::Point2;
using geometry::Segment;

// Connected random graph: a scatter of nodes joined by a spanning chain
// plus extra random chords. Chain edges default to chord length; chords
// get a detour factor so shortest paths are non-trivial.
WaypointGraph random_graph(std::uint64_t seed, std::size_t n,
                           std::size_t extra_edges) {
  support::Rng rng(seed);
  WaypointGraph graph;
  graph.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    graph.nodes.push_back(
        Point2{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    graph.edges.push_back(
        {i, i + 1, geometry::distance(graph.nodes[i], graph.nodes[i + 1])});
  }
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.below(n));
    const auto v = static_cast<std::uint32_t>(rng.below(n));
    if (u == v) continue;
    const double chord = geometry::distance(graph.nodes[u], graph.nodes[v]);
    graph.edges.push_back({u, v, chord * rng.uniform(1.0, 1.5)});
  }
  return graph;
}

TEST(GraphMetricTest, NodeDistanceIsExactlySymmetric) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const GraphMetric metric(random_graph(seed, 40, 30));
    support::Rng rng(seed * 977);
    for (int trial = 0; trial < 200; ++trial) {
      const auto u = static_cast<std::uint32_t>(rng.below(40));
      const auto v = static_cast<std::uint32_t>(rng.below(40));
      EXPECT_EQ(metric.node_distance(u, v), metric.node_distance(v, u))
          << "seed " << seed << " nodes " << u << "," << v;
    }
  }
}

TEST(GraphMetricTest, NodeDistanceSatisfiesTheTriangleInequality) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const GraphMetric metric(random_graph(seed, 30, 25));
    for (std::uint32_t u = 0; u < 30; ++u) {
      for (std::uint32_t v = 0; v < 30; ++v) {
        for (std::uint32_t w = 0; w < 30; w += 7) {
          const double direct = metric.node_distance(u, v);
          const double through =
              metric.node_distance(u, w) + metric.node_distance(w, v);
          EXPECT_LE(direct, through + 1e-9 * (1.0 + through))
              << "seed " << seed << " triangle " << u << "," << v << ","
              << w;
        }
      }
    }
  }
}

TEST(GraphMetricTest, NodeDistanceIsZeroOnTheDiagonalAndPositiveOff) {
  const GraphMetric metric(random_graph(11, 25, 20));
  for (std::uint32_t u = 0; u < 25; ++u) {
    EXPECT_EQ(metric.node_distance(u, u), 0.0);
    for (std::uint32_t v = 0; v < 25; ++v) {
      if (u != v) {
        EXPECT_GT(metric.node_distance(u, v), 0.0);
      }
    }
  }
}

TEST(GraphMetricTest, CachedRowEqualsColdDijkstraBitForBit) {
  // Two metrics over the same graph: `hot` is queried twice (second pass
  // served from the LRU row cache), `cold` once. Every double must match
  // exactly — cache values are pure functions of the graph.
  const WaypointGraph graph = random_graph(7, 35, 30);
  const GraphMetric hot(graph);
  const GraphMetric cold(graph);
  std::vector<double> first;
  for (std::uint32_t u = 0; u < 35; ++u) {
    for (std::uint32_t v = 0; v < 35; ++v) {
      first.push_back(hot.node_distance(u, v));
    }
  }
  const auto stats_before = hot.cache_stats();
  std::size_t i = 0;
  for (std::uint32_t u = 0; u < 35; ++u) {
    for (std::uint32_t v = 0; v < 35; ++v, ++i) {
      EXPECT_EQ(hot.node_distance(u, v), first[i]);
      EXPECT_EQ(cold.node_distance(u, v), first[i]);
    }
  }
  const auto stats_after = hot.cache_stats();
  EXPECT_GT(stats_after.row_hits, stats_before.row_hits);
  EXPECT_EQ(stats_after.row_misses, stats_before.row_misses)
      << "second pass must not recompute any row";
}

TEST(GraphMetricTest, TinyRowCacheStillYieldsIdenticalDistances) {
  // Evicting rows changes only *when* work happens, never the values.
  const WaypointGraph graph = random_graph(13, 30, 20);
  GraphMetricOptions tiny;
  tiny.max_cached_rows = 2;
  tiny.max_cached_points = 2;
  const GraphMetric small(graph, tiny);
  const GraphMetric big(graph);
  support::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const auto u = static_cast<std::uint32_t>(rng.below(30));
    const auto v = static_cast<std::uint32_t>(rng.below(30));
    EXPECT_EQ(small.node_distance(u, v), big.node_distance(u, v));
  }
}

TEST(GraphMetricTest, NoObstaclesMeansEuclideanByteForByte) {
  const GraphMetric metric(random_graph(3, 20, 10));
  support::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2 a{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const Point2 b{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    EXPECT_EQ(metric.distance(a, b), geometry::distance(a, b));
    EXPECT_EQ(metric.distance(a, b), metric_distance(&metric, a, b));
  }
}

TEST(GraphMetricTest, DistanceIsSymmetricAroundObstacles) {
  WaypointGraph graph = random_graph(5, 30, 25);
  // A wall through the middle of the field.
  graph.obstacles.push_back(Segment{{500.0, -100.0}, {500.0, 1100.0}});
  // Gate nodes so the two halves stay connected around the wall ends.
  const GraphMetric metric(graph);
  support::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2 a{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const Point2 b{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    EXPECT_EQ(metric.distance(a, b), metric.distance(b, a));
    EXPECT_GE(metric.distance(a, b),
              geometry::distance(a, b) - 1e-9)
        << "a graph route can never beat the straight line";
  }
}

TEST(GraphMetricTest, BlockedQueriesDetourThroughTheGraph) {
  // Two waypoints above and below a horizontal wall; crossing queries
  // must route through them and come out strictly longer than the chord.
  WaypointGraph graph;
  graph.nodes = {{500.0, 620.0}, {500.0, 380.0}};
  graph.edges = {{0, 1, 240.0}};
  graph.obstacles.push_back(Segment{{200.0, 500.0}, {800.0, 500.0}});
  const GraphMetric metric(graph);
  const Point2 above{450.0, 700.0};
  const Point2 below{550.0, 300.0};
  EXPECT_FALSE(metric.line_of_sight(above, below));
  EXPECT_GT(metric.distance(above, below), geometry::distance(above, below));
  // Off to the side the chord clears the wall, so the shortcut applies.
  const Point2 left_a{100.0, 700.0};
  const Point2 left_b{100.0, 300.0};
  EXPECT_TRUE(metric.line_of_sight(left_a, left_b));
  EXPECT_EQ(metric.distance(left_a, left_b),
            geometry::distance(left_a, left_b));
}

TEST(GraphMetricTest, PathEndpointsAreExactAndLengthMatchesDistance) {
  // Chord-weighted graph: every edge weight is exactly its chord length,
  // so the driven polyline realises the reported distance. (Inflated
  // weights are legal but make the polyline shorter than the cost.)
  WaypointGraph graph = random_graph(9, 25, 20);
  for (GraphEdge& e : graph.edges) {
    e.weight = geometry::distance(graph.nodes[e.u], graph.nodes[e.v]);
  }
  graph.obstacles.push_back(Segment{{300.0, -50.0}, {300.0, 1050.0}});
  graph.obstacles.push_back(Segment{{700.0, -50.0}, {700.0, 1050.0}});
  const GraphMetric metric(graph);
  support::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const Point2 a{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const Point2 b{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    std::vector<Point2> waypoints;
    metric.path(a, b, waypoints);
    ASSERT_GE(waypoints.size(), 2u);
    EXPECT_EQ(waypoints.front().x, a.x);
    EXPECT_EQ(waypoints.front().y, a.y);
    EXPECT_EQ(waypoints.back().x, b.x);
    EXPECT_EQ(waypoints.back().y, b.y);
    double length = 0.0;
    for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
      length += geometry::distance(waypoints[i], waypoints[i + 1]);
    }
    // The polyline realises (approximately) the reported distance: LOS
    // queries match exactly; routed queries within FP accumulation.
    EXPECT_NEAR(length, metric.distance(a, b),
                1e-9 * (1.0 + length));
  }
}

TEST(GraphMetricTest, RepeatedPointQueriesHitThePointCache) {
  const GraphMetric metric([] {
    WaypointGraph g = random_graph(21, 20, 15);
    g.obstacles.push_back(Segment{{0.0, 500.0}, {1000.0, 500.0}});
    return g;
  }());
  const Point2 a{100.0, 100.0};
  const Point2 b{900.0, 900.0};
  const double d1 = metric.distance(a, b);
  const auto before = metric.cache_stats();
  const double d2 = metric.distance(a, b);
  const auto after = metric.cache_stats();
  EXPECT_EQ(d1, d2);
  EXPECT_GT(after.point_hits, before.point_hits);
  EXPECT_EQ(after.point_misses, before.point_misses);
}

TEST(GraphMetricTest, DistancesFromMatchesScalarDistance) {
  const GraphMetric metric([] {
    WaypointGraph g = random_graph(31, 25, 20);
    g.obstacles.push_back(Segment{{500.0, 0.0}, {500.0, 1000.0}});
    return g;
  }());
  support::Rng rng(5);
  const Point2 a{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
  std::vector<Point2> targets;
  for (int i = 0; i < 64; ++i) {
    targets.push_back(
        Point2{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  std::vector<double> batched(targets.size());
  metric.distances_from(a, targets, batched);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(batched[i], metric.distance(a, targets[i]));
  }
}

TEST(GraphMetricTest, EuclideanMetricObjectMatchesTheNullFastPath) {
  const EuclideanMetric& euclid = EuclideanMetric::instance();
  support::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2 a{rng.uniform(-500.0, 1500.0), rng.uniform(-500.0, 1500.0)};
    const Point2 b{rng.uniform(-500.0, 1500.0), rng.uniform(-500.0, 1500.0)};
    EXPECT_EQ(metric_distance(&euclid, a, b), metric_distance(nullptr, a, b));
  }
}

}  // namespace
}  // namespace bc::net
