// Cross-thread-count determinism: the parallel layer's contract is that
// every result is bit-identical at 1, 2, and 8 workers. These tests pin
// the pool to each count and compare full outputs with exact (==)
// floating-point equality — any reduction reorder or shared RNG stream
// would fail them. The CI TSan job additionally runs this file under
// BC_THREADS=8 and BC_THREADS=1 to cross-check the env-driven default.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bundle/candidates.h"
#include "bundle/exact_cover.h"
#include "core/bundlecharge.h"
#include "sim/experiment.h"
#include "support/parallel.h"

namespace bc {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

net::Deployment test_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return net::uniform_random_deployment(
      n, core::icdcs2019_simulation_profile().field, rng);
}

void expect_same_bundles(const std::vector<bundle::Bundle>& a,
                         const std::vector<bundle::Bundle>& b,
                         std::size_t threads) {
  ASSERT_EQ(a.size(), b.size()) << "at " << threads << " threads";
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members) << "bundle " << i;
    EXPECT_EQ(a[i].anchor.x, b[i].anchor.x) << "bundle " << i;
    EXPECT_EQ(a[i].anchor.y, b[i].anchor.y) << "bundle " << i;
    EXPECT_EQ(a[i].radius, b[i].radius) << "bundle " << i;
  }
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { support::set_thread_count(0); }
};

TEST_F(ParallelDeterminismTest, CandidateEnumerationIsThreadCountInvariant) {
  const net::Deployment deployment = test_deployment(120, 42);
  support::set_thread_count(1);
  const std::vector<bundle::Bundle> reference =
      bundle::enumerate_candidates(deployment, 60.0);
  // The parallel pair scan actually found multi-member candidates (the
  // count can be below n: domination pruning absorbs covered singletons).
  EXPECT_TRUE(std::any_of(reference.begin(), reference.end(),
                          [](const bundle::Bundle& b) {
                            return b.members.size() >= 2;
                          }));
  for (const std::size_t threads : kThreadCounts) {
    support::set_thread_count(threads);
    expect_same_bundles(reference,
                        bundle::enumerate_candidates(deployment, 60.0),
                        threads);
  }
}

TEST_F(ParallelDeterminismTest, ExperimentSweepIsThreadCountInvariant) {
  sim::ExperimentSpec spec;
  spec.make_deployment = sim::uniform_factory(40, net::FieldSpec{});
  spec.algorithm = tour::Algorithm::kBcOpt;
  spec.planner.bundle_radius = 60.0;
  spec.runs = 12;

  support::set_thread_count(1);
  const sim::AggregateMetrics reference = run_experiment(spec);
  for (const std::size_t threads : kThreadCounts) {
    support::set_thread_count(threads);
    const sim::AggregateMetrics got = run_experiment(spec);
    // Exact equality: per-run metrics land in run order, so even the
    // non-associative RunningStat reductions must match bit for bit.
    EXPECT_EQ(got.total_energy_j.mean(), reference.total_energy_j.mean());
    EXPECT_EQ(got.total_energy_j.stddev(), reference.total_energy_j.stddev());
    EXPECT_EQ(got.tour_length_m.mean(), reference.tour_length_m.mean());
    EXPECT_EQ(got.charge_time_s.mean(), reference.charge_time_s.mean());
    EXPECT_EQ(got.num_stops.mean(), reference.num_stops.mean());
    EXPECT_EQ(got.min_demand_fraction.min(),
              reference.min_demand_fraction.min());
  }
}

TEST_F(ParallelDeterminismTest, RadiusSweepIsThreadCountInvariant) {
  const net::Deployment deployment = test_deployment(60, 7);
  const core::BundleChargingPlanner planner(
      core::icdcs2019_simulation_profile());

  support::set_thread_count(1);
  const core::RadiusSweep reference =
      planner.sweep_radius(deployment, tour::Algorithm::kBc, 10.0, 120.0, 8);
  for (const std::size_t threads : kThreadCounts) {
    support::set_thread_count(threads);
    const core::RadiusSweep got =
        planner.sweep_radius(deployment, tour::Algorithm::kBc, 10.0, 120.0, 8);
    EXPECT_EQ(got.best_radius_m, reference.best_radius_m);
    ASSERT_EQ(got.points.size(), reference.points.size());
    for (std::size_t i = 0; i < got.points.size(); ++i) {
      EXPECT_EQ(got.points[i].radius_m, reference.points[i].radius_m);
      EXPECT_EQ(got.points[i].metrics.total_energy_j,
                reference.points[i].metrics.total_energy_j);
      EXPECT_EQ(got.points[i].metrics.tour_length_m,
                reference.points[i].metrics.tour_length_m);
    }
  }
}

TEST_F(ParallelDeterminismTest, ExactCoverRootFanOutIsThreadCountInvariant) {
  const net::Deployment deployment = test_deployment(30, 11);
  bundle::ExactCoverOptions options;
  options.max_nodes = 0;  // unlimited budget enables the root fan-out

  support::set_thread_count(1);
  const auto reference = bundle::optimal_bundles(deployment, 80.0, options);
  ASSERT_TRUE(reference.has_value());
  for (const std::size_t threads : kThreadCounts) {
    support::set_thread_count(threads);
    const auto got = bundle::optimal_bundles(deployment, 80.0, options);
    ASSERT_TRUE(got.has_value());
    expect_same_bundles(*reference, *got, threads);
  }
}

TEST_F(ParallelDeterminismTest,
       UnlimitedBudgetFanOutMatchesTheBudgetedSerialSearch) {
  const net::Deployment deployment = test_deployment(24, 3);
  bundle::ExactCoverOptions parallel_options;
  parallel_options.max_nodes = 0;
  bundle::ExactCoverOptions serial_options;  // default budget, serial DFS

  support::set_thread_count(8);
  const auto fanned = bundle::optimal_bundles(deployment, 70.0,
                                              parallel_options);
  const auto serial = bundle::optimal_bundles(deployment, 70.0,
                                              serial_options);
  ASSERT_TRUE(fanned.has_value());
  ASSERT_TRUE(serial.has_value());
  expect_same_bundles(*serial, *fanned, 8);
}

}  // namespace
}  // namespace bc
