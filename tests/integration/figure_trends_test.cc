// Integration tests: the qualitative shapes of the paper's figures must
// hold on small, fixed-seed versions of each experiment. The full-scale
// reproductions live in bench/; these tests are the fast regression gate
// for the same claims.

#include <gtest/gtest.h>

#include "bundle/generator.h"
#include "core/bundlecharge.h"

namespace bc {
namespace {

sim::ExperimentSpec base_spec(std::size_t n, double radius,
                              tour::Algorithm algorithm) {
  sim::ExperimentSpec spec;
  const core::Profile profile = core::icdcs2019_simulation_profile();
  spec.make_deployment = sim::uniform_factory(n, profile.field);
  spec.algorithm = algorithm;
  spec.planner = profile.planner;
  spec.planner.bundle_radius = radius;
  spec.evaluation = profile.evaluation;
  spec.runs = 5;
  spec.base_seed = 321;
  return spec;
}

// Fig. 6(a): with growing bundle radius, the tour shortens and the total
// charging time grows.
TEST(FigureTrendsTest, Fig6TradeoffDirections) {
  const auto small = sim::run_experiment(base_spec(120, 10.0,
                                                   tour::Algorithm::kBc));
  const auto large = sim::run_experiment(base_spec(120, 120.0,
                                                   tour::Algorithm::kBc));
  EXPECT_LT(large.tour_length_m.mean(), small.tour_length_m.mean());
  EXPECT_GT(large.charge_time_s.mean(), small.charge_time_s.mean());
}

// Fig. 6(b)/14(b): total energy vs radius is U-shaped — both a very small
// and a very large radius lose to an intermediate one.
TEST(FigureTrendsTest, Fig6InteriorOptimumExists) {
  const double tiny =
      sim::run_experiment(base_spec(200, 2.0, tour::Algorithm::kBc))
          .total_energy_j.mean();
  const double mid =
      sim::run_experiment(base_spec(200, 150.0, tour::Algorithm::kBc))
          .total_energy_j.mean();
  const double huge =
      sim::run_experiment(base_spec(200, 450.0, tour::Algorithm::kBc))
          .total_energy_j.mean();
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

// Fig. 11: bundle counts ordered exact <= greedy <= grid (small radius).
TEST(FigureTrendsTest, Fig11GeneratorOrdering) {
  const core::Profile profile = core::icdcs2019_simulation_profile();
  double exact_total = 0.0;
  double greedy_total = 0.0;
  double grid_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    support::Rng rng(100 + seed);
    const net::Deployment d =
        net::uniform_random_deployment(40, profile.field, rng);
    bundle::GeneratorOptions options;
    options.kind = bundle::GeneratorKind::kExact;
    exact_total += static_cast<double>(
        bundle::generate_bundles(d, 60.0, options).size());
    options.kind = bundle::GeneratorKind::kGreedy;
    greedy_total += static_cast<double>(
        bundle::generate_bundles(d, 60.0, options).size());
    options.kind = bundle::GeneratorKind::kGrid;
    grid_total += static_cast<double>(
        bundle::generate_bundles(d, 60.0, options).size());
  }
  EXPECT_LE(exact_total, greedy_total);
  EXPECT_LT(greedy_total, grid_total);
  // "Very close to the optimal solution" (Fig. 11(a) discussion).
  EXPECT_LE(greedy_total, exact_total * 1.35);
}

// Fig. 12(a)/13(a): BC-OPT posts the lowest total energy of the four and
// SC the highest, in the bundling-friendly dense regime.
TEST(FigureTrendsTest, Fig13AlgorithmOrderingDense) {
  const double r = 70.0;
  const std::size_t n = 200;
  const double sc =
      sim::run_experiment(base_spec(n, r, tour::Algorithm::kSc))
          .total_energy_j.mean();
  const double css =
      sim::run_experiment(base_spec(n, r, tour::Algorithm::kCss))
          .total_energy_j.mean();
  const double bc =
      sim::run_experiment(base_spec(n, r, tour::Algorithm::kBc))
          .total_energy_j.mean();
  const double opt =
      sim::run_experiment(base_spec(n, r, tour::Algorithm::kBcOpt))
          .total_energy_j.mean();
  EXPECT_LT(opt, bc);
  EXPECT_LT(bc, css);
  EXPECT_LT(css, sc);
}

// Fig. 13: SC's disadvantage grows with density (relative savings of BC
// at n = 200 exceed those at n = 40).
TEST(FigureTrendsTest, Fig13DensityGrowsTheGap) {
  const double r = 70.0;
  const double sparse_sc =
      sim::run_experiment(base_spec(40, r, tour::Algorithm::kSc))
          .total_energy_j.mean();
  const double sparse_bc =
      sim::run_experiment(base_spec(40, r, tour::Algorithm::kBc))
          .total_energy_j.mean();
  const double dense_sc =
      sim::run_experiment(base_spec(200, r, tour::Algorithm::kSc))
          .total_energy_j.mean();
  const double dense_bc =
      sim::run_experiment(base_spec(200, r, tour::Algorithm::kBc))
          .total_energy_j.mean();
  EXPECT_GT(dense_sc / dense_bc, sparse_sc / sparse_bc);
}

// Figs. 12(c)/13(c): CSS pays more charging time than BC-OPT (it slides
// stops without regard for charging efficiency).
TEST(FigureTrendsTest, CssChargingTimeExceedsBc) {
  const auto css =
      sim::run_experiment(base_spec(150, 40.0, tour::Algorithm::kCss));
  const auto bc =
      sim::run_experiment(base_spec(150, 40.0, tour::Algorithm::kBc));
  EXPECT_GT(css.avg_charge_time_per_sensor_s.mean(),
            bc.avg_charge_time_per_sensor_s.mean());
}

// Fig. 16: the testbed scenario — BC and BC-OPT beat SC at r = 1.2 m, with
// BC-OPT also shortening the tour by ~20 %.
TEST(FigureTrendsTest, Fig16TestbedShape) {
  const core::Profile profile = core::testbed_profile();
  const net::Deployment d = net::testbed_deployment();
  const core::BundleChargingPlanner planner(profile);
  const auto sc = planner.plan(d, tour::Algorithm::kSc);
  const auto bc = planner.plan(d, tour::Algorithm::kBc);
  const auto opt = planner.plan(d, tour::Algorithm::kBcOpt);
  EXPECT_LE(bc.metrics.total_energy_j, sc.metrics.total_energy_j);
  EXPECT_LT(opt.metrics.total_energy_j, sc.metrics.total_energy_j * 0.95);
  EXPECT_LT(opt.metrics.tour_length_m, sc.metrics.tour_length_m * 0.85);
}

}  // namespace
}  // namespace bc
