// End-to-end exercises of the public API across workloads, profiles and
// policies — the integration surface a downstream user actually touches.

#include <gtest/gtest.h>

#include "core/bundlecharge.h"

namespace bc {
namespace {

TEST(EndToEndTest, QuickstartFlowFromTheReadme) {
  support::Rng rng(7);
  const core::Profile profile = core::icdcs2019_simulation_profile();
  const net::Deployment deployment =
      net::uniform_random_deployment(100, profile.field, rng);
  const core::BundleChargingPlanner planner(profile);
  const core::PlanResult result =
      planner.plan(deployment, tour::Algorithm::kBcOpt);
  EXPECT_EQ(result.plan.algorithm, "BC-OPT");
  EXPECT_GT(result.metrics.total_energy_j, 0.0);
  EXPECT_GE(result.metrics.min_demand_fraction, 1.0 - 1e-9);
}

TEST(EndToEndTest, AllWorkloadGeneratorsFlowThroughAllPlanners) {
  const core::Profile profile = core::icdcs2019_simulation_profile();
  support::Rng rng(11);
  const std::vector<net::Deployment> deployments{
      net::uniform_random_deployment(40, profile.field, rng),
      net::clustered_deployment(40, 4, 30.0, profile.field, rng),
      net::jittered_grid_deployment(40, 0.6, profile.field, rng),
  };
  const core::BundleChargingPlanner planner(profile);
  for (const net::Deployment& d : deployments) {
    for (const auto algorithm :
         {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
          tour::Algorithm::kBcOpt}) {
      const auto result = planner.plan(d, algorithm);
      ASSERT_TRUE(tour::plan_is_partition(d, result.plan))
          << tour::to_string(algorithm);
      ASSERT_GE(result.metrics.min_demand_fraction, 1.0 - 1e-9)
          << tour::to_string(algorithm);
    }
  }
}

TEST(EndToEndTest, ClusteredWorkloadsBenefitMostFromBundling) {
  // The paper's motivation: dense (clustered) deployments are where
  // bundle charging shines. The BC-vs-SC energy ratio must be lower
  // (better) on clustered fields than on uniform ones, seed-averaged.
  const core::Profile profile = core::icdcs2019_simulation_profile();
  double uniform_ratio = 0.0;
  double clustered_ratio = 0.0;
  constexpr int kSeeds = 4;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    core::BundleChargingPlanner planner(profile);
    planner.mutable_profile().planner.bundle_radius = 60.0;
    support::Rng rng_u(50 + seed);
    const net::Deployment uniform =
        net::uniform_random_deployment(150, profile.field, rng_u);
    support::Rng rng_c(50 + seed);
    const net::Deployment clustered =
        net::clustered_deployment(150, 6, 40.0, profile.field, rng_c);
    uniform_ratio +=
        planner.plan(uniform, tour::Algorithm::kBc).metrics.total_energy_j /
        planner.plan(uniform, tour::Algorithm::kSc).metrics.total_energy_j;
    clustered_ratio +=
        planner.plan(clustered, tour::Algorithm::kBc).metrics.total_energy_j /
        planner.plan(clustered, tour::Algorithm::kSc).metrics.total_energy_j;
  }
  EXPECT_LT(clustered_ratio, uniform_ratio);
}

TEST(EndToEndTest, PaperCostProfileShiftsTheTradeoff) {
  // Under the literal 0.9 J/min charging draw, charging energy is nearly
  // free, so larger radii keep paying off: total energy at a large radius
  // must beat the small radius more decisively than under the
  // energy-conserving profile.
  support::Rng rng(13);
  const core::Profile paper_cost = core::icdcs2019_paper_cost_profile();
  const net::Deployment d =
      net::uniform_random_deployment(150, paper_cost.field, rng);
  core::BundleChargingPlanner planner(paper_cost);
  planner.mutable_profile().planner.bundle_radius = 150.0;
  const double large =
      planner.plan(d, tour::Algorithm::kBc).metrics.total_energy_j;
  planner.mutable_profile().planner.bundle_radius = 5.0;
  const double small =
      planner.plan(d, tour::Algorithm::kBc).metrics.total_energy_j;
  EXPECT_LT(large, small);
}

TEST(EndToEndTest, RadiusTuningPicksAUsefulRadius) {
  support::Rng rng(17);
  const core::Profile profile = core::icdcs2019_simulation_profile();
  const net::Deployment d =
      net::uniform_random_deployment(120, profile.field, rng);
  const core::BundleChargingPlanner planner(profile);
  const core::PlanResult tuned = planner.plan_with_tuned_radius(
      d, tour::Algorithm::kBc, 5.0, 300.0, 8);
  const core::PlanResult fixed = planner.plan(d, tour::Algorithm::kBc);
  EXPECT_LE(tuned.metrics.total_energy_j,
            fixed.metrics.total_energy_j + 1e-6);
}

TEST(EndToEndTest, CumulativePolicyIsAStrictRefinement) {
  support::Rng rng(19);
  core::Profile profile = core::icdcs2019_simulation_profile();
  const net::Deployment d =
      net::uniform_random_deployment(100, profile.field, rng);
  profile.planner.bundle_radius = 80.0;
  profile.evaluation.policy = sim::SchedulePolicy::kCumulative;
  const core::BundleChargingPlanner cumulative(profile);
  profile.evaluation.policy = sim::SchedulePolicy::kIsolated;
  const core::BundleChargingPlanner isolated(profile);
  const double e_cum =
      cumulative.plan(d, tour::Algorithm::kBc).metrics.total_energy_j;
  const double e_iso =
      isolated.plan(d, tour::Algorithm::kBc).metrics.total_energy_j;
  EXPECT_LT(e_cum, e_iso);
}

}  // namespace
}  // namespace bc
