// Randomized cross-cutting invariants ("fuzz" sweeps).
//
// For a grid of seeds x workload shapes, every planner must uphold the
// library-wide contracts, and the documented dominance relations between
// algorithms, generators and schedule policies must hold. These tests are
// the broadest net in the suite: any planner/geometry/schedule regression
// tends to trip one of them.

#include <tuple>

#include <gtest/gtest.h>

#include "bundle/generator.h"
#include "support/require.h"
#include "core/bundlecharge.h"

namespace bc {
namespace {

enum class Workload { kUniform, kClustered, kGrid };

net::Deployment make_workload(Workload workload, std::size_t n,
                              std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  switch (workload) {
    case Workload::kUniform:
      return net::uniform_random_deployment(n, spec, rng);
    case Workload::kClustered:
      return net::clustered_deployment(n, 1 + n / 40, 35.0, spec, rng);
    case Workload::kGrid:
      return net::jittered_grid_deployment(n, 0.8, spec, rng);
  }
  support::ensure(false, "unreachable workload");
  return net::uniform_random_deployment(n, spec, rng);
}

class FuzzInvariantsTest
    : public ::testing::TestWithParam<std::tuple<int, Workload>> {};

TEST_P(FuzzInvariantsTest, AllPlannersUpholdAllContracts) {
  const auto [seed, workload] = GetParam();
  const std::size_t n = 30 + static_cast<std::size_t>(seed) * 17 % 90;
  const net::Deployment d =
      make_workload(workload, n, 9000 + static_cast<std::uint64_t>(seed));
  tour::PlannerConfig config;
  config.bundle_radius = 10.0 + (seed * 23) % 90;

  const sim::EvaluationConfig eval;
  double bc_energy = 0.0;
  double bc_opt_energy = 0.0;
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt, tour::Algorithm::kTspn}) {
    const tour::ChargingPlan plan =
        tour::plan_charging_tour(d, algorithm, config);
    // Contract 1: partition.
    ASSERT_TRUE(tour::plan_is_partition(d, plan))
        << tour::to_string(algorithm) << " seed=" << seed;
    // Contract 2: stops inside a sane envelope (field inflated by 2r).
    for (const tour::Stop& stop : plan.stops) {
      ASSERT_GE(stop.position.x, d.field().lo.x - 2 * config.bundle_radius);
      ASSERT_LE(stop.position.x, d.field().hi.x + 2 * config.bundle_radius);
    }
    // Contract 3: feasibility under every schedule policy.
    const sim::PlanMetrics m = sim::evaluate_plan(d, plan, eval);
    ASSERT_GE(m.min_demand_fraction, 1.0 - 1e-6)
        << tour::to_string(algorithm);
    ASSERT_GT(m.total_energy_j, 0.0);
    if (algorithm == tour::Algorithm::kBc) bc_energy = m.total_energy_j;
    if (algorithm == tour::Algorithm::kBcOpt) {
      bc_opt_energy = m.total_energy_j;
    }
  }
  // Dominance: Algorithm 3 only accepts improving moves.
  EXPECT_LE(bc_opt_energy, bc_energy + 1e-6);
}

TEST_P(FuzzInvariantsTest, GeneratorAndPolicyDominance) {
  const auto [seed, workload] = GetParam();
  const std::size_t n = 25 + static_cast<std::size_t>(seed) * 13 % 60;
  const net::Deployment d =
      make_workload(workload, n, 5000 + static_cast<std::uint64_t>(seed));
  const double r = 15.0 + (seed * 31) % 80;

  // Generators: every kind covers within radius; exact <= greedy count.
  bundle::GeneratorOptions options;
  options.kind = bundle::GeneratorKind::kGreedy;
  const auto greedy = bundle::generate_bundles(d, r, options);
  options.kind = bundle::GeneratorKind::kGrid;
  const auto grid = bundle::generate_bundles(d, r, options);
  for (const auto* bundles : {&greedy, &grid}) {
    ASSERT_TRUE(bundle::is_partition(d, *bundles));
    ASSERT_LE(bundle::max_charging_distance(d, *bundles), r + 1e-6);
  }
  if (n <= 60) {
    options.kind = bundle::GeneratorKind::kExact;
    const auto exact = bundle::generate_bundles(d, r, options);
    ASSERT_TRUE(bundle::is_partition(d, exact));
    ASSERT_LE(exact.size(), greedy.size());
  }

  // Policies: optimal-lp <= cumulative <= isolated on total charge time.
  tour::PlannerConfig config;
  config.bundle_radius = r;
  const auto plan = tour::plan_bc(d, config);
  sim::EvaluationConfig eval;
  eval.policy = sim::SchedulePolicy::kIsolated;
  const double t_iso = sim::evaluate_plan(d, plan, eval).charge_time_s;
  eval.policy = sim::SchedulePolicy::kCumulative;
  const double t_cum = sim::evaluate_plan(d, plan, eval).charge_time_s;
  eval.policy = sim::SchedulePolicy::kOptimalLp;
  const double t_lp = sim::evaluate_plan(d, plan, eval).charge_time_s;
  EXPECT_LE(t_cum, t_iso + 1e-6);
  EXPECT_LE(t_lp, t_cum + 1e-6);
}

TEST_P(FuzzInvariantsTest, TranslationInvariance) {
  // Metamorphic: shifting the whole deployment (sensors + depot) rigidly
  // must not change any energy metric.
  const auto [seed, workload] = GetParam();
  const net::Deployment d =
      make_workload(workload, 40, 7000 + static_cast<std::uint64_t>(seed));
  const geometry::Point2 shift{137.0, -91.0};
  std::vector<geometry::Point2> moved;
  for (const auto& p : d.positions()) moved.push_back(p + shift);
  const geometry::Box2 field{d.field().lo + shift, d.field().hi + shift};
  const net::Deployment shifted(std::move(moved), field, d.depot() + shift,
                                d.demand_j());

  tour::PlannerConfig config;
  config.bundle_radius = 45.0;
  const sim::EvaluationConfig eval;
  for (const auto algorithm :
       {tour::Algorithm::kBc, tour::Algorithm::kBcOpt}) {
    const auto base = sim::evaluate_plan(
        d, tour::plan_charging_tour(d, algorithm, config), eval);
    const auto moved_metrics = sim::evaluate_plan(
        shifted, tour::plan_charging_tour(shifted, algorithm, config), eval);
    EXPECT_NEAR(base.total_energy_j, moved_metrics.total_energy_j,
                base.total_energy_j * 1e-9)
        << tour::to_string(algorithm);
    EXPECT_EQ(base.num_stops, moved_metrics.num_stops);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWorkloads, FuzzInvariantsTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kClustered,
                                         Workload::kGrid)));

}  // namespace
}  // namespace bc
