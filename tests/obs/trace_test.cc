// Unit tests for the trace journal (`ctest -L obs`): record shape,
// nesting depth, attribute rendering, the virtual clock, and suppression
// inside parallel regions.

#include "obs/trace.h"

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "support/parallel.h"

namespace bc::obs {
namespace {

TEST(TraceTest, NoJournalMeansInactiveSpans) {
  ASSERT_EQ(trace_journal(), nullptr);
  TraceSpan span("test.trace.no_journal");
  EXPECT_FALSE(span.active());
  span.attr("ignored", std::int64_t{1});  // must be a safe no-op
}

TEST(TraceTest, SpansRecordOnDestructionInSeqOrder) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  ScopedTraceJournal scope(journal);
  {
    TraceSpan outer("test.trace.outer");
    {
      TraceSpan inner("test.trace.inner");
      inner.attr("n", std::uint64_t{3});
    }
  }
  const auto records = journal.records();
  ASSERT_EQ(records.size(), 2u);
  // Inner ends first, so it is journaled first; seq restores order.
  EXPECT_EQ(records[0].name, "test.trace.inner");
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_EQ(records[1].name, "test.trace.outer");
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[1].depth, 0);
  EXPECT_LE(records[1].t0_ns, records[0].t0_ns);
  EXPECT_GE(records[1].t1_ns, records[0].t1_ns);
}

TEST(TraceTest, VirtualClockTicksFixedSteps) {
  TraceJournal journal(
      std::make_unique<VirtualTraceClock>(/*start_ns=*/100, /*step_ns=*/10));
  EXPECT_EQ(journal.clock_name(), "virtual");
  EXPECT_EQ(journal.now_ns(), 100);
  EXPECT_EQ(journal.now_ns(), 110);
  EXPECT_EQ(journal.now_ns(), 120);
}

TEST(TraceTest, AttrTypesRenderAsJson) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  ScopedTraceJournal scope(journal);
  {
    TraceSpan span("test.trace.attrs");
    span.attr("i", std::int64_t{-5})
        .attr("u", std::uint64_t{7})
        .attr("d", 0.5)
        .attr("b", true)
        .attr("s", std::string_view("he\"llo"));
  }
  const std::string jsonl = journal.to_jsonl();
  EXPECT_NE(jsonl.find("\"i\": -5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"u\": 7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"d\": 0.5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"b\": true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"s\": \"he\\\"llo\""), std::string::npos);
}

TEST(TraceTest, JsonlHeaderNamesSchemaAndClock) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  const std::string jsonl = journal.to_jsonl();
  EXPECT_EQ(jsonl.rfind(
                "{\"schema\": \"bc-trace\", \"version\": 1, "
                "\"clock\": \"virtual\"}\n",
                0),
            0u);
  TraceJournal steady;
  EXPECT_NE(steady.to_jsonl().find("\"clock\": \"steady\""),
            std::string::npos);
}

TEST(TraceTest, PointsEmitOnceWithSingleTimestamp) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  ScopedTraceJournal scope(journal);
  {
    TracePoint point("test.trace.point");
    point.attr("kind", "sensor_dead");
    point.emit();
    // A second emit (or the destructor after emit) must not duplicate.
    point.emit();
  }
  ASSERT_EQ(journal.size(), 1u);
  const auto records = journal.records();
  EXPECT_FALSE(records[0].is_span);
  EXPECT_NE(journal.to_jsonl().find("\"type\": \"point\""),
            std::string::npos);
}

TEST(TraceTest, EmissionSuppressedInsideParallelRegions) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  ScopedTraceJournal scope(journal);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::set_thread_count(threads);
    support::parallel_for(
        8, /*grain=*/1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            TraceSpan span("test.trace.suppressed");
            EXPECT_FALSE(span.active());
            TracePoint point("test.trace.suppressed_point");
            point.emit();
          }
        });
  }
  support::set_thread_count(0);
  // Nothing recorded at any thread count — including the serial inline
  // fallback at threads=1, which is the subtle half of the contract.
  EXPECT_EQ(journal.size(), 0u);
}

TEST(TraceTest, WriteProducesLoadableFile) {
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  {
    ScopedTraceJournal scope(journal);
    TraceSpan span("test.trace.write");
  }
  const std::string path = testing::TempDir() + "/bc_obs_trace_test.jsonl";
  auto written = journal.write(path);
  ASSERT_TRUE(written.has_value());
}

TEST(TraceTest, JsonQuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote(std::string_view("a\x01"
                                        "b",
                                        3)),
            "\"a\\u0001b\"");
}

}  // namespace
}  // namespace bc::obs
