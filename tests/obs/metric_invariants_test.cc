// Metric-invariant suite (`ctest -L obs`): the observability counters
// must agree with the ground truth the solvers already report through
// their return values — a drifting counter is an instrumentation bug
// (or a behaviour change) even when the solver output is right.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bundle/candidates.h"
#include "bundle/exact_cover.h"
#include "core/bundlecharge.h"
#include "net/deployment.h"
#include "obs/metrics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/tour.h"

namespace bc::obs {
namespace {

using geometry::Point2;

net::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return net::uniform_random_deployment(
      n, core::icdcs2019_simulation_profile().field, rng);
}

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

TEST(MetricInvariantsTest, ExactCoverNodeCounterMatchesReturnedCount) {
  // The obs counter is flushed from the searcher's own node count, summed
  // over calls; the per-call ground truth is CoverSolution::nodes_expanded.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  std::uint64_t expected_nodes = 0;
  std::uint64_t expected_calls = 0;
  for (const std::size_t n : {40u, 80u, 120u}) {
    const auto deployment = make_deployment(n, 9000 + n);
    const auto candidates =
        bundle::enumerate_candidates(deployment, /*radius=*/60.0);
    bundle::ExactCoverOptions options;
    options.max_nodes = 50'000;
    const auto solution =
        bundle::exact_cover_anytime(deployment, candidates, options);
    ASSERT_TRUE(solution.has_value());
    expected_nodes += solution.value().nodes_expanded;
    ++expected_calls;
  }
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("exact_cover.nodes_expanded"), expected_nodes);
  EXPECT_EQ(snap.counter("exact_cover.calls"), expected_calls);
}

TEST(MetricInvariantsTest, CandidateCountersBalance) {
  // Conservation law of the enumeration pipeline: every emitted pair-set
  // is either a dedup hit or a distinct survivor, and every survivor is
  // either pruned as dominated or returned. So, per call:
  //   enumerated == n + sets_emitted - dedup_hits - dominated_pruned
  // and `enumerated` must equal the size of the returned pool.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::set_thread_count(threads);
    for (const std::size_t n : {30u, 60u, 120u}) {
      MetricsRegistry registry;
      ScopedMetricsRegistry scope(registry);
      const auto deployment = make_deployment(n, 5000 + n);
      const auto pool =
          bundle::enumerate_candidates(deployment, /*radius=*/60.0);
      const MetricsSnapshot snap = registry.snapshot();
      EXPECT_EQ(snap.counter("candidates.enumerated"), pool.size())
          << "n=" << n << " threads=" << threads;
      EXPECT_EQ(snap.counter("candidates.enumerated"),
                n + snap.counter("candidates.sets_emitted") -
                    snap.counter("candidates.dedup_hits") -
                    snap.counter("candidates.dominated_pruned"))
          << "n=" << n << " threads=" << threads;
    }
  }
  support::set_thread_count(0);
}

TEST(MetricInvariantsTest, TwoOptMoveCounterConsistentWithGain) {
  // moves > 0 exactly when the returned gain is positive, and the move
  // histogram records one observation per accepted move.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const auto pts = random_points(120, 4242);
  tsp::Tour tour = tsp::nearest_neighbor_tour(pts, 0);
  const double gain = tsp::two_opt(pts, tour);
  const MetricsSnapshot snap = registry.snapshot();
  const std::uint64_t moves = snap.counter("tsp.two_opt.moves");
  ASSERT_GT(gain, 0.0);  // NN tours on random points always improve
  EXPECT_GT(moves, 0u);
  const auto* hist = snap.histogram("tsp.two_opt.move_gain");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total, moves);
  EXPECT_GE(snap.counter("tsp.two_opt.passes"), 1u);
  EXPECT_GE(snap.counter("tsp.two_opt.certify_sweeps"), 1u);
}

TEST(MetricInvariantsTest, TwoOptCounterConsistentWithReference) {
  // Cross-implementation consistency: the neighbour-list 2-opt certifies
  // a full-neighbourhood local optimum, so the reference scanner must
  // find zero improving moves on its output — checked here through the
  // reference's own obs counter, not just its return value. And on an
  // already-optimal tour the production improver must report zero moves.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const auto pts = random_points(90, 1717);
  tsp::Tour tour = tsp::nearest_neighbor_tour(pts, 0);
  tsp::two_opt(pts, tour);

  MetricsRegistry after;
  {
    ScopedMetricsRegistry after_scope(after);
    const double ref_gain = tsp::two_opt_reference(pts, tour);
    EXPECT_DOUBLE_EQ(ref_gain, 0.0);
    const double prod_gain = tsp::two_opt(pts, tour);
    EXPECT_DOUBLE_EQ(prod_gain, 0.0);
  }
  const MetricsSnapshot snap = after.snapshot();
  EXPECT_EQ(snap.counter("tsp.two_opt_reference.moves"), 0u);
  EXPECT_EQ(snap.counter("tsp.two_opt_reference.calls"), 1u);
  EXPECT_EQ(snap.counter("tsp.two_opt.moves"), 0u);
  EXPECT_EQ(snap.histogram("tsp.two_opt.move_gain"), nullptr)
      << "no moves were applied, so the gain histogram must stay empty";
}

TEST(MetricInvariantsTest, ReferenceMovesMatchItsOwnGainAccounting) {
  // The reference improver flushes one counter per accepted move; on a
  // fresh NN tour that count must be positive exactly when gain is.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const auto pts = random_points(80, 2626);
  tsp::Tour tour = tsp::nearest_neighbor_tour(pts, 0);
  const double gain = tsp::two_opt_reference(pts, tour);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_GT(gain, 0.0);
  EXPECT_GT(snap.counter("tsp.two_opt_reference.moves"), 0u);
}

TEST(MetricInvariantsTest, CountersAreThreadCountInvariant) {
  // The full solver-ladder metric snapshot is part of the determinism
  // contract: identical at every BC_THREADS, not merely "all events
  // counted". (The golden-trace suite pins the serialised bytes; this
  // pins the semantic values through the lookup API.)
  const auto deployment = make_deployment(100, 3131);
  auto run = [&](std::size_t threads) {
    support::set_thread_count(threads);
    MetricsRegistry registry;
    ScopedMetricsRegistry scope(registry);
    const core::BundleChargingPlanner planner(
        core::icdcs2019_simulation_profile());
    planner.plan(deployment, tour::Algorithm::kBcOpt);
    const MetricsSnapshot snap = registry.snapshot();
    support::set_thread_count(0);
    return snap;
  };
  const MetricsSnapshot at1 = run(1);
  const MetricsSnapshot at8 = run(8);
  EXPECT_EQ(at1.counter("exact_cover.nodes_expanded"),
            at8.counter("exact_cover.nodes_expanded"));
  EXPECT_EQ(at1.counter("candidates.enumerated"),
            at8.counter("candidates.enumerated"));
  EXPECT_EQ(at1.counter("tsp.two_opt.moves"),
            at8.counter("tsp.two_opt.moves"));
  EXPECT_EQ(at1.counter("anchor.bisection_iters"),
            at8.counter("anchor.bisection_iters"));
  EXPECT_EQ(at1.to_json(), at8.to_json());
}

}  // namespace
}  // namespace bc::obs
