// Golden-trace determinism suite (`ctest -L obs`): under the virtual
// clock, a full planning workload must serialise to *byte-identical*
// trace journals and metrics snapshots at BC_THREADS = 1, 2 and 8, and
// across back-to-back reruns. This is the executable form of the
// observability determinism contract (DESIGN.md §9): spans only from
// serial control flow, integer-only metric merges.

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundlecharge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace bc::obs {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct GoldenCapture {
  std::string trace_jsonl;
  std::string metrics_json;
};

// The workload walks the whole solver ladder: three planning algorithms
// (candidate enumeration, exact cover, 2-opt/Or-opt, anchor search) plus
// a parallel radius sweep whose per-cell planning runs on pool workers —
// exactly the place where naive tracing would diverge across BC_THREADS.
void run_workload(const net::Deployment& deployment) {
  const core::BundleChargingPlanner planner(
      core::icdcs2019_simulation_profile());
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kBc, tour::Algorithm::kBcOpt}) {
    planner.plan(deployment, algorithm);
  }
  // The default generator covers greedily; one exact-generator plan pulls
  // the branch & bound into the journal too (capped so the suite stays
  // fast — the cap itself is part of the pinned behaviour).
  core::Profile exact_profile = core::icdcs2019_simulation_profile();
  exact_profile.planner.generator.kind = bundle::GeneratorKind::kExact;
  exact_profile.planner.generator.exact.max_nodes = 20'000;
  core::BundleChargingPlanner(exact_profile)
      .plan(deployment, tour::Algorithm::kBc);
  planner.sweep_radius(deployment, tour::Algorithm::kBc, /*min_radius=*/30.0,
                       /*max_radius=*/80.0, /*steps=*/4);
}

GoldenCapture capture(const net::Deployment& deployment, std::size_t threads) {
  support::set_thread_count(threads);
  MetricsRegistry registry;
  ScopedMetricsRegistry metrics_scope(registry);
  TraceJournal journal(std::make_unique<VirtualTraceClock>());
  {
    ScopedTraceJournal trace_scope(journal);
    run_workload(deployment);
  }
  GoldenCapture out;
  out.trace_jsonl = journal.to_jsonl();
  out.metrics_json = registry.snapshot().to_json();
  support::set_thread_count(0);
  return out;
}

net::Deployment golden_deployment() {
  support::Rng rng(7);
  return net::uniform_random_deployment(
      60, core::icdcs2019_simulation_profile().field, rng);
}

TEST(GoldenTraceTest, ByteIdenticalAcrossThreadCounts) {
  const net::Deployment deployment = golden_deployment();
  const GoldenCapture reference = capture(deployment, kThreadCounts[0]);
  ASSERT_FALSE(reference.trace_jsonl.empty());
  ASSERT_FALSE(reference.metrics_json.empty());
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const GoldenCapture other = capture(deployment, kThreadCounts[i]);
    EXPECT_EQ(reference.trace_jsonl, other.trace_jsonl)
        << "trace journal diverged at BC_THREADS=" << kThreadCounts[i];
    EXPECT_EQ(reference.metrics_json, other.metrics_json)
        << "metrics snapshot diverged at BC_THREADS=" << kThreadCounts[i];
  }
}

TEST(GoldenTraceTest, ByteIdenticalAcrossReruns) {
  const net::Deployment deployment = golden_deployment();
  const GoldenCapture first = capture(deployment, 2);
  const GoldenCapture second = capture(deployment, 2);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(GoldenTraceTest, JournalCoversTheSolverLadder) {
  const net::Deployment deployment = golden_deployment();
  const GoldenCapture captured = capture(deployment, 1);

  // Header first, then every record carries a seq in order.
  EXPECT_EQ(captured.trace_jsonl.rfind(
                "{\"schema\": \"bc-trace\", \"version\": 1, "
                "\"clock\": \"virtual\"}\n",
                0),
            0u);

  const std::set<std::string> expected = {
      "\"name\": \"core.plan\"",
      "\"name\": \"core.sweep_radius\"",
      "\"name\": \"plan\"",
      "\"name\": \"candidates.enumerate\"",
      "\"name\": \"exact_cover.search\"",
      "\"name\": \"tsp.two_opt\"",
      "\"name\": \"tsp.or_opt\"",
  };
  for (const std::string& needle : expected) {
    EXPECT_NE(captured.trace_jsonl.find(needle), std::string::npos)
        << "journal is missing " << needle;
  }

  // The parallel sweep's per-cell plans run on workers: suppressed. The
  // sweep span itself is the only record between its own t0 and the
  // preceding serial record, so no "plan" span may sit inside the sweep.
  // Cheap structural proxy: the last record is the sweep span (it closes
  // last), and record count matches the three serial plans exactly.
  const auto sweep_pos = captured.trace_jsonl.find("core.sweep_radius");
  ASSERT_NE(sweep_pos, std::string::npos);
  EXPECT_EQ(captured.trace_jsonl.find("\"name\": \"plan\"", sweep_pos),
            std::string::npos)
      << "a per-cell plan span leaked out of the parallel radius sweep";
}

TEST(GoldenTraceTest, MetricsCoverTheSolverLadder) {
  const net::Deployment deployment = golden_deployment();
  support::set_thread_count(1);
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  run_workload(deployment);
  const MetricsSnapshot snap = registry.snapshot();
  support::set_thread_count(0);

  for (const char* name :
       {"candidates.calls", "candidates.enumerated", "exact_cover.calls",
        "exact_cover.nodes_expanded", "tsp.two_opt.calls", "tsp.or_opt.calls",
        "anchor.calls", "planner.plans"}) {
    EXPECT_GT(snap.counter(name), 0u) << "metric " << name << " never fired";
  }
  EXPECT_GT(snap.gauge("exact_cover.max_depth"), 0u);
  // 3 direct plans + 1 exact-generator plan + 4 sweep cells.
  EXPECT_EQ(snap.counter("planner.plans"), 8u);
}

}  // namespace
}  // namespace bc::obs
