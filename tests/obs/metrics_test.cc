// Unit tests for the deterministic metrics registry (`ctest -L obs`):
// merge semantics per kind, scoped registry swapping, snapshot lookups
// and serialisation, and cross-thread recording through the pool.

#include "obs/metrics.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "support/parallel.h"

namespace bc::obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter c("test.metrics.counter_accumulates");
  c.add();
  c.add(41);
  c.add(0);  // no-op, must not create spurious entries elsewhere
  EXPECT_EQ(registry.snapshot().counter("test.metrics.counter_accumulates"),
            42u);
}

TEST(MetricsTest, GaugeKeepsHighWater) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Gauge g("test.metrics.gauge_high_water");
  g.record(7);
  g.record(100);
  g.record(3);
  EXPECT_EQ(registry.snapshot().gauge("test.metrics.gauge_high_water"), 100u);
}

TEST(MetricsTest, HistogramBucketsByFirstMatchingBound) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  constexpr std::array<double, 3> kBounds = {1.0, 10.0, 100.0};
  const Histogram h("test.metrics.histogram_buckets", kBounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000);   // overflow bucket
  const MetricsSnapshot snap = registry.snapshot();
  const auto* entry = snap.histogram("test.metrics.histogram_buckets");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(entry->counts[0], 2u);
  EXPECT_EQ(entry->counts[1], 1u);
  EXPECT_EQ(entry->counts[2], 0u);
  EXPECT_EQ(entry->counts[3], 1u);
  EXPECT_EQ(entry->total, 4u);
}

TEST(MetricsTest, ScopedRegistryIsolatesAndRestores) {
  MetricsRegistry outer;
  ScopedMetricsRegistry outer_scope(outer);
  const Counter c("test.metrics.scoped_isolation");
  c.add(1);
  {
    MetricsRegistry inner;
    ScopedMetricsRegistry inner_scope(inner);
    c.add(10);  // same handle, different registry
    EXPECT_EQ(inner.snapshot().counter("test.metrics.scoped_isolation"), 10u);
  }
  c.add(1);
  EXPECT_EQ(outer.snapshot().counter("test.metrics.scoped_isolation"), 2u);
}

TEST(MetricsTest, ResetZeroesWithoutForgettingNames) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter c("test.metrics.reset");
  c.add(5);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counter("test.metrics.reset"), 0u);
  c.add(2);  // handle still valid after reset
  EXPECT_EQ(registry.snapshot().counter("test.metrics.reset"), 2u);
}

TEST(MetricsTest, ZeroValuedEntriesAreOmittedFromSnapshots) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter c("test.metrics.zero_omitted");
  c.add(0);
  const MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "test.metrics.zero_omitted");
  }
}

TEST(MetricsTest, ParallelRecordingMergesAllShards) {
  // Record from pool workers; the snapshot must see the full sum and the
  // global max regardless of which worker handled which chunk.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter c("test.metrics.parallel_sum");
  const Gauge g("test.metrics.parallel_max");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    registry.reset();
    support::set_thread_count(threads);
    support::parallel_for(
        1000, /*grain=*/16, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            c.add(1);
            g.record(static_cast<std::uint64_t>(i));
          }
        });
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("test.metrics.parallel_sum"), 1000u)
        << "threads=" << threads;
    EXPECT_EQ(snap.gauge("test.metrics.parallel_max"), 999u)
        << "threads=" << threads;
  }
  support::set_thread_count(0);
}

TEST(MetricsTest, SnapshotJsonIsNameSortedAndStable) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter b("test.metrics.json.bbb");
  const Counter a("test.metrics.json.aaa");
  b.add(2);
  a.add(1);
  const std::string json = registry.snapshot().to_json();
  const auto pos_a = json.find("test.metrics.json.aaa");
  const auto pos_b = json.find("test.metrics.json.bbb");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  // Equal registries serialise to equal bytes.
  EXPECT_EQ(json, registry.snapshot().to_json());
}

TEST(MetricsTest, WriteMetricsJsonEmitsSchemaHeader) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(registry);
  const Counter c("test.metrics.file_write");
  c.add(3);
  const std::string path =
      testing::TempDir() + "/bc_obs_metrics_test_write.json";
  auto written = write_metrics_json(path, registry.snapshot());
  ASSERT_TRUE(written.has_value());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema\": \"bc-metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"test.metrics.file_write\": 3"), std::string::npos);
}

TEST(MetricsTest, AbsentNamesReadAsZeroOrNull) {
  MetricsRegistry registry;
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test.metrics.never_recorded"), 0u);
  EXPECT_EQ(snap.gauge("test.metrics.never_recorded"), 0u);
  EXPECT_EQ(snap.histogram("test.metrics.never_recorded"), nullptr);
}

}  // namespace
}  // namespace bc::obs
