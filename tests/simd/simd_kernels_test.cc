// Differential tests for the runtime SIMD dispatch shim: every compiled
// ISA must reproduce the scalar oracle bit for bit — integer counts,
// written words, and the FP distance-filter's accept set and order.

#include "support/simd.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::support::simd {
namespace {

// Restores the ISA active before the test so dispatch-mutating tests
// cannot leak into each other.
class IsaGuard {
 public:
  IsaGuard() : saved_(active_isa()) {}
  ~IsaGuard() { set_isa(saved_); }

 private:
  Isa saved_;
};

std::vector<std::uint64_t> random_words(std::size_t words,
                                        support::Rng& rng) {
  std::vector<std::uint64_t> out(words);
  for (auto& w : out) {
    w = rng.next();
  }
  return out;
}

std::vector<Isa> compiled_supported_isas() {
  std::vector<Isa> isas;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    if (isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

TEST(SimdParseTest, RoundTripsNames) {
  Isa isa;
  ASSERT_TRUE(parse_isa("scalar", isa));
  EXPECT_EQ(isa, Isa::kScalar);
  ASSERT_TRUE(parse_isa("avx2", isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  ASSERT_TRUE(parse_isa("neon", isa));
  EXPECT_EQ(isa, Isa::kNeon);
  ASSERT_TRUE(parse_isa("auto", isa));
  EXPECT_EQ(isa, best_supported_isa());
  EXPECT_FALSE(parse_isa("sse9", isa));
  EXPECT_FALSE(parse_isa("", isa));
  EXPECT_EQ(to_string(Isa::kScalar), "scalar");
  EXPECT_EQ(to_string(Isa::kAvx2), "avx2");
  EXPECT_EQ(to_string(Isa::kNeon), "neon");
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(isa_compiled(Isa::kScalar));
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  // Exactly one of AVX2/NEON can be compiled into one binary.
  EXPECT_FALSE(isa_compiled(Isa::kAvx2) && isa_compiled(Isa::kNeon));
}

TEST(SimdDispatchTest, UnsupportedRequestFallsBackToScalar) {
  IsaGuard guard;
  // At most one vector ISA is supported; the other must degrade.
  const Isa missing =
      isa_supported(Isa::kAvx2) ? Isa::kNeon : Isa::kAvx2;
  if (!isa_supported(missing)) {
    EXPECT_EQ(set_isa(missing), Isa::kScalar);
    EXPECT_EQ(active_isa(), Isa::kScalar);
  }
  for (const Isa isa : compiled_supported_isas()) {
    EXPECT_EQ(set_isa(isa), isa);
    EXPECT_EQ(active_isa(), isa);
  }
}

TEST(SimdKernelTest, SubtractAndCountMatchesScalarEverywhere) {
  support::Rng rng(7);
  const KernelTable& scalar = kernels(Isa::kScalar);
  for (const Isa isa : compiled_supported_isas()) {
    const KernelTable& table = kernels(isa);
    for (std::size_t words = 0; words <= 37; ++words) {
      const auto src = random_words(words, rng);
      const auto mask = random_words(words, rng);
      std::vector<std::uint64_t> dst_scalar(words, 0xfeed);
      std::vector<std::uint64_t> dst_vec(words, 0xbeef);
      const std::size_t want = scalar.subtract_and_count(
          dst_scalar.data(), src.data(), mask.data(), words);
      const std::size_t got = table.subtract_and_count(
          dst_vec.data(), src.data(), mask.data(), words);
      ASSERT_EQ(got, want) << to_string(isa) << " words=" << words;
      ASSERT_EQ(dst_vec, dst_scalar) << to_string(isa) << " words=" << words;

      // Exact aliasing (dst == src) is part of the contract.
      auto alias = src;
      const std::size_t aliased = table.subtract_and_count(
          alias.data(), alias.data(), mask.data(), words);
      ASSERT_EQ(aliased, want);
      ASSERT_EQ(alias, dst_scalar);
    }
  }
}

TEST(SimdKernelTest, IntersectCountMatchesScalarEverywhere) {
  support::Rng rng(11);
  const KernelTable& scalar = kernels(Isa::kScalar);
  for (const Isa isa : compiled_supported_isas()) {
    const KernelTable& table = kernels(isa);
    for (std::size_t words = 0; words <= 37; ++words) {
      const auto a = random_words(words, rng);
      const auto b = random_words(words, rng);
      ASSERT_EQ(table.intersect_count(a.data(), b.data(), words),
                scalar.intersect_count(a.data(), b.data(), words))
          << to_string(isa) << " words=" << words;
    }
  }
}

TEST(SimdKernelTest, FilterWithinMatchesScalarEverywhere) {
  support::Rng rng(13);
  const KernelTable& scalar = kernels(Isa::kScalar);
  for (const Isa isa : compiled_supported_isas()) {
    const KernelTable& table = kernels(isa);
    for (const std::size_t count : {0u, 1u, 3u, 7u, 8u, 13u, 64u, 257u}) {
      std::vector<double> xs(count);
      std::vector<double> ys(count);
      std::vector<std::uint32_t> ids(count);
      for (std::size_t i = 0; i < count; ++i) {
        xs[i] = rng.uniform(0.0, 100.0);
        ys[i] = rng.uniform(0.0, 100.0);
        ids[i] = static_cast<std::uint32_t>(1000 + i);
      }
      const double qx = rng.uniform(0.0, 100.0);
      const double qy = rng.uniform(0.0, 100.0);
      for (const double r2 : {0.0, 100.0, 900.0, 40000.0}) {
        std::vector<std::uint32_t> want{42};  // appends, never clears
        std::vector<std::uint32_t> got{42};
        scalar.filter_within(xs.data(), ys.data(), ids.data(), count, qx, qy,
                             r2, want);
        table.filter_within(xs.data(), ys.data(), ids.data(), count, qx, qy,
                            r2, got);
        ASSERT_EQ(got, want)
            << to_string(isa) << " count=" << count << " r2=" << r2;
      }
    }
  }
}

TEST(SimdKernelTest, BoundaryPointsFilterIdentically) {
  // Points exactly on the radius: the <= compare must agree across ISAs.
  const KernelTable& scalar = kernels(Isa::kScalar);
  const std::size_t count = 16;
  std::vector<double> xs(count);
  std::vector<double> ys(count, 0.0);
  std::vector<std::uint32_t> ids(count);
  for (std::size_t i = 0; i < count; ++i) {
    xs[i] = static_cast<double>(i);  // distance i from the origin query
    ids[i] = static_cast<std::uint32_t>(i);
  }
  for (const Isa isa : compiled_supported_isas()) {
    const KernelTable& table = kernels(isa);
    for (std::size_t r = 0; r < count; ++r) {
      const double r2 = static_cast<double>(r) * static_cast<double>(r);
      std::vector<std::uint32_t> want;
      std::vector<std::uint32_t> got;
      scalar.filter_within(xs.data(), ys.data(), ids.data(), count, 0.0, 0.0,
                           r2, want);
      table.filter_within(xs.data(), ys.data(), ids.data(), count, 0.0, 0.0,
                          r2, got);
      ASSERT_EQ(got, want) << to_string(isa) << " r=" << r;
      ASSERT_EQ(want.size(), r + 1);  // 0..r inclusive: <= semantics
    }
  }
}

TEST(SimdKernelTest, DispatchedEntryPointsFollowActiveIsa) {
  IsaGuard guard;
  support::Rng rng(17);
  const std::size_t words = 16;
  const auto src = random_words(words, rng);
  const auto mask = random_words(words, rng);
  std::vector<std::uint64_t> dst_a(words);
  const std::size_t want =
      kernels(Isa::kScalar)
          .subtract_and_count(dst_a.data(), src.data(), mask.data(), words);
  for (const Isa isa : compiled_supported_isas()) {
    set_isa(isa);
    std::vector<std::uint64_t> dst_b(words);
    EXPECT_EQ(subtract_and_count(dst_b.data(), src.data(), mask.data(), words),
              want);
    EXPECT_EQ(dst_b, dst_a);
    EXPECT_EQ(intersect_count(src.data(), mask.data(), words),
              kernels(Isa::kScalar)
                  .intersect_count(src.data(), mask.data(), words));
  }
}

}  // namespace
}  // namespace bc::support::simd
