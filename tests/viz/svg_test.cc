// Tests for the SVG builder.

#include "viz/svg.h"

#include <fstream>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::viz {
namespace {

using geometry::Box2;
using geometry::Point2;

SvgCanvas unit_canvas() {
  return SvgCanvas(Box2{{0.0, 0.0}, {100.0, 50.0}}, 200.0);
}

TEST(SvgTest, ValidatesConstruction) {
  EXPECT_THROW(SvgCanvas(Box2{{0.0, 0.0}, {0.0, 10.0}}),
               support::PreconditionError);
  EXPECT_THROW(SvgCanvas(Box2{{0.0, 0.0}, {10.0, 10.0}}, 0.0),
               support::PreconditionError);
}

TEST(SvgTest, EmptyDocumentIsWellFormed) {
  const std::string svg = unit_canvas().render();
  EXPECT_NE(svg.find("<?xml"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Aspect ratio preserved: 100x50 world at 200 px wide -> 100 px tall.
  EXPECT_NE(svg.find("height=\"100.00\""), std::string::npos);
}

TEST(SvgTest, WorldToScreenFlipsY) {
  SvgCanvas canvas = unit_canvas();
  // World origin (bottom-left) must land at screen bottom-left (0, 100).
  Style style;
  canvas.add_circle({0.0, 0.0}, 1.0, style);
  const std::string svg = canvas.render();
  EXPECT_NE(svg.find("cx=\"0.00\" cy=\"100.00\""), std::string::npos);
}

TEST(SvgTest, ElementsAreEmitted) {
  SvgCanvas canvas = unit_canvas();
  Style style;
  style.stroke = "red";
  style.dash = "4,2";
  canvas.add_circle({50.0, 25.0}, 5.0, style);
  canvas.add_line({0.0, 0.0}, {100.0, 50.0}, style);
  canvas.add_polyline({{0.0, 0.0}, {10.0, 10.0}, {20.0, 0.0}}, style, true);
  canvas.add_marker({30.0, 30.0}, 4.0, style);
  canvas.add_text({5.0, 45.0}, "label", 10.0, "blue");
  const std::string svg = canvas.render();
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find(">label</text>"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray=\"4,2\""), std::string::npos);
  EXPECT_NE(svg.find("stroke=\"red\""), std::string::npos);
}

TEST(SvgTest, PolylineNeedsTwoPoints) {
  SvgCanvas canvas = unit_canvas();
  canvas.add_polyline({{1.0, 1.0}}, Style{});
  EXPECT_EQ(canvas.render().find("<polyline"), std::string::npos);
}

TEST(SvgTest, TagsAreBalanced) {
  SvgCanvas canvas = unit_canvas();
  canvas.add_text({1.0, 1.0}, "x", 8.0);
  canvas.add_circle({2.0, 2.0}, 1.0, Style{});
  const std::string svg = canvas.render();
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = svg.find(needle); pos != std::string::npos;
         pos = svg.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("<svg"), 1u);
  EXPECT_EQ(count("</svg>"), 1u);
  EXPECT_EQ(count("<text"), count("</text>"));
}

TEST(SvgTest, EscapesXmlEntities) {
  EXPECT_EQ(escape_xml("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
  SvgCanvas canvas = unit_canvas();
  canvas.add_text({1.0, 1.0}, "<tag>&", 8.0);
  const std::string svg = canvas.render();
  EXPECT_EQ(svg.find("<tag>"), std::string::npos);
  EXPECT_NE(svg.find("&lt;tag&gt;&amp;"), std::string::npos);
}

TEST(SvgTest, WritesFiles) {
  SvgCanvas canvas = unit_canvas();
  canvas.add_circle({1.0, 1.0}, 0.5, Style{});
  const std::string path = ::testing::TempDir() + "/bc_svg_test.svg";
  ASSERT_TRUE(canvas.write_file(path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, canvas.render());
  EXPECT_FALSE(canvas.write_file("/nonexistent-dir/x.svg"));
}

}  // namespace
}  // namespace bc::viz
