// Tests for the plan renderer.

#include "viz/plan_render.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tour/planner.h"

namespace bc::viz {
namespace {

net::Deployment sample_deployment() {
  support::Rng rng(5);
  net::FieldSpec spec;
  return net::uniform_random_deployment(30, spec, rng);
}

TEST(PlanRenderTest, RendersAllPrimitives) {
  const net::Deployment d = sample_deployment();
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto plan = tour::plan_bc(d, config);
  const std::string svg = render_plan(d, plan).render();
  EXPECT_NE(svg.find("<line"), std::string::npos);      // sensor markers
  EXPECT_NE(svg.find("<polygon"), std::string::npos);   // closed tour
  EXPECT_NE(svg.find("<circle"), std::string::npos);    // anchors/depot
  EXPECT_NE(svg.find(">BC</text>"), std::string::npos);  // label
}

TEST(PlanRenderTest, OptionsSuppressLayers) {
  const net::Deployment d = sample_deployment();
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto plan = tour::plan_bc(d, config);
  PlanRenderOptions options;
  options.draw_bundle_disks = false;
  options.draw_sensors = false;
  options.draw_depot = false;
  const std::string svg = render_plan(d, plan, options).render();
  // Without markers/disks, the only lines are the tour polygon & anchors.
  EXPECT_EQ(svg.find("stroke-dasharray=\"3,3\""), std::string::npos);
}

TEST(PlanRenderTest, PairOverlayShowsBothTours) {
  const net::Deployment d = sample_deployment();
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto bc = tour::plan_bc(d, config);
  const auto opt = tour::plan_bc_opt(d, config);
  const std::string svg = render_plan_pair(d, bc, opt).render();
  EXPECT_NE(svg.find("BC (solid) vs BC-OPT (dashed)"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray=\"7,5\""), std::string::npos);
  // Two closed tours rendered.
  std::size_t polygons = 0;
  for (std::size_t pos = svg.find("<polygon"); pos != std::string::npos;
       pos = svg.find("<polygon", pos + 1)) {
    ++polygons;
  }
  EXPECT_EQ(polygons, 2u);
}

}  // namespace
}  // namespace bc::viz
