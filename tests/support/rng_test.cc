// Tests for the deterministic RNG (SplitMix64 / xoshiro256++).

#include "support/rng.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::support {
namespace {

TEST(SplitMix64Test, MatchesReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation (Vigna).
  SplitMix64 mixer(1234567);
  EXPECT_EQ(mixer.next(), 6457827717110365317ULL);
  EXPECT_EQ(mixer.next(), 3203168211198807973ULL);
  EXPECT_EQ(mixer.next(), 9817491932198370423ULL);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(RngTest, BelowCoversFullRangeWithoutBias) {
  Rng rng(5);
  std::array<int, 10> histogram{};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[rng.below(10)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.below(1), 0u);
  }
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(23);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(29);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(RngTest, ChanceExtremesAreDeterministic) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(rng.chance(0.0));
    ASSERT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequencyMatchesProbability) {
  Rng rng(37);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace bc::support
