// Tests for the table/CSV printer.

#include "support/table.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::support {
namespace {

TEST(TableTest, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), PreconditionError);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Both value cells start at the same column.
  const auto line_start_of = [&](const std::string& needle) {
    const auto pos = out.find(needle);
    EXPECT_NE(pos, std::string::npos) << needle;
    const auto line_begin = out.rfind('\n', pos);
    return pos - (line_begin == std::string::npos ? 0 : line_begin + 1);
  };
  EXPECT_EQ(line_start_of("1"), line_start_of("22"));
}

TEST(TableTest, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(TableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(TableTest, CountsRowsAndColumns) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace bc::support
