// Tests for the deterministic thread-pool layer.

#include "support/parallel.h"

#include <gtest/gtest.h>

#include "support/require.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bc::support {
namespace {

// Restores the automatic thread count after each test so the pinned counts
// used here never leak into the rest of the binary.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { set_thread_count(0); }
};

TEST_F(ParallelTest, ThreadCountIsAtLeastOne) {
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ParallelTest, RejectsAbsurdThreadCounts) {
  // A negative CLI value cast to size_t must fail loudly, not try to
  // spawn billions of threads.
  EXPECT_THROW(set_thread_count(static_cast<std::size_t>(-1)),
               PreconditionError);
  EXPECT_THROW(set_thread_count(100000), PreconditionError);
  set_thread_count(1024);  // the documented ceiling is accepted
  EXPECT_EQ(thread_count(), 1024u);
}

TEST_F(ParallelTest, SetThreadCountOverridesAndZeroRestoresAuto) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ParallelTest, EmptyRangeNeverInvokesTheBody) {
  for (const std::size_t threads : {1u, 4u}) {
    set_thread_count(threads);
    std::atomic<int> calls{0};
    parallel_for(0, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t grain : {1u, 7u, 64u, 5000u}) {
      set_thread_count(threads);
      std::vector<int> hits(kN, 0);
      parallel_for(kN, grain, [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, kN);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                static_cast<int>(kN))
          << "threads=" << threads << " grain=" << grain;
      EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                              [](int h) { return h == 1; }));
    }
  }
}

TEST_F(ParallelTest, ZeroGrainPicksAnAutomaticChunkSize) {
  set_thread_count(4);
  std::vector<int> hits(100, 0);
  parallel_for(100, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_TRUE(
      std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST_F(ParallelTest, GrainLargerThanRangeMakesASingleChunk) {
  set_thread_count(8);
  std::atomic<int> chunks{0};
  parallel_for(10, 1000, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++chunks;
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST_F(ParallelTest, ExceptionsPropagateToTheCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    set_thread_count(threads);
    EXPECT_THROW(
        parallel_for(100, 1,
                     [&](std::size_t begin, std::size_t) {
                       if (begin == 37) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST_F(ParallelTest, LowestChunkExceptionWinsAndAllChunksStillRun) {
  for (const std::size_t threads : {1u, 4u}) {
    set_thread_count(threads);
    std::vector<int> hits(100, 0);
    try {
      parallel_for(100, 1, [&](std::size_t begin, std::size_t) {
        ++hits[begin];
        if (begin == 20) throw std::runtime_error("chunk 20");
        if (begin == 80) throw std::logic_error("chunk 80");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 20");
    }
    // No cancellation: the error path has the same side effects at every
    // thread count.
    EXPECT_TRUE(
        std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  }
}

TEST_F(ParallelTest, PoolIsUsableAfterAnException) {
  set_thread_count(4);
  EXPECT_THROW(parallel_for(8, 1,
                            [](std::size_t, std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  parallel_for(8, 1, [&](std::size_t begin, std::size_t) { sum += begin; });
  EXPECT_EQ(sum.load(), 28u);
}

TEST_F(ParallelTest, ParallelMapReturnsResultsInIndexOrder) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    set_thread_count(threads);
    const std::vector<std::size_t> out = parallel_map<std::size_t>(
        257, 3, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i);
    }
  }
}

TEST_F(ParallelTest, NestedSectionsRunInlineWithoutDeadlock) {
  set_thread_count(4);
  std::vector<std::size_t> totals(16, 0);
  parallel_for(16, 1, [&](std::size_t begin, std::size_t) {
    EXPECT_TRUE(in_parallel_worker());
    const auto inner = parallel_map<std::size_t>(
        32, 4, [](std::size_t i) { return i; });
    totals[begin] = std::accumulate(inner.begin(), inner.end(), std::size_t{0});
  });
  for (const std::size_t total : totals) {
    EXPECT_EQ(total, 32u * 31u / 2u);
  }
}

TEST_F(ParallelTest, CallerThreadIsNotAWorkerOutsideSections) {
  EXPECT_FALSE(in_parallel_worker());
  set_thread_count(2);
  parallel_for(4, 1, [](std::size_t, std::size_t) {
    EXPECT_TRUE(in_parallel_worker());
  });
  EXPECT_FALSE(in_parallel_worker());
}

TEST_F(ParallelTest, ThreadsOptionAppliesOnlyWhenNonZero) {
  set_thread_count(5);
  ThreadsOption keep{};  // 0 = leave untouched
  keep.apply();
  EXPECT_EQ(thread_count(), 5u);
  ThreadsOption two{2};
  two.apply();
  EXPECT_EQ(thread_count(), 2u);
}

TEST_F(ParallelTest, SingleThreadModeStaysOnTheCallingThread) {
  set_thread_count(1);
  const auto caller = std::this_thread::get_id();
  parallel_for(64, 4, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace bc::support
