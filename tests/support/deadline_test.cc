// Tests for budgets, budget meters, and cooperative cancellation.

#include "support/deadline.h"

#include <gtest/gtest.h>

namespace bc::support {
namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget budget;
  EXPECT_TRUE(budget.unlimited());
  budget.node_cap = 10;
  EXPECT_FALSE(budget.unlimited());
  budget.node_cap = 0;
  budget.deadline_s = 1.0;
  EXPECT_FALSE(budget.unlimited());
  budget.deadline_s = 0.0;
  budget.cancel.request_cancel();
  EXPECT_FALSE(budget.unlimited());
}

TEST(BudgetMeterTest, UnlimitedMeterOnlyCounts) {
  BudgetMeter meter;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(meter.charge());
  }
  EXPECT_EQ(meter.nodes_used(), 5000u);
  EXPECT_FALSE(meter.exhausted());
  EXPECT_EQ(meter.trip(), BudgetTrip::kNone);
}

TEST(BudgetMeterTest, NodeCapTripsAtExactUnitCount) {
  Budget budget;
  budget.node_cap = 5;
  BudgetMeter meter(budget);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(meter.charge()) << "charge " << i;
  }
  EXPECT_FALSE(meter.charge());  // the 6th unit exceeds the cap of 5
  EXPECT_EQ(meter.trip(), BudgetTrip::kNodeCap);
}

TEST(BudgetMeterTest, BulkChargesCountEveryUnit) {
  Budget budget;
  budget.node_cap = 100;
  BudgetMeter meter(budget);
  EXPECT_TRUE(meter.charge(100));
  EXPECT_FALSE(meter.charge(1));
  EXPECT_EQ(meter.nodes_used(), 101u);
}

TEST(BudgetMeterTest, TripIsSticky) {
  Budget budget;
  budget.node_cap = 1;
  BudgetMeter meter(budget);
  EXPECT_TRUE(meter.charge());
  EXPECT_FALSE(meter.charge());
  // Still exhausted — and still counting, for diagnostics.
  EXPECT_FALSE(meter.charge(10));
  EXPECT_FALSE(meter.check());
  EXPECT_TRUE(meter.exhausted());
  EXPECT_EQ(meter.nodes_used(), 12u);
  EXPECT_EQ(meter.trip(), BudgetTrip::kNodeCap);
}

TEST(BudgetMeterTest, CancellationTripsChargeAndCheck) {
  Budget budget;
  BudgetMeter charged(budget);
  EXPECT_TRUE(charged.charge());
  budget.cancel.request_cancel();  // copies share the flag
  EXPECT_FALSE(charged.charge());
  EXPECT_EQ(charged.trip(), BudgetTrip::kCancelled);

  BudgetMeter checked(budget);
  EXPECT_FALSE(checked.check());
  EXPECT_EQ(checked.trip(), BudgetTrip::kCancelled);
  EXPECT_EQ(checked.nodes_used(), 0u);  // check() never counts work
}

TEST(BudgetMeterTest, ExpiredDeadlineTripsWithinOneStride) {
  Budget budget;
  budget.deadline_s = 1e-9;  // expired by the time we first poll
  BudgetMeter meter(budget);
  std::size_t charges = 0;
  while (meter.charge()) {
    ++charges;
    ASSERT_LE(charges, kClockPollStride) << "deadline overshot the stride";
  }
  EXPECT_EQ(meter.trip(), BudgetTrip::kDeadline);
  // check() sees an expired deadline immediately, without a stride.
  BudgetMeter fresh(budget);
  EXPECT_FALSE(fresh.check());
  EXPECT_EQ(fresh.trip(), BudgetTrip::kDeadline);
}

TEST(BudgetMeterTest, GenerousDeadlineDoesNotTrip) {
  Budget budget;
  budget.deadline_s = 3600.0;
  BudgetMeter meter(budget);
  for (std::size_t i = 0; i < 3 * kClockPollStride; ++i) {
    ASSERT_TRUE(meter.charge());
  }
  EXPECT_TRUE(meter.check());
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.request_cancel();
  EXPECT_TRUE(b.cancelled());
  // Cancellation is sticky and idempotent.
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
}

TEST(BudgetTripTest, StringsAndTripDescriptions) {
  EXPECT_EQ(to_string(BudgetTrip::kNone), "none");
  EXPECT_EQ(to_string(BudgetTrip::kNodeCap), "node-cap");
  EXPECT_EQ(to_string(BudgetTrip::kDeadline), "deadline");
  EXPECT_EQ(to_string(BudgetTrip::kCancelled), "cancelled");

  Budget budget;
  budget.node_cap = 2;
  BudgetMeter meter(budget);
  while (meter.charge()) {
  }
  const std::string description = describe_trip(meter);
  EXPECT_NE(description.find("node-cap"), std::string::npos);
  EXPECT_NE(description.find("3"), std::string::npos);  // units counted
}

}  // namespace
}  // namespace bc::support
