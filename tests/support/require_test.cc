// Tests for the contract-check helpers.

#include "support/require.h"

#include <gtest/gtest.h>

namespace bc::support {
namespace {

TEST(RequireTest, PassingConditionIsSilent) {
  EXPECT_NO_THROW(require(true, "never fires"));
  EXPECT_NO_THROW(ensure(true, "never fires"));
}

TEST(RequireTest, FailureThrowsPreconditionError) {
  EXPECT_THROW(require(false, "boom"), PreconditionError);
}

TEST(RequireTest, EnsureFailureThrowsInvariantError) {
  EXPECT_THROW(ensure(false, "boom"), InvariantError);
}

TEST(RequireTest, MessageCarriesLocationAndText) {
  try {
    require(false, "the-reason");
    FAIL() << "require must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the-reason"), std::string::npos);
    EXPECT_NE(what.find("require_test.cc"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(RequireTest, ErrorTypesAreDistinct) {
  // InvariantError signals a library bug, PreconditionError caller misuse;
  // they must not share a catch handler accidentally.
  EXPECT_FALSE((std::is_base_of_v<PreconditionError, InvariantError>));
  EXPECT_FALSE((std::is_base_of_v<InvariantError, PreconditionError>));
}

}  // namespace
}  // namespace bc::support
