// Tests for the crash-safe file helpers backing checkpoint persistence.

#include "support/atomic_file.h"

#include <string>

#include <gtest/gtest.h>

namespace bc::support {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE 802.3 check value every CRC-32 implementation must hit.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  // Sensitive to every byte, including NULs.
  EXPECT_NE(crc32(std::string("a\0b", 3)), crc32(std::string("ab", 2)));
}

TEST(AtomicFileTest, WritesAndReadsBack) {
  const std::string path = ::testing::TempDir() + "/bc_atomic_rt.txt";
  const std::string contents = "line one\nline two\n";
  const auto wrote = write_file_atomic(path, contents);
  ASSERT_TRUE(wrote.has_value()) << describe(wrote.fault());
  EXPECT_TRUE(file_exists(path));
  const auto read = read_file(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read.value(), contents);
}

TEST(AtomicFileTest, OverwriteReplacesWholeFile) {
  const std::string path = ::testing::TempDir() + "/bc_atomic_ow.txt";
  ASSERT_TRUE(write_file_atomic(path, "a long first version\n").has_value());
  ASSERT_TRUE(write_file_atomic(path, "short\n").has_value());
  const auto read = read_file(path);
  ASSERT_TRUE(read.has_value());
  // rename(2) replaced the file; no stale suffix of the longer version.
  EXPECT_EQ(read.value(), "short\n");
}

TEST(AtomicFileTest, EmptyAndBinaryContents) {
  const std::string path = ::testing::TempDir() + "/bc_atomic_bin.txt";
  ASSERT_TRUE(write_file_atomic(path, "").has_value());
  EXPECT_EQ(read_file(path).value(), "");
  const std::string binary("\x00\x01\xff\n\r\x7f", 6);
  ASSERT_TRUE(write_file_atomic(path, binary).has_value());
  EXPECT_EQ(read_file(path).value(), binary);
}

TEST(AtomicFileTest, FailuresReportInvalidInputWithPath) {
  const auto wrote = write_file_atomic("/no/such/dir/file.txt", "x");
  ASSERT_FALSE(wrote.has_value());
  EXPECT_EQ(wrote.fault().kind, FaultKind::kInvalidInput);
  EXPECT_NE(wrote.fault().message.find("/no/such/dir"), std::string::npos);

  const auto read = read_file("/no/such/file.txt");
  ASSERT_FALSE(read.has_value());
  EXPECT_EQ(read.fault().kind, FaultKind::kInvalidInput);
  EXPECT_FALSE(file_exists("/no/such/file.txt"));
}

}  // namespace
}  // namespace bc::support
