// Tests for RunningStat / percentile / formatting.

#include "support/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::support {
namespace {

TEST(RunningStatTest, EmptyStateIsReported) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
  EXPECT_THROW(s.max(), PreconditionError);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance of this classic set is 4; sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesSequentialAccumulation) {
  Rng rng(3);
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(3.0, 7.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmptySidesIsIdentity) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(RunningStatTest, Ci95ShrinksWithSamples) {
  Rng rng(5);
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> samples{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0 / 3.0), 20.0);
}

TEST(PercentileTest, UnsortedInputIsHandled) {
  const std::vector<double> samples{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 25.0);
}

TEST(PercentileTest, RejectsBadArguments) {
  const std::vector<double> samples{1.0};
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile(samples, -0.1), PreconditionError);
  EXPECT_THROW(percentile(samples, 1.1), PreconditionError);
}

TEST(FormatMeanCiTest, RendersMeanAndHalfWidth) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  const std::string text = format_mean_ci(s, 2);
  EXPECT_NE(text.find("2.00"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

}  // namespace
}  // namespace bc::support
