// Tests for the CLI flag parser.

#include "support/cli.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::support {
namespace {

CliFlags make_flags() {
  CliFlags flags("test program");
  flags.define_int("nodes", 100, "node count");
  flags.define_double("radius", 20.0, "bundle radius");
  flags.define_string("algo", "bc", "algorithm name");
  flags.define_bool("verbose", false, "chatty output");
  return flags;
}

bool parse(CliFlags& flags, std::vector<const char*> args,
           std::string* errors = nullptr) {
  args.insert(args.begin(), "prog");
  std::ostringstream err;
  const bool ok =
      flags.parse(static_cast<int>(args.size()), args.data(), err);
  if (errors != nullptr) *errors = err.str();
  return ok;
}

TEST(CliFlagsTest, DefaultsApplyWithoutArguments) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_EQ(flags.get_int("nodes"), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("radius"), 20.0);
  EXPECT_EQ(flags.get_string("algo"), "bc");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlagsTest, EqualsFormParses) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--nodes=42", "--radius=3.5", "--algo=sc"}));
  EXPECT_EQ(flags.get_int("nodes"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("radius"), 3.5);
  EXPECT_EQ(flags.get_string("algo"), "sc");
}

TEST(CliFlagsTest, SpaceFormParses) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--nodes", "7"}));
  EXPECT_EQ(flags.get_int("nodes"), 7);
}

TEST(CliFlagsTest, BareBooleanSetsTrue) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlagsTest, ExplicitBooleanValues) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {"--verbose=true"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
  CliFlags flags2 = make_flags();
  ASSERT_TRUE(parse(flags2, {"--verbose=off"}));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(CliFlagsTest, UnknownFlagFails) {
  CliFlags flags = make_flags();
  std::string errors;
  EXPECT_FALSE(parse(flags, {"--bogus=1"}, &errors));
  EXPECT_NE(errors.find("unknown flag"), std::string::npos);
}

TEST(CliFlagsTest, MalformedNumberFails) {
  CliFlags flags = make_flags();
  std::string errors;
  EXPECT_FALSE(parse(flags, {"--nodes=abc"}, &errors));
  EXPECT_NE(errors.find("expects an integer"), std::string::npos);
}

TEST(CliFlagsTest, MissingValueFails) {
  CliFlags flags = make_flags();
  std::string errors;
  EXPECT_FALSE(parse(flags, {"--nodes"}, &errors));
  EXPECT_NE(errors.find("missing a value"), std::string::npos);
}

TEST(CliFlagsTest, PositionalArgumentFails) {
  CliFlags flags = make_flags();
  EXPECT_FALSE(parse(flags, {"oops"}));
}

TEST(CliFlagsTest, HelpShortCircuits) {
  CliFlags flags = make_flags();
  std::string errors;
  EXPECT_TRUE(parse(flags, {"--help"}, &errors));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(errors.find("--nodes"), std::string::npos);
  EXPECT_NE(errors.find("test program"), std::string::npos);
}

TEST(CliFlagsTest, TypeMismatchAccessThrows) {
  CliFlags flags = make_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_THROW(flags.get_double("nodes"), PreconditionError);
  EXPECT_THROW(flags.get_int("never-defined"), PreconditionError);
}

TEST(CliFlagsTest, DuplicateDefinitionThrows) {
  CliFlags flags = make_flags();
  EXPECT_THROW(flags.define_int("nodes", 1, "dup"), PreconditionError);
}

}  // namespace
}  // namespace bc::support
