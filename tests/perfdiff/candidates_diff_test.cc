// Differential suite for hash-set candidate enumeration and the bitset
// domination prune (`ctest -L perf-diff`): an in-test reference rebuilds
// the canonical result the slow way — `std::set` dedup (lexicographic
// iteration order) and an O(m^2) `std::includes` domination scan with the
// pinned (size desc, lexicographic asc) survivor order — and
// `enumerate_candidates` must match it exactly at BC_THREADS = 1, 2 and 8.

#include "bundle/candidates.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundlecharge.h"
#include "geometry/circle.h"
#include "net/deployment.h"
#include "net/spatial_index.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Point2;
using MemberLists = std::vector<std::vector<net::SensorId>>;

// Old-style enumeration: singletons plus both radius-r circles through
// every sensor pair within 2r, deduplicated through an ordered set.
MemberLists reference_candidates(const net::Deployment& deployment, double r,
                                 bool prune_dominated) {
  const auto positions = deployment.positions();
  const std::size_t n = deployment.size();
  std::set<std::vector<net::SensorId>> member_sets;
  for (net::SensorId id = 0; id < n; ++id) member_sets.insert({id});
  if (r > 0.0 && n > 1) {
    const net::SpatialIndex index(positions, std::max(r, 1e-9));
    for (std::size_t i = 0; i < n; ++i) {
      for (const net::SensorId j : index.within(positions[i], 2.0 * r)) {
        if (j <= i) continue;
        const auto centers =
            geometry::circles_through_pair(positions[i], positions[j], r);
        if (!centers.has_value()) continue;
        for (const Point2 center : {centers->first, centers->second}) {
          const auto members =
              index.within(center, r * (1.0 + 1e-9) + 1e-12);
          if (members.size() >= 2) member_sets.insert(members);
        }
      }
    }
  }
  MemberLists sets(member_sets.begin(), member_sets.end());
  if (prune_dominated) {
    std::stable_sort(sets.begin(), sets.end(),
                     [](const auto& a, const auto& b) {
                       return a.size() > b.size();
                     });
    MemberLists kept;
    for (const auto& candidate : sets) {
      bool dominated = false;
      for (const auto& other : kept) {
        if (other.size() > candidate.size() &&
            std::includes(other.begin(), other.end(), candidate.begin(),
                          candidate.end())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) kept.push_back(candidate);
    }
    sets = std::move(kept);
  }
  return sets;
}

MemberLists enumerated_members(const net::Deployment& deployment, double r,
                               const CandidateOptions& options) {
  MemberLists out;
  for (const Bundle& b : enumerate_candidates(deployment, r, options)) {
    out.push_back(b.members);
  }
  return out;
}

TEST(CandidatesDifferentialTest, MatchesSetBasedReferenceAcrossThreadCounts) {
  for (const std::size_t n : {10, 40, 120}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      support::Rng rng(6000 + 7 * n + seed);
      const auto deployment = net::uniform_random_deployment(
          n, core::icdcs2019_simulation_profile().field, rng);
      for (const double r : {25.0, 60.0}) {
        for (const bool prune : {false, true}) {
          const MemberLists expected =
              reference_candidates(deployment, r, prune);
          CandidateOptions options;
          options.prune_dominated = prune;
          for (const std::size_t threads : {1, 2, 8}) {
            support::set_thread_count(threads);
            ASSERT_EQ(enumerated_members(deployment, r, options), expected)
                << "n=" << n << " seed=" << seed << " r=" << r
                << " prune=" << prune << " threads=" << threads;
          }
        }
      }
    }
  }
  support::set_thread_count(1);
}

}  // namespace
}  // namespace bc::bundle
