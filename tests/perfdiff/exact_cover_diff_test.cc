// Differential suite for the arena-backed exact-cover search (`ctest -L
// perf-diff`): a deliberately naive in-test reference implements the
// pinned search semantics — greedy incumbent with bound `|greedy| + 1`,
// branch on the lowest uncovered sensor, branch order (covered count desc,
// candidate id asc), one node charged at every entry, per-call node cap
// checked as `nodes > cap` — and the production search must return
// byte-identical covers (and, on serial budgeted runs, identical node
// counts) on hundreds of seeded instances at BC_THREADS = 1, 2 and 8,
// including budget-tripped node-cap anytime cutoffs.

#include "bundle/exact_cover.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "core/bundlecharge.h"
#include "net/deployment.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using MemberLists = std::vector<std::vector<net::SensorId>>;

struct RefResult {
  MemberLists cover;  // first-wins partition, like the production search
  bool optimal = true;
  std::size_t nodes = 0;
};

// First-wins partition of the chosen candidates (the production
// `materialise` keeps a shared sensor in the earliest bundle).
MemberLists partition(std::span<const Bundle> candidates,
                      const std::vector<std::uint32_t>& chosen,
                      std::size_t n) {
  std::vector<char> taken(n, 0);
  MemberLists out;
  for (const std::uint32_t c : chosen) {
    std::vector<net::SensorId> members;
    for (const net::SensorId id : candidates[c].members) {
      if (!taken[id]) {
        taken[id] = 1;
        members.push_back(id);
      }
    }
    out.push_back(std::move(members));
  }
  return out;
}

MemberLists bundle_members(std::span<const Bundle> bundles) {
  MemberLists out;
  for (const Bundle& b : bundles) out.push_back(b.members);
  return out;
}

// Naive reference branch & bound: per-node set copies, full rescans, no
// inverted index — slow on purpose, pinned to the documented semantics.
RefResult reference_cover(const net::Deployment& deployment,
                          std::span<const Bundle> candidates,
                          std::size_t max_nodes) {
  const std::size_t n = deployment.size();
  const std::vector<Bundle> incumbent = greedy_cover(deployment, candidates);
  std::size_t max_size = 1;
  for (const Bundle& b : candidates) {
    max_size = std::max(max_size, b.members.size());
  }

  std::size_t best_size = incumbent.size() + 1;
  std::vector<std::uint32_t> best;
  std::vector<std::uint32_t> chosen;
  std::size_t nodes = 0;
  bool aborted = false;

  const std::function<void(const std::vector<char>&, std::size_t)> search =
      [&](const std::vector<char>& covered, std::size_t remaining) {
        ++nodes;
        if (max_nodes != 0 && nodes > max_nodes) {
          aborted = true;
          return;
        }
        if (remaining == 0) {
          if (chosen.size() < best_size) {
            best = chosen;
            best_size = chosen.size();
          }
          return;
        }
        if (chosen.size() + (remaining + max_size - 1) / max_size >=
            best_size) {
          return;
        }
        std::size_t pivot = 0;
        while (covered[pivot]) ++pivot;
        // (covered count, candidate id) for every candidate containing the
        // pivot; sort to the pinned (count desc, id asc) order.
        std::vector<std::pair<std::size_t, std::uint32_t>> branches;
        for (std::uint32_t c = 0;
             c < static_cast<std::uint32_t>(candidates.size()); ++c) {
          const auto& members = candidates[c].members;
          if (std::find(members.begin(), members.end(),
                        static_cast<net::SensorId>(pivot)) == members.end()) {
            continue;
          }
          std::size_t count = 0;
          for (const net::SensorId id : members) count += !covered[id];
          branches.emplace_back(count, c);
        }
        std::sort(branches.begin(), branches.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first > b.first;
                    return a.second < b.second;
                  });
        for (const auto& [count, c] : branches) {
          std::vector<char> child = covered;
          std::size_t still = remaining;
          for (const net::SensorId id : candidates[c].members) {
            if (!child[id]) {
              child[id] = 1;
              --still;
            }
          }
          chosen.push_back(c);
          search(child, still);
          chosen.pop_back();
          if (aborted) return;
        }
      };
  search(std::vector<char>(n, 0), n);

  RefResult result;
  result.optimal = !aborted;
  result.nodes = nodes;
  result.cover =
      best.empty() ? bundle_members(incumbent) : partition(candidates, best, n);
  return result;
}

net::Deployment make_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return net::uniform_random_deployment(
      n, core::icdcs2019_simulation_profile().field, rng);
}

// 24 seeded instances x 3 node-cap regimes x 3 thread counts = 216
// production runs, each diffed against the serial naive reference.
// max_nodes = 3 trips essentially immediately (anytime fallback to the
// greedy incumbent), 40 trips mid-search, 0 is the unlimited parallel
// fan-out path.
TEST(ExactCoverDifferentialTest, MatchesNaiveReferenceAcrossThreadCounts) {
  constexpr double kRadius = 90.0;
  constexpr std::size_t kSizes[] = {12, 20, 28, 36};
  constexpr std::size_t kCaps[] = {0, 3, 40};
  for (const std::size_t n : kSizes) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const auto deployment = make_deployment(n, 9000 + 31 * n + seed);
      const auto candidates = enumerate_candidates(deployment, kRadius);
      for (const std::size_t cap : kCaps) {
        const RefResult expected =
            reference_cover(deployment, candidates, cap);
        ExactCoverOptions options;
        options.max_nodes = cap;
        for (const std::size_t threads : {1, 2, 8}) {
          support::set_thread_count(threads);
          const auto got =
              exact_cover_anytime(deployment, candidates, options);
          ASSERT_TRUE(got.has_value());
          const CoverSolution& solution = got.value();
          ASSERT_EQ(bundle_members(solution.bundles), expected.cover)
              << "n=" << n << " seed=" << seed << " cap=" << cap
              << " threads=" << threads;
          ASSERT_EQ(solution.optimal, expected.optimal)
              << "n=" << n << " seed=" << seed << " cap=" << cap;
          if (cap != 0) {
            // Budgeted runs stay serial, so even the node trajectory must
            // be identical. (The unlimited path fans root branches out and
            // does not count the root node, so only covers compare there.)
            ASSERT_EQ(solution.nodes_expanded, expected.nodes)
                << "n=" << n << " seed=" << seed << " cap=" << cap
                << " threads=" << threads;
          }
        }
      }
    }
  }
  support::set_thread_count(1);
}

// The optimal covers must also be genuinely minimal: no smaller cover
// exists (cross-check via the reference with the bound lowered).
TEST(ExactCoverDifferentialTest, OptimalCoversAreMinimumCardinality) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto deployment = make_deployment(18, 777 + seed);
    const auto candidates = enumerate_candidates(deployment, 110.0);
    const auto got = exact_cover_anytime(deployment, candidates, {});
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(got.value().optimal);
    const RefResult expected = reference_cover(deployment, candidates, 0);
    ASSERT_TRUE(expected.optimal);
    ASSERT_EQ(got.value().bundles.size(), expected.cover.size());
  }
}

}  // namespace
}  // namespace bc::bundle
