// Tests for deployments and workload generators.

#include "net/deployment.h"

#include <set>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::net {
namespace {

using geometry::Box2;
using geometry::Point2;

TEST(DeploymentTest, ConstructionAssignsSequentialIds) {
  Deployment d({{1.0, 1.0}, {2.0, 2.0}}, Box2{{0.0, 0.0}, {5.0, 5.0}},
               {0.0, 0.0}, 2.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.sensor(0).id, 0u);
  EXPECT_EQ(d.sensor(1).id, 1u);
  EXPECT_EQ(d.sensor(1).position, (Point2{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(d.sensor(0).demand_j, 2.0);
  EXPECT_DOUBLE_EQ(d.demand_j(), 2.0);
  EXPECT_EQ(d.positions().size(), 2u);
  EXPECT_THROW(d.sensor(2), support::PreconditionError);
}

TEST(DeploymentTest, ValidatesInputs) {
  const Box2 field{{0.0, 0.0}, {5.0, 5.0}};
  EXPECT_THROW(Deployment({}, field, {0.0, 0.0}, 2.0),
               support::PreconditionError);
  EXPECT_THROW(Deployment({{6.0, 1.0}}, field, {0.0, 0.0}, 2.0),
               support::PreconditionError);
  EXPECT_THROW(Deployment({{1.0, 1.0}}, field, {0.0, 0.0}, 0.0),
               support::PreconditionError);
}

TEST(UniformRandomDeploymentTest, StaysInFieldAndIsSeeded) {
  FieldSpec spec;
  spec.field = Box2{{100.0, 200.0}, {300.0, 500.0}};
  support::Rng rng1(42);
  const Deployment a = uniform_random_deployment(200, spec, rng1);
  EXPECT_EQ(a.size(), 200u);
  for (const Sensor& s : a.sensors()) {
    ASSERT_TRUE(spec.field.contains(s.position));
  }
  support::Rng rng2(42);
  const Deployment b = uniform_random_deployment(200, spec, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.sensor(i).position, b.sensor(i).position);
  }
  support::Rng rng3(43);
  const Deployment c = uniform_random_deployment(200, spec, rng3);
  EXPECT_NE(a.sensor(0).position, c.sensor(0).position);
}

TEST(UniformRandomDeploymentTest, CoversTheWholeField) {
  FieldSpec spec;  // 1000 x 1000 default
  support::Rng rng(7);
  const Deployment d = uniform_random_deployment(2000, spec, rng);
  // All four quadrants should be populated.
  int quadrant_counts[4] = {0, 0, 0, 0};
  for (const Sensor& s : d.sensors()) {
    const int qx = s.position.x < 500.0 ? 0 : 1;
    const int qy = s.position.y < 500.0 ? 0 : 1;
    ++quadrant_counts[qy * 2 + qx];
  }
  for (const int count : quadrant_counts) EXPECT_GT(count, 300);
}

TEST(ClusteredDeploymentTest, PointsConcentrateAroundFewSpots) {
  FieldSpec spec;
  support::Rng rng(11);
  const Deployment d = clustered_deployment(300, 3, 25.0, spec, rng);
  EXPECT_EQ(d.size(), 300u);
  for (const Sensor& s : d.sensors()) {
    ASSERT_TRUE(spec.field.contains(s.position));
  }
  // With sigma = 25 on a 1000 m field, the average pairwise distance is
  // far below the uniform expectation (~521 m).
  double sum = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      sum += geometry::distance(d.sensor(i).position, d.sensor(j).position);
      ++pairs;
    }
  }
  EXPECT_LT(sum / pairs, 450.0);
}

TEST(ClusteredDeploymentTest, ValidatesArguments) {
  FieldSpec spec;
  support::Rng rng(1);
  EXPECT_THROW(clustered_deployment(10, 0, 5.0, spec, rng),
               support::PreconditionError);
  EXPECT_THROW(clustered_deployment(10, 2, 0.0, spec, rng),
               support::PreconditionError);
  EXPECT_THROW(clustered_deployment(0, 2, 5.0, spec, rng),
               support::PreconditionError);
}

TEST(JitteredGridDeploymentTest, ZeroJitterIsALattice) {
  FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {100.0, 100.0}};
  support::Rng rng(3);
  const Deployment d = jittered_grid_deployment(16, 0.0, spec, rng);
  EXPECT_EQ(d.size(), 16u);
  // 4x4 lattice with cell 25: positions at 12.5 + 25k.
  std::set<double> xs;
  for (const Sensor& s : d.sensors()) xs.insert(s.position.x);
  EXPECT_EQ(xs.size(), 4u);
  EXPECT_DOUBLE_EQ(*xs.begin(), 12.5);
}

TEST(JitteredGridDeploymentTest, JitterStaysInField) {
  FieldSpec spec;
  support::Rng rng(5);
  const Deployment d = jittered_grid_deployment(97, 1.0, spec, rng);
  EXPECT_EQ(d.size(), 97u);
  for (const Sensor& s : d.sensors()) {
    ASSERT_TRUE(spec.field.contains(s.position));
  }
  EXPECT_THROW(jittered_grid_deployment(10, 1.5, spec, rng),
               support::PreconditionError);
}

TEST(ExplicitDeploymentTest, FieldCoversPointsAndDepot) {
  const Deployment d =
      explicit_deployment({{5.0, 5.0}, {10.0, 2.0}}, {-1.0, 0.0}, 0.5);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.field().contains({-1.0, 0.0}));
  EXPECT_TRUE(d.field().contains({10.0, 2.0}));
  EXPECT_EQ(d.depot(), (Point2{-1.0, 0.0}));
}

TEST(TestbedDeploymentTest, MatchesSectionSeven) {
  const Deployment d = testbed_deployment();
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.sensor(0).position, (Point2{1.0, 1.0}));
  EXPECT_EQ(d.sensor(5).position, (Point2{4.0, 1.0}));
  EXPECT_DOUBLE_EQ(d.demand_j(), 0.004);
  EXPECT_DOUBLE_EQ(d.field().width(), 5.0);
  EXPECT_DOUBLE_EQ(d.field().height(), 5.0);
}

}  // namespace
}  // namespace bc::net
