// Tests for heterogeneous per-sensor demands (Eq. 3's delta_j).

#include <gtest/gtest.h>

#include "net/deployment.h"
#include "sim/evaluate.h"
#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::net {
namespace {

using geometry::Box2;
using geometry::Point2;

TEST(HeterogeneousDemandTest, ConstructorStoresPerSensorDemands) {
  const Deployment d({{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}},
                     Box2{{0.0, 0.0}, {5.0, 5.0}}, {0.0, 0.0},
                     std::vector<double>{1.0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(d.sensor(0).demand_j, 1.0);
  EXPECT_DOUBLE_EQ(d.sensor(1).demand_j, 2.0);
  EXPECT_DOUBLE_EQ(d.sensor(2).demand_j, 0.5);
  EXPECT_DOUBLE_EQ(d.demand_j(), 2.0);  // max
  EXPECT_FALSE(d.uniform_demand());
}

TEST(HeterogeneousDemandTest, UniformConstructorReportsUniform) {
  const Deployment d({{1.0, 1.0}}, Box2{{0.0, 0.0}, {5.0, 5.0}}, {0.0, 0.0},
                     2.0);
  EXPECT_TRUE(d.uniform_demand());
  EXPECT_DOUBLE_EQ(d.demand_j(), 2.0);
}

TEST(HeterogeneousDemandTest, ValidatesDemands) {
  const Box2 field{{0.0, 0.0}, {5.0, 5.0}};
  EXPECT_THROW(Deployment({{1.0, 1.0}}, field, {0.0, 0.0},
                          std::vector<double>{0.0}),
               support::PreconditionError);
  EXPECT_THROW(Deployment({{1.0, 1.0}, {2.0, 2.0}}, field, {0.0, 0.0},
                          std::vector<double>{1.0}),
               support::PreconditionError);
}

TEST(HeterogeneousDemandTest, WithDemandsRebindsAnyDeployment) {
  support::Rng rng(3);
  FieldSpec spec;
  const Deployment base = uniform_random_deployment(10, spec, rng);
  std::vector<double> demands(10);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    demands[i] = 0.5 + static_cast<double>(i);
  }
  const Deployment hetero = with_demands(base, demands);
  EXPECT_EQ(hetero.size(), base.size());
  EXPECT_EQ(hetero.sensor(3).position, base.sensor(3).position);
  EXPECT_DOUBLE_EQ(hetero.sensor(3).demand_j, 3.5);
  EXPECT_FALSE(hetero.uniform_demand());
}

TEST(HeterogeneousDemandTest, AllPlannersStayFeasible) {
  support::Rng rng(5);
  FieldSpec spec;
  const Deployment base = uniform_random_deployment(50, spec, rng);
  std::vector<double> demands;
  for (std::size_t i = 0; i < base.size(); ++i) {
    demands.push_back(rng.uniform(0.5, 6.0));
  }
  const Deployment d = with_demands(base, demands);
  tour::PlannerConfig config;
  config.bundle_radius = 50.0;
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt, tour::Algorithm::kTspn}) {
    const auto plan = tour::plan_charging_tour(d, algorithm, config);
    ASSERT_TRUE(tour::plan_is_partition(d, plan)) << tour::to_string(algorithm);
    for (const auto policy :
         {sim::SchedulePolicy::kIsolated, sim::SchedulePolicy::kCumulative,
          sim::SchedulePolicy::kOptimalLp}) {
      sim::EvaluationConfig eval;
      eval.policy = policy;
      ASSERT_TRUE(sim::plan_is_feasible(d, plan, eval))
          << tour::to_string(algorithm) << "/" << sim::to_string(policy);
    }
  }
}

TEST(HeterogeneousDemandTest, StopTimeTracksTheBindingSensor) {
  // Two sensors at equal distance: the one with triple demand dictates
  // the isolated stop time.
  const Deployment d({{10.0, 0.0}, {-10.0, 0.0}},
                     Box2{{-20.0, -20.0}, {20.0, 20.0}}, {0.0, 0.0},
                     std::vector<double>{1.0, 3.0});
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const tour::Stop stop{{0.0, 0.0}, {0, 1}};
  EXPECT_DOUBLE_EQ(tour::isolated_stop_time_s(d, stop, model),
                   model.charge_time_s(10.0, 3.0));
}

TEST(HeterogeneousDemandTest, LpExploitsLowDemandSensors) {
  // With the far sensor's demand tiny, the LP schedule should spend less
  // total time than with uniform high demand.
  support::Rng rng(9);
  FieldSpec spec;
  const Deployment base = uniform_random_deployment(30, spec, rng);
  std::vector<double> low(base.size(), 2.0);
  for (std::size_t i = 0; i < low.size(); i += 2) low[i] = 0.2;
  const Deployment mixed = with_demands(base, low);

  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto plan_uniform = tour::plan_bc(base, config);
  const auto plan_mixed = tour::plan_bc(mixed, config);
  sim::EvaluationConfig eval;
  eval.policy = sim::SchedulePolicy::kOptimalLp;
  const double t_uniform =
      sim::evaluate_plan(base, plan_uniform, eval).charge_time_s;
  const double t_mixed =
      sim::evaluate_plan(mixed, plan_mixed, eval).charge_time_s;
  EXPECT_LT(t_mixed, t_uniform);
}

}  // namespace
}  // namespace bc::net
