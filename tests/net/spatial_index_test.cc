// Tests for the uniform-grid spatial index, including property sweeps
// against a brute-force scan.

#include "net/spatial_index.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::net {
namespace {

using geometry::Point2;

std::vector<SensorId> brute_within(const std::vector<Point2>& pts,
                                   Point2 query, double radius) {
  std::vector<SensorId> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (geometry::distance(pts[i], query) <= radius) {
      out.push_back(static_cast<SensorId>(i));
    }
  }
  return out;
}

TEST(SpatialIndexTest, ValidatesConstruction) {
  const std::vector<Point2> pts{{1.0, 1.0}};
  EXPECT_THROW(SpatialIndex({}, 1.0), support::PreconditionError);
  EXPECT_THROW(SpatialIndex(pts, 0.0), support::PreconditionError);
}

TEST(SpatialIndexTest, FindsExactAndBoundaryMatches) {
  const std::vector<Point2> pts{{0.0, 0.0}, {3.0, 0.0}, {10.0, 10.0}};
  const SpatialIndex index(pts, 2.0);
  EXPECT_EQ(index.within({0.0, 0.0}, 3.0), (std::vector<SensorId>{0, 1}));
  EXPECT_EQ(index.within({0.0, 0.0}, 2.9), (std::vector<SensorId>{0}));
  EXPECT_EQ(index.within({5.0, 5.0}, 1.0), (std::vector<SensorId>{}));
  EXPECT_THROW(index.within({0.0, 0.0}, -1.0), support::PreconditionError);
}

TEST(SpatialIndexTest, QueriesOutsideTheBoundsWork) {
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 1.0}};
  const SpatialIndex index(pts, 0.5);
  EXPECT_EQ(index.within({-100.0, -100.0}, 150.0),
            (std::vector<SensorId>{0, 1}));
  EXPECT_TRUE(index.within({-100.0, -100.0}, 10.0).empty());
}

TEST(SpatialIndexTest, ResultsAreSortedById) {
  support::Rng rng(3);
  std::vector<Point2> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  const SpatialIndex index(pts, 10.0);
  const auto hits = index.within({50.0, 50.0}, 30.0);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  EXPECT_FALSE(hits.empty());
}

// Property sweep: grid answers equal brute force for assorted cell sizes
// and query radii (radius smaller, equal and larger than the cell).
class SpatialIndexPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SpatialIndexPropertyTest, MatchesBruteForce) {
  const auto [cell_size, radius] = GetParam();
  support::Rng rng(17);
  std::vector<Point2> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(0, 200), rng.uniform(0, 200)});
  }
  const SpatialIndex index(pts, cell_size);
  for (int q = 0; q < 50; ++q) {
    const Point2 query{rng.uniform(-20, 220), rng.uniform(-20, 220)};
    ASSERT_EQ(index.within(query, radius), brute_within(pts, query, radius))
        << "cell=" << cell_size << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellAndRadius, SpatialIndexPropertyTest,
    ::testing::Combine(::testing::Values(1.0, 7.5, 25.0, 300.0),
                       ::testing::Values(0.0, 5.0, 25.0, 80.0)));

TEST(SpatialIndexTest, ReusableOutputBufferIsCleared) {
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}};
  const SpatialIndex index(pts, 1.0);
  std::vector<SensorId> buffer{99, 98, 97};
  index.within({0.0, 0.0}, 0.5, buffer);
  EXPECT_EQ(buffer, (std::vector<SensorId>{0}));
}

// Brute-force k-nearest oracle with the documented (distance asc, id asc)
// order.
std::vector<SensorId> brute_k_nearest(const std::vector<Point2>& pts,
                                      Point2 query, std::size_t k) {
  std::vector<std::pair<double, SensorId>> ranked;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ranked.emplace_back(geometry::distance_squared(pts[i], query),
                        static_cast<SensorId>(i));
  }
  std::sort(ranked.begin(), ranked.end());
  ranked.resize(std::min(ranked.size(), k));
  std::vector<SensorId> out;
  for (const auto& [d2, id] : ranked) out.push_back(id);
  return out;
}

TEST(SpatialIndexKNearestTest, MatchesBruteForceAcrossCellSizesAndK) {
  support::Rng rng(23);
  std::vector<Point2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0, 200), rng.uniform(0, 200)});
  }
  for (const double cell : {2.0, 11.0, 60.0, 500.0}) {
    const SpatialIndex index(pts, cell);
    std::vector<SensorId> got;
    for (int q = 0; q < 40; ++q) {
      const Point2 query{rng.uniform(-30, 230), rng.uniform(-30, 230)};
      for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                  std::size_t{16}, pts.size() + 5}) {
        index.k_nearest(query, k, got);
        ASSERT_EQ(got, brute_k_nearest(pts, query, k))
            << "cell=" << cell << " k=" << k;
      }
    }
  }
}

TEST(SpatialIndexKNearestTest, TiesBreakOnAscendingId) {
  // Four points equidistant from the centre query plus two coincident
  // duplicates: equal distances must come back in ascending-id order.
  const std::vector<Point2> pts{{1.0, 0.0}, {0.0, 1.0},  {-1.0, 0.0},
                                {0.0, -1.0}, {1.0, 0.0}, {0.0, 1.0}};
  const SpatialIndex index(pts, 1.0);
  std::vector<SensorId> got;
  index.k_nearest({0.0, 0.0}, 6, got);
  EXPECT_EQ(got, (std::vector<SensorId>{0, 1, 2, 3, 4, 5}));
  index.k_nearest({0.0, 0.0}, 3, got);
  EXPECT_EQ(got, (std::vector<SensorId>{0, 1, 2}));
}

TEST(SpatialIndexKNearestTest, IncludesSelfAndHandlesEdgeCases) {
  const std::vector<Point2> pts{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const SpatialIndex index(pts, 2.0);
  std::vector<SensorId> got{42};
  index.k_nearest({5.0, 0.0}, 0, got);
  EXPECT_TRUE(got.empty());  // k = 0 clears the buffer
  index.k_nearest({5.0, 0.0}, 1, got);
  EXPECT_EQ(got, (std::vector<SensorId>{1}));  // self first at distance 0
  index.k_nearest({-100.0, 40.0}, 2, got);     // query far off the grid
  EXPECT_EQ(got, (std::vector<SensorId>{0, 1}));
}

}  // namespace
}  // namespace bc::net
