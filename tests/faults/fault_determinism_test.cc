// Cross-thread-count determinism for the fault-injection stack: the
// fault-aware lifetime loop (planning, execution, replanning) must be
// bit-identical at 1, 2, and 8 workers and across reruns, with exact (==)
// floating-point comparisons — the same contract the parallel layer and
// its CI sanitizer matrix enforce for the fault-free paths.

#include <gtest/gtest.h>

#include <vector>

#include "sim/lifetime.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace bc::sim {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

net::Deployment test_deployment() {
  support::Rng rng(17);
  net::FieldSpec spec;
  spec.field = geometry::Box2{{0.0, 0.0}, {300.0, 300.0}};
  return net::uniform_random_deployment(24, spec, rng);
}

FaultLifetimeConfig stressed_config() {
  FaultLifetimeConfig config;
  config.base.planner.bundle_radius = 60.0;
  config.base.horizon_s = 2.0 * 24.0 * 3600.0;
  config.base.drain_w = {2e-4};
  config.faults.seed = 9;
  config.faults.permanent_death_rate_per_day = 0.15;
  config.faults.transient_outage_rate_per_day = 0.5;
  config.faults.max_efficiency_loss = 0.3;
  config.faults.position_noise_stddev_m = 2.0;
  config.faults.mc_battery_capacity_j = 6000.0;
  config.executor.on_dead_member = DisruptionPolicy::kReplan;
  config.executor.on_overrun = DisruptionPolicy::kTruncate;
  config.executor.on_battery_shortfall = DisruptionPolicy::kTruncate;
  return config;
}

void expect_identical(const FaultLifetimeStats& a, const FaultLifetimeStats& b,
                      std::size_t threads) {
  EXPECT_EQ(a.base.missions, b.base.missions) << "at " << threads;
  EXPECT_EQ(a.base.charger_energy_j, b.base.charger_energy_j)
      << "at " << threads;
  EXPECT_EQ(a.base.charger_busy_s, b.base.charger_busy_s) << "at " << threads;
  EXPECT_EQ(a.base.min_level_fraction, b.base.min_level_fraction)
      << "at " << threads;
  EXPECT_EQ(a.base.dead_time_sensor_s, b.base.dead_time_sensor_s)
      << "at " << threads;
  EXPECT_EQ(a.base.perpetual, b.base.perpetual) << "at " << threads;
  EXPECT_EQ(a.base.simulated_s, b.base.simulated_s) << "at " << threads;
  EXPECT_EQ(a.missions_completed, b.missions_completed) << "at " << threads;
  EXPECT_EQ(a.missions_degraded, b.missions_degraded) << "at " << threads;
  EXPECT_EQ(a.replans, b.replans) << "at " << threads;
  EXPECT_EQ(a.strandings, b.strandings) << "at " << threads;
  EXPECT_EQ(a.sensors_failed, b.sensors_failed) << "at " << threads;
  EXPECT_EQ(a.total_disruptions, b.total_disruptions) << "at " << threads;
  EXPECT_EQ(a.disruptions_by_kind, b.disruptions_by_kind) << "at " << threads;
  ASSERT_EQ(a.survival.size(), b.survival.size()) << "at " << threads;
  for (std::size_t i = 0; i < a.survival.size(); ++i) {
    EXPECT_EQ(a.survival[i].t_s, b.survival[i].t_s) << "point " << i;
    EXPECT_EQ(a.survival[i].alive_fraction, b.survival[i].alive_fraction)
        << "point " << i;
  }
}

class FaultDeterminismTest : public ::testing::Test {
 protected:
  ~FaultDeterminismTest() override { support::set_thread_count(0); }
};

TEST_F(FaultDeterminismTest, FaultLifetimeIsThreadCountInvariant) {
  const net::Deployment deployment = test_deployment();
  const FaultLifetimeConfig config = stressed_config();

  support::set_thread_count(1);
  auto reference = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(reference.has_value());
  // The scenario must actually exercise the fault machinery for the
  // invariance claim to mean anything.
  ASSERT_GT(reference.value().base.missions, 0u);
  ASSERT_GT(reference.value().total_disruptions, 0u);

  for (const std::size_t threads : kThreadCounts) {
    support::set_thread_count(threads);
    auto repeat = simulate_lifetime_with_faults(deployment, config);
    ASSERT_TRUE(repeat.has_value());
    expect_identical(reference.value(), repeat.value(), threads);
  }
}

TEST_F(FaultDeterminismTest, RerunsAreBitIdentical) {
  const net::Deployment deployment = test_deployment();
  const FaultLifetimeConfig config = stressed_config();
  support::set_thread_count(8);
  auto a = simulate_lifetime_with_faults(deployment, config);
  auto b = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_identical(a.value(), b.value(), 8);
}

TEST(FaultLifetimeTest, NoFaultsRunsCleanly) {
  const net::Deployment deployment = test_deployment();
  FaultLifetimeConfig config;
  config.base.planner.bundle_radius = 60.0;
  config.base.horizon_s = 2.0 * 24.0 * 3600.0;
  config.base.drain_w = {1e-4};
  auto result = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(result.has_value());
  const FaultLifetimeStats& stats = result.value();
  EXPECT_GT(stats.base.missions, 0u);
  EXPECT_TRUE(stats.base.perpetual);
  EXPECT_EQ(stats.sensors_failed, 0u);
  EXPECT_EQ(stats.total_disruptions, 0u);
  EXPECT_EQ(stats.strandings, 0u);
  EXPECT_EQ(stats.missions_completed, stats.base.missions);
  for (const SurvivalPoint& point : stats.survival) {
    EXPECT_EQ(point.alive_fraction, 1.0);
  }
}

TEST(FaultLifetimeTest, ReplanningBeatsTruncationUnderFaults) {
  // The headline robustness claim: with disruptions on, bounded-retry
  // replanning keeps more of the network alive (less sensor-dead time)
  // than simply truncating every disrupted mission.
  const net::Deployment deployment = test_deployment();
  FaultLifetimeConfig config = stressed_config();
  config.base.drain_w = {4e-4};  // hot enough that missed charge hurts

  config.executor.on_dead_member = DisruptionPolicy::kTruncate;
  config.executor.on_overrun = DisruptionPolicy::kTruncate;
  auto truncate = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(truncate.has_value());

  config.executor.on_dead_member = DisruptionPolicy::kReplan;
  config.executor.on_overrun = DisruptionPolicy::kReplan;
  auto replan = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(replan.has_value());

  EXPECT_LE(replan.value().base.dead_time_sensor_s,
            truncate.value().base.dead_time_sensor_s);
}

TEST(FaultLifetimeTest, SurvivalCurveIsWellFormed) {
  const net::Deployment deployment = test_deployment();
  const FaultLifetimeConfig config = stressed_config();
  auto result = simulate_lifetime_with_faults(deployment, config);
  ASSERT_TRUE(result.has_value());
  const std::vector<SurvivalPoint>& curve = result.value().survival;
  ASSERT_GE(curve.size(), 2u);
  EXPECT_EQ(curve.front().t_s, 0.0);
  EXPECT_EQ(curve.back().t_s, config.base.horizon_s);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (i > 0) EXPECT_LE(curve[i - 1].t_s, curve[i].t_s);
    EXPECT_GE(curve[i].alive_fraction, 0.0);
    EXPECT_LE(curve[i].alive_fraction, 1.0);
  }
}

}  // namespace
}  // namespace bc::sim
