// Tests for the deterministic fault-injection model.

#include "sim/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/require.h"
#include "support/rng.h"

namespace bc::sim {
namespace {

net::Deployment grid_deployment(std::size_t n = 25) {
  std::vector<geometry::Point2> positions;
  const std::size_t side = static_cast<std::size_t>(std::ceil(std::sqrt(n)));
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({20.0 + 40.0 * static_cast<double>(i % side),
                         20.0 + 40.0 * static_cast<double>(i / side)});
  }
  return net::Deployment(std::move(positions),
                         geometry::Box2{{0.0, 0.0}, {300.0, 300.0}},
                         {0.0, 0.0}, 2.0);
}

TEST(FaultModelTest, ValidatesConfig) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.permanent_death_rate_per_day = -1.0;
  EXPECT_THROW(FaultModel(d, config), support::PreconditionError);
  config = {};
  config.max_efficiency_loss = 1.0;
  EXPECT_THROW(FaultModel(d, config), support::PreconditionError);
  config = {};
  config.transient_outage_mean_s = 0.0;
  EXPECT_THROW(FaultModel(d, config), support::PreconditionError);
  config = {};
  config.mc_battery_capacity_j = -5.0;
  EXPECT_THROW(FaultModel(d, config), support::PreconditionError);
  config = {};
  config.horizon_s = 0.0;
  EXPECT_THROW(FaultModel(d, config), support::PreconditionError);
}

TEST(FaultModelTest, DefaultConfigInjectsNothing) {
  const net::Deployment d = grid_deployment();
  const FaultModel faults(d, FaultConfig{});
  for (net::SensorId id = 0; id < d.size(); ++id) {
    EXPECT_FALSE(faults.is_failed(id, 0.0));
    EXPECT_FALSE(faults.is_failed(id, 1e9));
    EXPECT_EQ(faults.death_time_s(id),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(faults.efficiency(id), 1.0);
    EXPECT_EQ(faults.true_position(id).x, d.sensor(id).position.x);
    EXPECT_EQ(faults.true_position(id).y, d.sensor(id).position.y);
  }
  EXPECT_FALSE(faults.has_battery_cap());
  EXPECT_EQ(faults.permanent_failures_by(1e12), 0u);
}

TEST(FaultModelTest, SameSeedIsBitIdentical) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.seed = 7;
  config.permanent_death_rate_per_day = 0.05;
  config.transient_outage_rate_per_day = 1.0;
  config.max_efficiency_loss = 0.4;
  config.position_noise_stddev_m = 3.0;
  const FaultModel a(d, config);
  const FaultModel b(d, config);
  for (net::SensorId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(a.death_time_s(id), b.death_time_s(id));
    EXPECT_EQ(a.efficiency(id), b.efficiency(id));
    EXPECT_EQ(a.true_position(id).x, b.true_position(id).x);
    EXPECT_EQ(a.true_position(id).y, b.true_position(id).y);
    for (double t = 0.0; t < 200000.0; t += 7321.0) {
      EXPECT_EQ(a.is_failed(id, t), b.is_failed(id, t));
    }
  }
}

TEST(FaultModelTest, FaultDimensionsAreIndependentStreams) {
  // Enabling outages must not move the death times, the efficiencies, or
  // the noisy positions: each dimension draws from its own stream.
  const net::Deployment d = grid_deployment();
  FaultConfig base;
  base.seed = 11;
  base.permanent_death_rate_per_day = 0.05;
  base.max_efficiency_loss = 0.4;
  base.position_noise_stddev_m = 3.0;
  FaultConfig with_outages = base;
  with_outages.transient_outage_rate_per_day = 2.0;
  const FaultModel a(d, base);
  const FaultModel b(d, with_outages);
  for (net::SensorId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(a.death_time_s(id), b.death_time_s(id));
    EXPECT_EQ(a.efficiency(id), b.efficiency(id));
    EXPECT_EQ(a.true_position(id).x, b.true_position(id).x);
    EXPECT_EQ(a.true_position(id).y, b.true_position(id).y);
  }
}

TEST(FaultModelTest, PermanentDeathIsForever) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.permanent_death_rate_per_day = 0.5;  // mean life of 2 days
  config.horizon_s = 100.0 * 24.0 * 3600.0;
  const FaultModel faults(d, config);
  std::size_t died = 0;
  for (net::SensorId id = 0; id < d.size(); ++id) {
    const double t = faults.death_time_s(id);
    if (!std::isfinite(t)) continue;
    ++died;
    EXPECT_FALSE(faults.is_failed(id, t - 1.0));
    EXPECT_TRUE(faults.is_failed(id, t));
    EXPECT_TRUE(faults.is_failed(id, t + 1e6));
    EXPECT_FALSE(faults.permanently_failed_by(id, t - 1.0));
    EXPECT_TRUE(faults.permanently_failed_by(id, t));
  }
  // Mean life 2 days over a 100 day horizon: essentially everyone dies.
  EXPECT_GT(died, d.size() / 2);
  EXPECT_EQ(faults.permanent_failures_by(config.horizon_s), died);
  EXPECT_EQ(faults.permanent_failures_by(0.0), 0u);
}

TEST(FaultModelTest, TransientOutagesEnd) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.transient_outage_rate_per_day = 4.0;
  config.transient_outage_mean_s = 1800.0;
  config.horizon_s = 10.0 * 24.0 * 3600.0;
  const FaultModel faults(d, config);
  // No permanent deaths, so every failure observed must later clear.
  std::size_t observed_outage = 0;
  std::size_t observed_recovery = 0;
  for (net::SensorId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(faults.death_time_s(id),
              std::numeric_limits<double>::infinity());
    bool was_failed = false;
    for (double t = 0.0; t < config.horizon_s; t += 600.0) {
      const bool failed = faults.is_failed(id, t);
      if (failed) ++observed_outage;
      if (was_failed && !failed) ++observed_recovery;
      was_failed = failed;
    }
  }
  EXPECT_GT(observed_outage, 0u);
  EXPECT_GT(observed_recovery, 0u);
}

TEST(FaultModelTest, EfficiencyDegradesReceivedPower) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.max_efficiency_loss = 0.5;
  const FaultModel faults(d, config);
  const charging::ChargingModel model =
      charging::ChargingModel::icdcs2019_simulation();
  bool any_degraded = false;
  for (net::SensorId id = 0; id < d.size(); ++id) {
    const double eff = faults.efficiency(id);
    EXPECT_GT(eff, 0.5 - 1e-12);
    EXPECT_LE(eff, 1.0);
    if (eff < 1.0) any_degraded = true;
    const geometry::Point2 charger = d.sensor(id).position;
    const double expected = eff * model.received_power_w(0.0);
    EXPECT_DOUBLE_EQ(faults.received_power_w(model, charger, id), expected);
  }
  EXPECT_TRUE(any_degraded);
}

TEST(FaultModelTest, PositionNoiseMovesPhysicsNotSurvey) {
  const net::Deployment d = grid_deployment();
  FaultConfig config;
  config.position_noise_stddev_m = 5.0;
  const FaultModel faults(d, config);
  double total_displacement = 0.0;
  for (net::SensorId id = 0; id < d.size(); ++id) {
    total_displacement +=
        geometry::distance(faults.true_position(id), d.sensor(id).position);
  }
  // Mean displacement of a 2-D Gaussian with sigma = 5 is ~6.27 m; with 25
  // sensors the total is far from 0 with overwhelming probability.
  EXPECT_GT(total_displacement, 25.0);
}

TEST(FaultModelTest, QueriesRejectOutOfRangeIds) {
  const net::Deployment d = grid_deployment(4);
  const FaultModel faults(d, FaultConfig{});
  EXPECT_THROW(faults.is_failed(4, 0.0), support::PreconditionError);
  EXPECT_THROW(faults.death_time_s(4), support::PreconditionError);
  EXPECT_THROW(faults.efficiency(4), support::PreconditionError);
  EXPECT_THROW(faults.true_position(4), support::PreconditionError);
}

}  // namespace
}  // namespace bc::sim
