// Tests for the bounded-retry online replanner.

#include "tour/replan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/require.h"

namespace bc::tour {
namespace {

net::Deployment line_deployment(std::size_t n = 8) {
  std::vector<geometry::Point2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({50.0 + 30.0 * static_cast<double>(i), 100.0});
  }
  return net::Deployment(std::move(positions),
                         geometry::Box2{{0.0, 0.0}, {400.0, 200.0}},
                         {0.0, 0.0}, 2.0);
}

PlannerConfig quick_config() {
  PlannerConfig config;
  config.bundle_radius = 25.0;
  return config;
}

std::set<net::SensorId> covered_ids(const ChargingPlan& plan) {
  std::set<net::SensorId> ids;
  for (const Stop& stop : plan.stops) {
    ids.insert(stop.members.begin(), stop.members.end());
  }
  return ids;
}

TEST(ReplanTest, ValidatesRequest) {
  const net::Deployment d = line_deployment();
  ReplanRequest request;
  request.current_position = {10.0, 10.0};
  request.remaining = {1, 3};
  request.deficits_j = {1.0};  // size mismatch
  EXPECT_THROW(replan_tour(d, request, quick_config()),
               support::PreconditionError);
  request.deficits_j = {1.0, 1.0, 1.0};
  request.remaining = {3, 1, 2};  // not ascending
  EXPECT_THROW(replan_tour(d, request, quick_config()),
               support::PreconditionError);
  request.remaining = {1, 1, 2};  // not strictly ascending
  EXPECT_THROW(replan_tour(d, request, quick_config()),
               support::PreconditionError);
  request.remaining = {1, 2, 99};  // out of range
  EXPECT_THROW(replan_tour(d, request, quick_config()),
               support::PreconditionError);
}

TEST(ReplanTest, EmptyRemainingYieldsEmptyPlan) {
  const net::Deployment d = line_deployment();
  ReplanRequest request;
  request.current_position = {10.0, 10.0};
  auto result = replan_tour(d, request, quick_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result.value().stops.empty());
  EXPECT_EQ(result.value().depot.x, d.depot().x);
}

TEST(ReplanTest, CoversExactlyTheRemainingIds) {
  const net::Deployment d = line_deployment();
  ReplanRequest request;
  request.current_position = {200.0, 100.0};
  request.remaining = {1, 4, 6};
  request.deficits_j = {0.5, 1.5, 2.0};
  auto result = replan_tour(d, request, quick_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(covered_ids(result.value()),
            std::set<net::SensorId>({1, 4, 6}));
}

TEST(ReplanTest, StartsNearTheCurrentPosition) {
  const net::Deployment d = line_deployment();
  PlannerConfig config = quick_config();
  config.bundle_radius = 5.0;  // singleton bundles: one stop per sensor
  ReplanRequest request;
  request.remaining = {0, 3, 7};
  request.deficits_j = {1.0, 1.0, 1.0};

  // Standing on top of sensor 7 -> it must be the first stop.
  request.current_position = d.sensor(7).position;
  auto from_right = replan_tour(d, request, config);
  ASSERT_TRUE(from_right.has_value());
  ASSERT_EQ(from_right.value().stops.size(), 3u);
  EXPECT_EQ(from_right.value().stops[0].members,
            std::vector<net::SensorId>{7});

  // Standing on sensor 0 -> order flips.
  request.current_position = d.sensor(0).position;
  auto from_left = replan_tour(d, request, config);
  ASSERT_TRUE(from_left.has_value());
  EXPECT_EQ(from_left.value().stops[0].members,
            std::vector<net::SensorId>{0});
}

TEST(ReplanTest, IsDeterministic) {
  const net::Deployment d = line_deployment();
  ReplanRequest request;
  request.current_position = {123.0, 45.0};
  request.remaining = {0, 2, 3, 5, 6};
  request.deficits_j = {1.0, 0.2, 0.7, 1.9, 0.4};
  auto a = replan_tour(d, request, quick_config());
  auto b = replan_tour(d, request, quick_config());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a.value().stops.size(), b.value().stops.size());
  for (std::size_t i = 0; i < a.value().stops.size(); ++i) {
    EXPECT_EQ(a.value().stops[i].members, b.value().stops[i].members);
    EXPECT_EQ(a.value().stops[i].position.x, b.value().stops[i].position.x);
    EXPECT_EQ(a.value().stops[i].position.y, b.value().stops[i].position.y);
  }
}

TEST(ReplanTest, ExactBudgetExhaustionFallsBackToHeuristics) {
  const net::Deployment d = line_deployment();
  PlannerConfig config = quick_config();
  config.generator.kind = bundle::GeneratorKind::kExact;
  ReplanOptions options;
  options.initial_node_budget = 1;  // every exact attempt exhausts
  ReplanRequest request;
  request.current_position = {10.0, 10.0};
  for (net::SensorId id = 0; id < d.size(); ++id) {
    request.remaining.push_back(id);
    request.deficits_j.push_back(1.0);
  }
  auto result = replan_tour(d, request, config, options);
  ASSERT_TRUE(result.has_value());
  // The ladder slid down to a heuristic generator and still covered all.
  EXPECT_EQ(covered_ids(result.value()).size(), d.size());
  EXPECT_NE(result.value().algorithm.find("REPLAN("), std::string::npos);
  EXPECT_EQ(result.value().algorithm.find("exact"), std::string::npos);
}

TEST(ReplanTest, ExhaustionWithoutFallbackIsAStructuredFault) {
  const net::Deployment d = line_deployment();
  PlannerConfig config = quick_config();
  config.generator.kind = bundle::GeneratorKind::kExact;
  ReplanOptions options;
  options.initial_node_budget = 1;
  options.fallback_to_heuristics = false;
  ReplanRequest request;
  request.current_position = {10.0, 10.0};
  request.remaining = {0, 1, 2, 3, 4, 5, 6, 7};
  request.deficits_j.assign(8, 1.0);
  auto result = replan_tour(d, request, config, options);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kReplanExhausted);
  EXPECT_NE(result.fault().message.find("tried:"), std::string::npos);
}

TEST(ReplanTest, NonPositiveDeficitsAreClamped) {
  const net::Deployment d = line_deployment();
  ReplanRequest request;
  request.current_position = {10.0, 10.0};
  request.remaining = {2, 5};
  request.deficits_j = {0.0, -3.0};  // stale bookkeeping must not throw
  auto result = replan_tour(d, request, quick_config());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(covered_ids(result.value()), std::set<net::SensorId>({2, 5}));
}

}  // namespace
}  // namespace bc::tour
