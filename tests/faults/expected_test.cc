// Tests for the Expected<T> result type and the FaultKind taxonomy.

#include "support/expected.h"

#include <gtest/gtest.h>

#include <string>

namespace bc::support {
namespace {

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  EXPECT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(-1), 42);
  EXPECT_THROW(e.fault(), PreconditionError);
}

TEST(ExpectedTest, HoldsFault) {
  Expected<int> e(Fault{FaultKind::kSensorDead, "member 3 dead", 2});
  EXPECT_FALSE(e.has_value());
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(e.fault().kind, FaultKind::kSensorDead);
  EXPECT_EQ(e.fault().message, "member 3 dead");
  EXPECT_EQ(e.fault().stop_index, 2u);
  EXPECT_EQ(e.value_or(-1), -1);
  EXPECT_THROW(e.value(), PreconditionError);
}

TEST(ExpectedTest, InlineFaultConstructor) {
  Expected<std::string> e(FaultKind::kReplanExhausted, "budget spent");
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.fault().kind, FaultKind::kReplanExhausted);
  EXPECT_EQ(e.fault().stop_index, kNoStop);
}

TEST(ExpectedTest, MutableValueAccess) {
  Expected<std::string> e(std::string("abc"));
  e.value() += "def";
  EXPECT_EQ(e.value(), "abcdef");
  EXPECT_EQ(std::move(e).value(), "abcdef");
}

TEST(ExpectedTest, EveryKindHasAName) {
  for (int k = 0; k < static_cast<int>(FaultKind::kNumFaultKinds); ++k) {
    EXPECT_FALSE(to_string(static_cast<FaultKind>(k)).empty());
    EXPECT_NE(to_string(static_cast<FaultKind>(k)), "unknown");
  }
}

TEST(ExpectedTest, DescribeIncludesStopIndex) {
  const Fault at_stop{FaultKind::kStopOverrun, "too slow", 4};
  const std::string text = describe(at_stop);
  EXPECT_NE(text.find("stop-overrun"), std::string::npos);
  EXPECT_NE(text.find("4"), std::string::npos);
  EXPECT_NE(text.find("too slow"), std::string::npos);

  const Fault no_stop{FaultKind::kMcStranded, "out of juice"};
  EXPECT_EQ(describe(no_stop).find("stop"), std::string::npos);
}

}  // namespace
}  // namespace bc::support
