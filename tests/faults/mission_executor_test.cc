// Tests for the disruption-tolerant mission executor: one scenario per
// disruption kind x degradation policy pair, plus the clean path.

#include "sim/mission_executor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/require.h"

namespace bc::sim {
namespace {

using support::FaultKind;

// Two sensors on a short line; singleton stops parked exactly on top of
// them, so the fault-free stop time is demand / p_r(0) and every energy
// number is hand-checkable.
net::Deployment pair_deployment() {
  return net::Deployment({{30.0, 0.0}, {60.0, 0.0}},
                         geometry::Box2{{-10.0, -10.0}, {100.0, 10.0}},
                         {0.0, 0.0}, 2.0);
}

tour::ChargingPlan singleton_plan(const net::Deployment& d) {
  tour::ChargingPlan plan;
  plan.algorithm = "TEST";
  plan.depot = d.depot();
  for (net::SensorId id = 0; id < d.size(); ++id) {
    tour::Stop stop;
    stop.position = d.sensor(id).position;
    stop.members = {id};
    plan.stops.push_back(stop);
  }
  return plan;
}

ExecutorConfig quick_config() {
  ExecutorConfig config;
  config.planner.bundle_radius = 10.0;
  return config;
}

// A model whose sensors die en masse: mean life of 0.1 day over a 30 day
// horizon leaves every sensor dead long before `t = kLateStart`.
FaultModel all_dead_model(const net::Deployment& d) {
  FaultConfig config;
  config.permanent_death_rate_per_day = 10.0;
  return FaultModel(d, config);
}

constexpr double kLateStart = 20.0 * 24.0 * 3600.0;

TEST(MissionExecutorTest, ValidatesInputs) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults(d, FaultConfig{});
  const tour::ChargingPlan plan = singleton_plan(d);
  EXPECT_THROW(
      execute_mission(d, {1.0}, plan, faults, 0.0, quick_config()),
      support::PreconditionError);
  ExecutorConfig bad = quick_config();
  bad.stop_time_tolerance = 0.5;
  EXPECT_THROW(execute_mission(d, {1.0, 1.0}, plan, faults, 0.0, bad),
               support::PreconditionError);
}

TEST(MissionExecutorTest, UnknownPlanMemberIsAStructuredFault) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults(d, FaultConfig{});
  tour::ChargingPlan plan = singleton_plan(d);
  plan.stops[0].members.push_back(99);
  auto result = execute_mission(d, {1.0, 1.0}, plan, faults, 0.0,
                                quick_config());
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, FaultKind::kInvalidInput);
}

TEST(MissionExecutorTest, CleanMissionMatchesHandComputation) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults(d, FaultConfig{});
  const tour::ChargingPlan plan = singleton_plan(d);
  const ExecutorConfig config = quick_config();
  auto result =
      execute_mission(d, {1.0, 1.0}, plan, faults, 0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.stranded);
  EXPECT_TRUE(report.disruptions.empty());
  EXPECT_EQ(report.stops_visited, 2u);
  EXPECT_EQ(report.stops_skipped, 0u);
  EXPECT_EQ(report.replans, 0u);
  // depot -> (30,0) -> (60,0) -> depot = 120 m exactly.
  EXPECT_DOUBLE_EQ(report.tour_length_m, 120.0);
  EXPECT_DOUBLE_EQ(report.move_energy_j,
                   120.0 * config.movement.joules_per_meter());
  EXPECT_GE(report.delivered_j[0], 1.0);
  EXPECT_GE(report.delivered_j[1], 1.0);
  EXPECT_DOUBLE_EQ(report.battery_used_j,
                   report.move_energy_j + report.charge_energy_j);
  EXPECT_EQ(report.final_position.x, d.depot().x);
  EXPECT_EQ(report.final_position.y, d.depot().y);
}

TEST(MissionExecutorTest, DeadMembersSkipPolicyServesNobody) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults = all_dead_model(d);
  ASSERT_TRUE(faults.is_failed(0, kLateStart));
  ASSERT_TRUE(faults.is_failed(1, kLateStart));
  ExecutorConfig config = quick_config();
  config.on_dead_member = DisruptionPolicy::kSkip;
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                kLateStart, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  // Every stop emptied by deaths: skipped, never parked at, no energy out.
  EXPECT_EQ(report.stops_skipped, 2u);
  EXPECT_EQ(report.stops_visited, 0u);
  EXPECT_EQ(report.count(FaultKind::kSensorDead), 2u);
  EXPECT_DOUBLE_EQ(report.charge_energy_j, 0.0);
  // Dead sensors are excluded from the completion criterion.
  EXPECT_TRUE(report.completed);
}

TEST(MissionExecutorTest, DeadMemberTruncatePolicyAbandonsTheTour) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults = all_dead_model(d);
  ExecutorConfig config = quick_config();
  config.on_dead_member = DisruptionPolicy::kTruncate;
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                kLateStart, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.stops_visited, 0u);
  EXPECT_EQ(report.count(FaultKind::kSensorDead), 1u);  // broke at the first
  EXPECT_DOUBLE_EQ(report.tour_length_m, 0.0);  // never left the depot
}

TEST(MissionExecutorTest, DeadMemberReplanPolicyReroutesSurvivors) {
  const net::Deployment d = pair_deployment();
  const FaultModel faults = all_dead_model(d);
  // Mission dispatched while everyone is still alive except that the
  // executor sees deaths at kLateStart; both dead -> replan yields an
  // empty route, mission ends cleanly with a replan recorded.
  ExecutorConfig config = quick_config();
  config.on_dead_member = DisruptionPolicy::kReplan;
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                kLateStart, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_EQ(report.replans, 1u);
  EXPECT_GE(report.count(FaultKind::kSensorDead), 1u);
  EXPECT_EQ(report.stops_visited, 0u);
  EXPECT_TRUE(report.completed);  // nobody alive is owed anything
}

// One sensor, no cross-stop spill: with tolerance 1.0 any degraded
// harvester is an overrun (actual = demand / (eff * p) > planned =
// demand / p), and the per-policy outcomes hold for every eff < 1.
net::Deployment solo_deployment() {
  return net::Deployment({{30.0, 0.0}},
                         geometry::Box2{{-10.0, -10.0}, {100.0, 10.0}},
                         {0.0, 0.0}, 2.0);
}

FaultModel degraded_model(const net::Deployment& d) {
  FaultConfig config;
  config.seed = 5;
  config.max_efficiency_loss = 0.6;
  return FaultModel(d, config);
}

TEST(MissionExecutorTest, OverrunSkipPolicyAbsorbsTheDelay) {
  const net::Deployment d = solo_deployment();
  const FaultModel faults = degraded_model(d);
  ASSERT_LT(faults.efficiency(0), 1.0);
  ExecutorConfig config = quick_config();
  config.stop_time_tolerance = 1.0;
  config.on_overrun = DisruptionPolicy::kSkip;
  auto result =
      execute_mission(d, {1.0}, singleton_plan(d), faults, 0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_EQ(report.count(FaultKind::kStopOverrun), 1u);
  EXPECT_TRUE(report.completed);  // parked as long as it took
  EXPECT_NEAR(report.delivered_j[0], 1.0, 1e-9);
}

TEST(MissionExecutorTest, OverrunTruncatePolicyCapsTheStop) {
  const net::Deployment d = solo_deployment();
  const FaultModel faults = degraded_model(d);
  ASSERT_LT(faults.efficiency(0), 1.0);
  ExecutorConfig config = quick_config();
  config.stop_time_tolerance = 1.0;
  config.on_overrun = DisruptionPolicy::kTruncate;
  auto result =
      execute_mission(d, {1.0}, singleton_plan(d), faults, 0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_EQ(report.count(FaultKind::kStopOverrun), 1u);
  EXPECT_EQ(report.stops_visited, 1u);
  // Capped at the planned time: exactly eff * demand was delivered.
  EXPECT_NEAR(report.delivered_j[0], faults.efficiency(0), 1e-9);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.replans, 0u);
}

TEST(MissionExecutorTest, OverrunReplanPolicyFinishesTheJob) {
  const net::Deployment d = solo_deployment();
  const FaultModel faults = degraded_model(d);
  ASSERT_LT(faults.efficiency(0), 1.0);
  ExecutorConfig config = quick_config();
  config.stop_time_tolerance = 1.0;
  config.on_overrun = DisruptionPolicy::kReplan;
  config.max_replans = 10;
  auto result =
      execute_mission(d, {1.0}, singleton_plan(d), faults, 0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_GE(report.count(FaultKind::kStopOverrun), 1u);
  EXPECT_GE(report.replans, 1u);
  // Replanned visits keep charging the leftover deficit until it is met.
  EXPECT_TRUE(report.completed);
  EXPECT_NEAR(report.delivered_j[0], 1.0, 1e-9);
}

TEST(MissionExecutorTest, BatteryShortfallTruncateReturnsHome) {
  const net::Deployment d = pair_deployment();
  FaultConfig fault_config;
  // Enough to reach sensor 0 and back (60 m = 335.4 J) but nowhere near
  // the full mission (movement alone is 670.8 J + parking).
  fault_config.mc_battery_capacity_j = 400.0;
  const FaultModel faults(d, fault_config);
  ExecutorConfig config = quick_config();
  config.on_battery_shortfall = DisruptionPolicy::kTruncate;
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.stranded);  // guarded mode provisions the return leg
  EXPECT_GE(report.count(FaultKind::kBatteryShortfall), 1u);
  EXPECT_LE(report.battery_used_j, fault_config.mc_battery_capacity_j + 1e-9);
  EXPECT_EQ(report.final_position.x, d.depot().x);
}

TEST(MissionExecutorTest, BatteryShortfallReplanExhaustsItsBudget) {
  const net::Deployment d = pair_deployment();
  FaultConfig fault_config;
  fault_config.mc_battery_capacity_j = 100.0;  // cannot reach anything
  const FaultModel faults(d, fault_config);
  ExecutorConfig config = quick_config();
  config.on_battery_shortfall = DisruptionPolicy::kReplan;
  config.max_replans = 2;
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.stranded);
  EXPECT_EQ(report.replans, 2u);
  EXPECT_GE(report.count(FaultKind::kBatteryShortfall), 1u);
  EXPECT_EQ(report.count(FaultKind::kReplanExhausted), 1u);
}

TEST(MissionExecutorTest, RecklessModeStrandsMidLeg) {
  const net::Deployment d = pair_deployment();
  FaultConfig fault_config;
  // Half the energy of the 30 m leg to the first stop.
  const double leg_cost = 30.0 * 5.59;
  fault_config.mc_battery_capacity_j = leg_cost / 2.0;
  const FaultModel faults(d, fault_config);
  ExecutorConfig config = quick_config();
  config.on_battery_shortfall = DisruptionPolicy::kSkip;  // reckless
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_TRUE(report.stranded);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.count(FaultKind::kMcStranded), 1u);
  // Died exactly halfway down the first leg.
  EXPECT_NEAR(report.final_position.x, 15.0, 1e-9);
  EXPECT_NEAR(report.tour_length_m, 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.battery_used_j, fault_config.mc_battery_capacity_j);
  EXPECT_EQ(report.stops_visited, 0u);
}

TEST(MissionExecutorTest, RecklessModeStrandsAfterPartialPark) {
  const net::Deployment d = pair_deployment();
  FaultConfig fault_config;
  // Reaches stop 0 (167.7 J) with 10 J left: parks for 10 J worth of
  // charging, then the battery is flat at the stop.
  fault_config.mc_battery_capacity_j = 30.0 * 5.59 + 10.0;
  const FaultModel faults(d, fault_config);
  ExecutorConfig config = quick_config();
  config.on_battery_shortfall = DisruptionPolicy::kSkip;  // reckless
  auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d), faults,
                                0.0, config);
  ASSERT_TRUE(result.has_value());
  const MissionReport& report = result.value();
  EXPECT_TRUE(report.stranded);
  EXPECT_EQ(report.count(FaultKind::kMcStranded), 1u);
  EXPECT_EQ(report.stops_visited, 1u);
  EXPECT_NEAR(report.final_position.x, 30.0, 1e-9);  // parked at the stop
  EXPECT_NEAR(report.charge_energy_j, 10.0, 1e-9);
  EXPECT_NEAR(report.battery_used_j, fault_config.mc_battery_capacity_j,
              1e-9);
}

TEST(MissionExecutorTest, GuardedModeNeverStrands) {
  // Sweep battery capacities across the interesting range: the guarded
  // policies must always either finish or abort at the depot.
  const net::Deployment d = pair_deployment();
  for (double capacity = 50.0; capacity < 1500.0; capacity += 97.0) {
    FaultConfig fault_config;
    fault_config.mc_battery_capacity_j = capacity;
    const FaultModel faults(d, fault_config);
    for (const DisruptionPolicy policy :
         {DisruptionPolicy::kTruncate, DisruptionPolicy::kReplan}) {
      ExecutorConfig config = quick_config();
      config.on_battery_shortfall = policy;
      auto result = execute_mission(d, {1.0, 1.0}, singleton_plan(d),
                                    faults, 0.0, config);
      ASSERT_TRUE(result.has_value());
      EXPECT_FALSE(result.value().stranded)
          << "capacity " << capacity << " policy " << to_string(policy);
      EXPECT_LE(result.value().battery_used_j, capacity + 1e-9);
    }
  }
}

}  // namespace
}  // namespace bc::sim
