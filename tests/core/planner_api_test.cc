// Tests for the BundleChargingPlanner facade.

#include "core/planner_api.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::core {
namespace {

net::Deployment sample_deployment(std::size_t n = 80,
                                  std::uint64_t seed = 7) {
  support::Rng rng(seed);
  return net::uniform_random_deployment(
      n, icdcs2019_simulation_profile().field, rng);
}

TEST(PlannerApiTest, PlanEvaluatesWhatItPlans) {
  const BundleChargingPlanner planner(icdcs2019_simulation_profile());
  const net::Deployment d = sample_deployment();
  const PlanResult result = planner.plan(d, tour::Algorithm::kBc);
  EXPECT_EQ(result.plan.algorithm, "BC");
  EXPECT_NEAR(result.metrics.tour_length_m,
              tour::plan_tour_length(result.plan), 1e-9);
  EXPECT_GE(result.metrics.min_demand_fraction, 1.0 - 1e-9);
}

TEST(PlannerApiTest, SweepCoversTheRequestedRange) {
  const BundleChargingPlanner planner(icdcs2019_simulation_profile());
  const net::Deployment d = sample_deployment();
  const RadiusSweep sweep =
      planner.sweep_radius(d, tour::Algorithm::kBc, 10.0, 100.0, 10);
  ASSERT_EQ(sweep.points.size(), 10u);
  EXPECT_DOUBLE_EQ(sweep.points.front().radius_m, 10.0);
  EXPECT_DOUBLE_EQ(sweep.points.back().radius_m, 100.0);
  // best_radius_m is the argmin of total energy over the sweep.
  double best = sweep.points.front().metrics.total_energy_j;
  double best_r = sweep.points.front().radius_m;
  for (const RadiusPoint& p : sweep.points) {
    if (p.metrics.total_energy_j < best) {
      best = p.metrics.total_energy_j;
      best_r = p.radius_m;
    }
  }
  EXPECT_DOUBLE_EQ(sweep.best_radius_m, best_r);
}

TEST(PlannerApiTest, SingleStepSweepUsesMinRadius) {
  const BundleChargingPlanner planner(icdcs2019_simulation_profile());
  const net::Deployment d = sample_deployment(30, 9);
  const RadiusSweep sweep =
      planner.sweep_radius(d, tour::Algorithm::kBc, 25.0, 100.0, 1);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep.points[0].radius_m, 25.0);
  EXPECT_DOUBLE_EQ(sweep.best_radius_m, 25.0);
}

TEST(PlannerApiTest, SweepValidatesArguments) {
  const BundleChargingPlanner planner(icdcs2019_simulation_profile());
  const net::Deployment d = sample_deployment(10, 11);
  EXPECT_THROW(planner.sweep_radius(d, tour::Algorithm::kBc, 0.0, 10.0, 3),
               support::PreconditionError);
  EXPECT_THROW(planner.sweep_radius(d, tour::Algorithm::kBc, 10.0, 5.0, 3),
               support::PreconditionError);
  EXPECT_THROW(planner.sweep_radius(d, tour::Algorithm::kBc, 5.0, 10.0, 0),
               support::PreconditionError);
}

TEST(PlannerApiTest, TunedPlanMatchesBestSweepPoint) {
  const BundleChargingPlanner planner(icdcs2019_simulation_profile());
  const net::Deployment d = sample_deployment(60, 13);
  const RadiusSweep sweep =
      planner.sweep_radius(d, tour::Algorithm::kBc, 20.0, 120.0, 6);
  const PlanResult tuned = planner.plan_with_tuned_radius(
      d, tour::Algorithm::kBc, 20.0, 120.0, 6);
  double best_energy = sweep.points.front().metrics.total_energy_j;
  for (const RadiusPoint& p : sweep.points) {
    best_energy = std::min(best_energy, p.metrics.total_energy_j);
  }
  EXPECT_NEAR(tuned.metrics.total_energy_j, best_energy, 1e-6);
}

TEST(PlannerApiTest, ProfileIsMutable) {
  BundleChargingPlanner planner(icdcs2019_simulation_profile());
  planner.mutable_profile().planner.bundle_radius = 77.0;
  EXPECT_DOUBLE_EQ(planner.profile().planner.bundle_radius, 77.0);
}

}  // namespace
}  // namespace bc::core
