// Tests for the experiment profiles.

#include "core/profiles.h"

#include <gtest/gtest.h>

namespace bc::core {
namespace {

TEST(ProfilesTest, SimulationProfileMatchesSectionSixA) {
  const Profile p = icdcs2019_simulation_profile();
  EXPECT_DOUBLE_EQ(p.planner.charging.alpha(), 36.0);
  EXPECT_DOUBLE_EQ(p.planner.charging.beta(), 30.0);
  EXPECT_DOUBLE_EQ(p.planner.movement.joules_per_meter(), 5.59);
  EXPECT_DOUBLE_EQ(p.field.demand_j, 2.0);
  EXPECT_DOUBLE_EQ(p.field.field.width(), 1000.0);
  EXPECT_DOUBLE_EQ(p.field.field.height(), 1000.0);
  EXPECT_GT(p.planner.bundle_radius, 0.0);
}

TEST(ProfilesTest, EvaluationModelsMatchPlannerModels) {
  for (const Profile& p :
       {icdcs2019_simulation_profile(), icdcs2019_paper_cost_profile(),
        testbed_profile()}) {
    EXPECT_DOUBLE_EQ(p.planner.charging.alpha(), p.evaluation.charging.alpha());
    EXPECT_DOUBLE_EQ(p.planner.charging.charge_cost_w(),
                     p.evaluation.charging.charge_cost_w());
    EXPECT_DOUBLE_EQ(p.planner.movement.joules_per_meter(),
                     p.evaluation.movement.joules_per_meter());
  }
}

TEST(ProfilesTest, PaperCostProfileUsesLiteralRate) {
  const Profile p = icdcs2019_paper_cost_profile();
  EXPECT_NEAR(p.planner.charging.charge_cost_w(), 0.015, 1e-12);
  // Attenuation constants unchanged.
  EXPECT_DOUBLE_EQ(p.planner.charging.alpha(), 36.0);
}

TEST(ProfilesTest, TestbedProfileMatchesSectionSeven) {
  const Profile p = testbed_profile();
  EXPECT_DOUBLE_EQ(p.field.demand_j, 0.004);
  EXPECT_DOUBLE_EQ(p.field.field.width(), 5.0);
  EXPECT_DOUBLE_EQ(p.planner.movement.speed_m_per_s(), 0.3);
  EXPECT_DOUBLE_EQ(p.planner.bundle_radius, 1.2);
  // Friis-derived alpha is small (milliwatt-scale delivery).
  EXPECT_LT(p.planner.charging.alpha(), 0.1);
}

}  // namespace
}  // namespace bc::core
