// Tests for the TSP solver facade.

#include "tsp/solver.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tsp/exact.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

TEST(SolverTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(solve_tsp({}).empty());
  const std::vector<Point2> one{{1.0, 1.0}};
  EXPECT_EQ(solve_tsp(one), (Tour{0}));
  const std::vector<Point2> three{{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}};
  EXPECT_EQ(solve_tsp(three), (Tour{0, 1, 2}));
}

TEST(SolverTest, SmallInstancesAreSolvedExactly) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_points(10, 50 + trial);
    const Tour solved = solve_tsp(pts);
    const Tour exact = held_karp_tour(pts);
    ASSERT_NEAR(tour_length(pts, solved), tour_length(pts, exact), 1e-9);
  }
}

TEST(SolverTest, LargeInstancesAreValidAndReasonable) {
  const auto pts = random_points(150, 3);
  const Tour tour = solve_tsp(pts);
  ASSERT_TRUE(is_valid_tour(tour, pts.size()));
  // Beardwood–Halton–Hammersley: optimal is ~0.7 * sqrt(n * A); a solved
  // tour should be well below a naive random ordering and in the BHH
  // ballpark (allow +25 %).
  const double length = tour_length(pts, tour);
  const double bhh = 0.7 * std::sqrt(150.0 * 1000.0 * 1000.0);
  EXPECT_LT(length, bhh * 1.25);
}

TEST(SolverTest, DeterministicForSameInput) {
  const auto pts = random_points(80, 5);
  EXPECT_EQ(solve_tsp(pts), solve_tsp(pts));
}

TEST(SolverTest, ExactThresholdIsValidated) {
  SolverOptions options;
  options.exact_threshold = kHeldKarpLimit + 5;
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(solve_tsp(pts, options), support::PreconditionError);
}

TEST(SolverTest, MoreNnStartsNeverHurtMuch) {
  const auto pts = random_points(100, 9);
  SolverOptions few;
  few.nn_starts = 1;
  SolverOptions many;
  many.nn_starts = 8;
  const double len_few = tour_length(pts, solve_tsp(pts, few));
  const double len_many = tour_length(pts, solve_tsp(pts, many));
  EXPECT_LE(len_many, len_few + 1e-9);
}

}  // namespace
}  // namespace bc::tsp
