// Tests for Held–Karp and heuristic-vs-optimal properties.

#include "tsp/exact.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tsp/construct.h"
#include "tsp/improve.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  return pts;
}

// Brute-force optimal tour length via permutations (n <= 8).
double brute_force_optimal(const std::vector<Point2>& pts) {
  std::vector<std::uint32_t> order(pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) order[i] = i;
  double best = tour_length(pts, order);
  // Fix order[0] = 0: tours are rotation invariant.
  std::sort(order.begin() + 1, order.end());
  do {
    best = std::min(best, tour_length(pts, order));
  } while (std::next_permutation(order.begin() + 1, order.end()));
  return best;
}

TEST(HeldKarpTest, TrivialInstances) {
  const std::vector<Point2> one{{1.0, 1.0}};
  EXPECT_EQ(held_karp_tour(one), (Tour{0}));
  const std::vector<Point2> two{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_EQ(held_karp_tour(two), (Tour{0, 1}));
}

TEST(HeldKarpTest, ValidatesSize) {
  EXPECT_THROW(held_karp_tour({}), support::PreconditionError);
  const auto too_big = random_points(kHeldKarpLimit + 1, 3);
  EXPECT_THROW(held_karp_tour(too_big), support::PreconditionError);
}

TEST(HeldKarpTest, SquarePlusCenterIsObvious) {
  const std::vector<Point2> pts{
      {0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}, {5.0, -1.0}};
  const Tour tour = held_karp_tour(pts);
  ASSERT_TRUE(is_valid_tour(tour, pts.size()));
  // Optimal: perimeter visiting 4 between 0 and 1 (detour via (5,-1)).
  const double expected =
      30.0 + 2.0 * std::hypot(5.0, 1.0);
  EXPECT_NEAR(tour_length(pts, tour), expected, 1e-9);
}

// Property: Held–Karp equals the permutation brute force.
class HeldKarpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HeldKarpPropertyTest, MatchesPermutationBruteForce) {
  const int n = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts =
        random_points(n, 7000 + static_cast<std::uint64_t>(n) * 31 + trial);
    const Tour tour = held_karp_tour(pts);
    ASSERT_TRUE(is_valid_tour(tour, pts.size()));
    ASSERT_NEAR(tour_length(pts, tour), brute_force_optimal(pts), 1e-9)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeldKarpPropertyTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

// Property: heuristics are never better than the optimum, and 2-opt gets
// within a modest factor on small instances.
TEST(HeuristicVsOptimalTest, HeuristicsBoundedByOptimum) {
  for (int trial = 0; trial < 15; ++trial) {
    const auto pts = random_points(11, 1234 + trial);
    const double optimal = tour_length(pts, held_karp_tour(pts));
    Tour heuristic = greedy_edge_tour(pts);
    improve_tour(pts, heuristic);
    const double improved = tour_length(pts, heuristic);
    ASSERT_GE(improved, optimal - 1e-9);
    ASSERT_LE(improved, optimal * 1.15)
        << "2-opt unusually weak on trial " << trial;
  }
}

}  // namespace
}  // namespace bc::tsp
