// Tests for 2-opt / Or-opt local search.

#include "tsp/improve.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tsp/construct.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

TEST(TwoOptTest, UncrossesASimpleCrossing) {
  const std::vector<Point2> square{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0},
                                   {0.0, 1.0}};
  Tour crossed{0, 2, 1, 3};
  const double gain = two_opt(square, crossed);
  EXPECT_GT(gain, 0.0);
  EXPECT_DOUBLE_EQ(tour_length(square, crossed), 4.0);
}

TEST(TwoOptTest, GainMatchesLengthReduction) {
  const auto pts = random_points(70, 7);
  Tour tour = nearest_neighbor_tour(pts, 0);
  const double before = tour_length(pts, tour);
  const double gain = two_opt(pts, tour);
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
  EXPECT_NEAR(tour_length(pts, tour), before - gain, 1e-6);
  EXPECT_GE(gain, 0.0);
}

TEST(TwoOptTest, ConvergedTourIsStable) {
  const auto pts = random_points(40, 11);
  Tour tour = nearest_neighbor_tour(pts, 0);
  two_opt(pts, tour);
  // Running again finds nothing.
  EXPECT_DOUBLE_EQ(two_opt(pts, tour), 0.0);
}

TEST(TwoOptTest, SmallToursAreNoops) {
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  Tour tour{0, 1, 2};
  EXPECT_DOUBLE_EQ(two_opt(pts, tour), 0.0);
  EXPECT_EQ(tour, (Tour{0, 1, 2}));
}

TEST(OrOptTest, RelocatesAStrandedPoint) {
  // Points on a line, but the tour visits one far point mid-sequence —
  // relocation fixes what a pure segment reversal cannot always express.
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}, {9.0, 0.0},
                                {2.0, 0.0}, {3.0, 0.0}, {10.0, 0.0}};
  Tour tour{0, 1, 2, 3, 4, 5};
  const double before = tour_length(pts, tour);
  const double gain = or_opt(pts, tour);
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
  EXPECT_GT(gain, 0.0);
  EXPECT_NEAR(tour_length(pts, tour), before - gain, 1e-9);
}

TEST(OrOptTest, GainIsConsistentOnRandomInstances) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_points(50, 900 + trial);
    Tour tour = nearest_neighbor_tour(pts, 0);
    const double before = tour_length(pts, tour);
    const double gain = or_opt(pts, tour);
    ASSERT_TRUE(is_valid_tour(tour, pts.size()));
    ASSERT_NEAR(tour_length(pts, tour), before - gain, 1e-6);
  }
}

TEST(ImproveTourTest, CombinedNeverWorseThanSinglePass) {
  const auto pts = random_points(80, 21);
  Tour two_opt_only = nearest_neighbor_tour(pts, 0);
  Tour combined = two_opt_only;
  two_opt(pts, two_opt_only);
  improve_tour(pts, combined);
  EXPECT_LE(tour_length(pts, combined) - 1e-9,
            tour_length(pts, two_opt_only));
  EXPECT_TRUE(is_valid_tour(combined, pts.size()));
}

TEST(ImproveTourTest, RespectsMaxPasses) {
  const auto pts = random_points(60, 31);
  Tour tour = nearest_neighbor_tour(pts, 0);
  ImproveOptions options;
  options.max_passes = 1;
  improve_tour(pts, tour, options);  // must terminate quickly and validly
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
}

}  // namespace
}  // namespace bc::tsp
