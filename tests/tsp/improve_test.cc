// Tests for 2-opt / Or-opt local search.

#include "tsp/improve.h"

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tsp/construct.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

TEST(TwoOptTest, UncrossesASimpleCrossing) {
  const std::vector<Point2> square{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0},
                                   {0.0, 1.0}};
  Tour crossed{0, 2, 1, 3};
  const double gain = two_opt(square, crossed);
  EXPECT_GT(gain, 0.0);
  EXPECT_DOUBLE_EQ(tour_length(square, crossed), 4.0);
}

TEST(TwoOptTest, GainMatchesLengthReduction) {
  const auto pts = random_points(70, 7);
  Tour tour = nearest_neighbor_tour(pts, 0);
  const double before = tour_length(pts, tour);
  const double gain = two_opt(pts, tour);
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
  EXPECT_NEAR(tour_length(pts, tour), before - gain, 1e-6);
  EXPECT_GE(gain, 0.0);
}

TEST(TwoOptTest, ConvergedTourIsStable) {
  const auto pts = random_points(40, 11);
  Tour tour = nearest_neighbor_tour(pts, 0);
  two_opt(pts, tour);
  // Running again finds nothing.
  EXPECT_DOUBLE_EQ(two_opt(pts, tour), 0.0);
}

TEST(TwoOptTest, SmallToursAreNoops) {
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  Tour tour{0, 1, 2};
  EXPECT_DOUBLE_EQ(two_opt(pts, tour), 0.0);
  EXPECT_EQ(tour, (Tour{0, 1, 2}));
}

TEST(OrOptTest, RelocatesAStrandedPoint) {
  // Points on a line, but the tour visits one far point mid-sequence —
  // relocation fixes what a pure segment reversal cannot always express.
  const std::vector<Point2> pts{{0.0, 0.0}, {1.0, 0.0}, {9.0, 0.0},
                                {2.0, 0.0}, {3.0, 0.0}, {10.0, 0.0}};
  Tour tour{0, 1, 2, 3, 4, 5};
  const double before = tour_length(pts, tour);
  const double gain = or_opt(pts, tour);
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
  EXPECT_GT(gain, 0.0);
  EXPECT_NEAR(tour_length(pts, tour), before - gain, 1e-9);
}

TEST(OrOptTest, GainIsConsistentOnRandomInstances) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_points(50, 900 + trial);
    Tour tour = nearest_neighbor_tour(pts, 0);
    const double before = tour_length(pts, tour);
    const double gain = or_opt(pts, tour);
    ASSERT_TRUE(is_valid_tour(tour, pts.size()));
    ASSERT_NEAR(tour_length(pts, tour), before - gain, 1e-6);
  }
}

TEST(ImproveTourTest, CombinedNeverWorseThanSinglePass) {
  const auto pts = random_points(80, 21);
  Tour two_opt_only = nearest_neighbor_tour(pts, 0);
  Tour combined = two_opt_only;
  two_opt(pts, two_opt_only);
  improve_tour(pts, combined);
  EXPECT_LE(tour_length(pts, combined) - 1e-9,
            tour_length(pts, two_opt_only));
  EXPECT_TRUE(is_valid_tour(combined, pts.size()));
}

TEST(ImproveTourTest, RespectsMaxPasses) {
  const auto pts = random_points(60, 31);
  Tour tour = nearest_neighbor_tour(pts, 0);
  ImproveOptions options;
  options.max_passes = 1;
  improve_tour(pts, tour, options);  // must terminate quickly and validly
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
}

// Differential corpus: on every pinned instance the neighbour-list
// improvers must return a valid tour that is never longer than what the
// naive full-scan reference reaches from the same start. Both searches end
// in full-neighbourhood local optima (the certification sweep guarantees
// that for the optimized path), but WHICH optimum each lands in depends on
// move order, so universal dominance is not a theorem — these instances
// are pinned seeds on which the optimized search wins with a clear margin
// (verified over a 160-instance sweep). A failure here means a behaviour
// change in the improvers, which must be re-audited for quality, not just
// speed.
struct DiffCase {
  std::size_t n;
  std::uint64_t seeds[8];
};

TEST(ImproveDifferentialTest, TwoOptNeverLongerThanReference) {
  constexpr DiffCase kCorpus[] = {
      {40, {1, 30, 15, 9, 26, 35, 33, 8}},
      {90, {15, 17, 6, 31, 22, 27, 35, 12}},
      {160, {25, 32, 1, 24, 9, 33, 31, 6}},
  };
  for (const DiffCase& c : kCorpus) {
    for (const std::uint64_t seed : c.seeds) {
      const auto pts = random_points(c.n, 4000 + 17 * c.n + seed);
      const Tour start = nearest_neighbor_tour(pts, 0);
      Tour fast = start;
      Tour naive = start;
      const double fast_gain = two_opt(pts, fast);
      const double naive_gain = two_opt_reference(pts, naive);
      ASSERT_TRUE(is_valid_tour(fast, pts.size()));
      ASSERT_NEAR(tour_length(pts, fast),
                  tour_length(pts, start) - fast_gain, 1e-6);
      ASSERT_LE(tour_length(pts, fast), tour_length(pts, naive) + 1e-9)
          << "n=" << c.n << " seed=" << seed
          << " naive_gain=" << naive_gain;
    }
  }
}

TEST(ImproveDifferentialTest, OrOptNeverLongerThanReference) {
  constexpr DiffCase kCorpus[] = {
      {40, {10, 20, 5, 8, 4, 13, 7, 19}},
      {90, {21, 33, 38, 31, 35, 0, 34, 28}},
      {160, {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  for (const DiffCase& c : kCorpus) {
    for (const std::uint64_t seed : c.seeds) {
      const auto pts = random_points(c.n, 4000 + 17 * c.n + seed);
      const Tour start = nearest_neighbor_tour(pts, 0);
      Tour fast = start;
      Tour naive = start;
      const double fast_gain = or_opt(pts, fast);
      or_opt_reference(pts, naive);
      ASSERT_TRUE(is_valid_tour(fast, pts.size()));
      ASSERT_NEAR(tour_length(pts, fast),
                  tour_length(pts, start) - fast_gain, 1e-6);
      ASSERT_LE(tour_length(pts, fast), tour_length(pts, naive) + 1e-9)
          << "n=" << c.n << " seed=" << seed;
    }
  }
}

TEST(ImproveDifferentialTest, RestrictedNeighborhoodStillCertifies) {
  // Even with an absurdly small candidate list the certification sweep
  // must leave a full 2-opt local optimum: running the reference afterwards
  // finds nothing.
  const auto pts = random_points(70, 77);
  Tour tour = nearest_neighbor_tour(pts, 0);
  ImproveOptions tiny;
  tiny.neighbors = 2;
  two_opt(pts, tour, tiny);
  EXPECT_DOUBLE_EQ(two_opt_reference(pts, tour), 0.0);
}

}  // namespace
}  // namespace bc::tsp
