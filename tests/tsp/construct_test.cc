// Tests for tour construction heuristics.

#include "tsp/construct.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  return pts;
}

TEST(NearestNeighborTest, ProducesValidTourFromAnyStart) {
  const auto pts = random_points(60, 1);
  for (const std::uint32_t start : {0u, 17u, 59u}) {
    const Tour tour = nearest_neighbor_tour(pts, start);
    ASSERT_TRUE(is_valid_tour(tour, pts.size()));
    EXPECT_EQ(tour.front(), start);
  }
}

TEST(NearestNeighborTest, GreedilyPicksClosest) {
  const std::vector<Point2> pts{{0.0, 0.0}, {10.0, 0.0}, {1.0, 0.0},
                                {5.0, 0.0}};
  const Tour tour = nearest_neighbor_tour(pts, 0);
  EXPECT_EQ(tour, (Tour{0, 2, 3, 1}));
}

TEST(NearestNeighborTest, ValidatesInput) {
  EXPECT_THROW(nearest_neighbor_tour({}, 0), support::PreconditionError);
  const std::vector<Point2> pts{{0.0, 0.0}};
  EXPECT_THROW(nearest_neighbor_tour(pts, 1), support::PreconditionError);
}

TEST(GreedyEdgeTest, ProducesValidTours) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 10u, 50u, 120u}) {
    const auto pts = random_points(n, 100 + n);
    const Tour tour = greedy_edge_tour(pts);
    ASSERT_TRUE(is_valid_tour(tour, n)) << "n=" << n;
  }
}

TEST(GreedyEdgeTest, UsuallyBeatsOrMatchesNearestNeighbor) {
  // Not guaranteed per-instance, so compare averaged over instances.
  double nn_total = 0.0;
  double ge_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_points(80, 500 + trial);
    nn_total += tour_length(pts, nearest_neighbor_tour(pts, 0));
    ge_total += tour_length(pts, greedy_edge_tour(pts));
  }
  EXPECT_LT(ge_total, nn_total);
}

TEST(GreedyEdgeTest, CoincidentPointsHandled) {
  const std::vector<Point2> pts{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0},
                                {1.0, 1.0}};
  const Tour tour = greedy_edge_tour(pts);
  EXPECT_TRUE(is_valid_tour(tour, pts.size()));
}

}  // namespace
}  // namespace bc::tsp
