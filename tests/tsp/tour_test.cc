// Tests for tour validation / measurement.

#include "tsp/tour.h"

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::tsp {
namespace {

using geometry::Point2;

const std::vector<Point2> kSquare{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0},
                                  {0.0, 1.0}};

TEST(TourValidationTest, AcceptsPermutations) {
  EXPECT_TRUE(is_valid_tour(Tour{0, 1, 2, 3}, 4));
  EXPECT_TRUE(is_valid_tour(Tour{3, 1, 0, 2}, 4));
  EXPECT_TRUE(is_valid_tour(Tour{}, 0));
}

TEST(TourValidationTest, RejectsBadTours) {
  EXPECT_FALSE(is_valid_tour(Tour{0, 1, 2}, 4));      // too short
  EXPECT_FALSE(is_valid_tour(Tour{0, 1, 2, 2}, 4));   // duplicate
  EXPECT_FALSE(is_valid_tour(Tour{0, 1, 2, 4}, 4));   // out of range
}

TEST(TourLengthTest, ClosedSquare) {
  EXPECT_DOUBLE_EQ(tour_length(kSquare, Tour{0, 1, 2, 3}), 4.0);
  // A crossing order is longer.
  EXPECT_GT(tour_length(kSquare, Tour{0, 2, 1, 3}), 4.0);
}

TEST(TourLengthTest, DegenerateTours) {
  EXPECT_DOUBLE_EQ(tour_length(kSquare, Tour{}), 0.0);
  EXPECT_DOUBLE_EQ(tour_length(kSquare, Tour{2}), 0.0);
  // Two points: out and back.
  EXPECT_DOUBLE_EQ(tour_length(kSquare, Tour{0, 1}), 2.0);
}

TEST(PathLengthTest, OpenPathSkipsClosingEdge) {
  EXPECT_DOUBLE_EQ(path_length(kSquare, Tour{0, 1, 2, 3}), 3.0);
  EXPECT_DOUBLE_EQ(path_length(kSquare, Tour{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(path_length(kSquare, Tour{0}), 0.0);
}

TEST(RotateToFrontTest, PreservesCyclicOrderAndLength) {
  Tour order{2, 0, 3, 1};
  const double before = tour_length(kSquare, order);
  rotate_to_front(order, 0);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order, (Tour{0, 3, 1, 2}));
  EXPECT_DOUBLE_EQ(tour_length(kSquare, order), before);
}

TEST(RotateToFrontTest, MissingIndexThrows) {
  Tour order{0, 1, 2};
  EXPECT_THROW(rotate_to_front(order, 9), support::PreconditionError);
}

}  // namespace
}  // namespace bc::tsp
