// Fail-fast semantics of the replan ladder: a budget that is already
// spent (expired deadline, depleted node cap, cancellation) must yield
// kBudgetExhausted *before* the first rung runs — burning a full ladder
// pass of doomed rungs would spend mission battery to rediscover a fact
// the meter already knows.

#include <gtest/gtest.h>

#include "net/deployment.h"
#include "obs/metrics.h"
#include "support/deadline.h"
#include "support/rng.h"
#include "tour/replan.h"

namespace bc {
namespace {

net::Deployment make_deployment(std::size_t n) {
  support::Rng rng(23);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

tour::ReplanRequest full_replan(const net::Deployment& deployment) {
  tour::ReplanRequest request;
  request.current_position = {500.0, 500.0};
  for (net::SensorId id = 0; id < deployment.size(); ++id) {
    request.remaining.push_back(id);
    request.deficits_j.push_back(1.0);
  }
  return request;
}

std::uint64_t rungs_attempted(const obs::MetricsRegistry& registry) {
  return registry.snapshot().counter("replan.rungs_attempted");
}

TEST(ReplanFailFastTest, DepletedNodeBudgetFailsBeforeAnyRung) {
  const net::Deployment d = make_deployment(30);
  tour::PlannerConfig config;
  config.bundle_radius = 120.0;

  support::Budget budget;
  budget.node_cap = 50;
  support::BudgetMeter meter(budget);
  while (meter.charge()) {
  }
  ASSERT_TRUE(meter.node_budget_depleted());

  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  auto result = tour::replan_tour(d, full_replan(d), config, {}, &meter);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kBudgetExhausted);
  EXPECT_EQ(rungs_attempted(registry), 0u)
      << "a depleted budget must not burn ladder rungs";
  EXPECT_EQ(registry.snapshot().counter("replan.budget_trips"), 1u);
}

TEST(ReplanFailFastTest, ExactlyAtNodeCapAlsoFailsFast) {
  // nodes == cap has not *tripped* yet (charge() trips strictly past the
  // cap), but every rung's first unit of work is doomed — the ladder must
  // treat at-cap as depleted, which is what node_budget_depleted() adds
  // over exhausted().
  const net::Deployment d = make_deployment(30);
  tour::PlannerConfig config;
  config.bundle_radius = 120.0;

  support::Budget budget;
  budget.node_cap = 64;
  support::BudgetMeter meter(budget);
  meter.charge(64);
  ASSERT_FALSE(meter.exhausted());
  ASSERT_TRUE(meter.node_budget_depleted());

  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  auto result = tour::replan_tour(d, full_replan(d), config, {}, &meter);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kBudgetExhausted);
  EXPECT_EQ(rungs_attempted(registry), 0u);
}

TEST(ReplanFailFastTest, ExpiredDeadlineFailsBeforeAnyRung) {
  const net::Deployment d = make_deployment(30);
  tour::PlannerConfig config;
  config.bundle_radius = 120.0;

  tour::ReplanOptions options;
  options.budget.deadline_s = 1e-9;  // expired by the first checkpoint

  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  auto result = tour::replan_tour(d, full_replan(d), config, options);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kBudgetExhausted);
  EXPECT_EQ(rungs_attempted(registry), 0u);
}

TEST(ReplanFailFastTest, CancelledTokenFailsBeforeAnyRung) {
  const net::Deployment d = make_deployment(30);
  tour::PlannerConfig config;
  config.bundle_radius = 120.0;

  tour::ReplanOptions options;
  options.budget.cancel.request_cancel();

  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  auto result = tour::replan_tour(d, full_replan(d), config, options);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kBudgetExhausted);
  EXPECT_EQ(rungs_attempted(registry), 0u);
}

TEST(ReplanFailFastTest, HealthyBudgetStillPlans) {
  const net::Deployment d = make_deployment(30);
  tour::PlannerConfig config;
  config.bundle_radius = 120.0;

  support::Budget budget;
  budget.node_cap = 50'000'000;
  support::BudgetMeter meter(budget);
  auto result = tour::replan_tour(d, full_replan(d), config, {}, &meter);
  ASSERT_TRUE(result.has_value()) << result.fault().message;
  EXPECT_TRUE(tour::plan_is_partition(d, result.value()));
}

}  // namespace
}  // namespace bc
