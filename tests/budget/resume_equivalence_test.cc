// Resume-equivalence tests: an interrupted, journaled sweep that resumes
// must reproduce the uninterrupted aggregate bit for bit, at any thread
// count. This is the in-process counterpart of the CI kill/resume job,
// which exercises the same guarantee across a real SIGKILL.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "support/atomic_file.h"
#include "support/parallel.h"
#include "tour/planner.h"

namespace bc::sim {
namespace {

// Fresh path for this test: TempDir persists across gtest invocations, so
// a leftover journal from a previous run must not leak into this one.
std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

ExperimentSpec small_spec(std::size_t runs) {
  ExperimentSpec spec;
  spec.make_deployment = uniform_factory(25, net::FieldSpec{});
  spec.algorithm = tour::Algorithm::kBc;
  spec.planner.bundle_radius = 60.0;
  spec.runs = runs;
  spec.base_seed = 77;
  return spec;
}

// Bitwise equality of two aggregates, field by field. Doubles are compared
// with ==, which is exactly what "bit for bit" demands here (no NaNs in
// metrics by construction).
void expect_identical(const AggregateMetrics& a, const AggregateMetrics& b) {
  const auto same = [](const support::RunningStat& x,
                       const support::RunningStat& y) {
    ASSERT_EQ(x.count(), y.count());
    ASSERT_EQ(x.mean(), y.mean());
    ASSERT_EQ(x.variance(), y.variance());
    ASSERT_EQ(x.min(), y.min());
    ASSERT_EQ(x.max(), y.max());
  };
  same(a.num_stops, b.num_stops);
  same(a.tour_length_m, b.tour_length_m);
  same(a.move_energy_j, b.move_energy_j);
  same(a.charge_time_s, b.charge_time_s);
  same(a.charge_energy_j, b.charge_energy_j);
  same(a.total_energy_j, b.total_energy_j);
  same(a.total_time_s, b.total_time_s);
  same(a.avg_charge_time_per_sensor_s, b.avg_charge_time_per_sensor_s);
  same(a.min_demand_fraction, b.min_demand_fraction);
}

TEST(ResumeEquivalenceTest, ResumableMatchesPlainRunner) {
  const ExperimentSpec spec = small_spec(10);
  const AggregateMetrics plain = run_experiment(spec);

  const std::string path = fresh_path("bc_resume_plain.ckpt");
  auto journal = CheckpointJournal::open(path, "equivalence");
  ASSERT_TRUE(journal.has_value());
  ExperimentControl control;
  control.journal = &journal.value();
  control.cell_prefix = "cell";
  control.chunk = 3;  // chunking must not affect the aggregate
  const auto resumable = run_experiment_resumable(spec, control);
  ASSERT_TRUE(resumable.has_value());
  expect_identical(resumable.value(), plain);
  EXPECT_EQ(journal.value().size(), spec.runs);
}

TEST(ResumeEquivalenceTest, InterruptedThenResumedIsBitIdentical) {
  const std::string path = fresh_path("bc_resume_partial.ckpt");
  const ExperimentSpec full = small_spec(12);

  // "Interrupt" after 5 runs: journal a prefix of the sweep, exactly what
  // a killed process leaves behind (cells are keyed by run index alone).
  {
    auto journal = CheckpointJournal::open(path, "kill-resume");
    ASSERT_TRUE(journal.has_value());
    ExperimentControl control;
    control.journal = &journal.value();
    control.cell_prefix = "cell";
    control.chunk = 2;
    ASSERT_TRUE(
        run_experiment_resumable(small_spec(5), control).has_value());
    EXPECT_EQ(journal.value().size(), 5u);
  }

  // Resume the full sweep from the journal on disk: runs 0-4 are decoded,
  // 5-11 computed fresh. The aggregate must match an uninterrupted run
  // bit for bit — at several thread counts, each resuming from the same
  // 5-cell journal (a resume fills the file, so restore it in between).
  const std::string partial_journal = support::read_file(path).value();
  const AggregateMetrics uninterrupted = run_experiment(full);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    support::set_thread_count(threads);
    ASSERT_TRUE(support::write_file_atomic(path, partial_journal).has_value());
    auto journal = CheckpointJournal::open(path, "kill-resume");
    ASSERT_TRUE(journal.has_value());
    EXPECT_EQ(journal.value().size(), 5u);
    ExperimentControl control;
    control.journal = &journal.value();
    control.cell_prefix = "cell";
    const auto resumed = run_experiment_resumable(full, control);
    ASSERT_TRUE(resumed.has_value()) << "threads=" << threads;
    expect_identical(resumed.value(), uninterrupted);
  }
  support::set_thread_count(0);
}

TEST(ResumeEquivalenceTest, CancelledSweepFlushesAndReportsBudgetFault) {
  const std::string path = fresh_path("bc_resume_cancel.ckpt");
  auto journal = CheckpointJournal::open(path, "cancelled");
  ASSERT_TRUE(journal.has_value());
  ExperimentControl control;
  control.journal = &journal.value();
  control.cell_prefix = "cell";
  control.cancel.request_cancel();  // trip at the first chunk boundary
  const auto result = run_experiment_resumable(small_spec(8), control);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kBudgetExhausted);
  EXPECT_NE(result.fault().message.find("cancelled"), std::string::npos);
  // The journal was flushed on the way out (header present on disk).
  EXPECT_TRUE(support::file_exists(path));
}

TEST(ResumeEquivalenceTest, CorruptJournaledCellFaultsInsteadOfAveraging) {
  const std::string path = fresh_path("bc_resume_poison.ckpt");
  auto journal = CheckpointJournal::open(path, "poison");
  ASSERT_TRUE(journal.has_value());
  // A well-formed record whose payload is not a metrics encoding.
  journal.value().record(cell_key("cell", 0), "not-metrics");
  ExperimentControl control;
  control.journal = &journal.value();
  control.cell_prefix = "cell";
  const auto result = run_experiment_resumable(small_spec(4), control);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.fault().kind, support::FaultKind::kInvalidInput);
}

}  // namespace
}  // namespace bc::sim
