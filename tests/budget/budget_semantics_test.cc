// Budget-semantics tests: the anytime contract (a tripped budget yields a
// valid, possibly suboptimal answer, never a hang or a crash) and the
// determinism contract (node-cap cutoffs are bit-identical at every
// thread count; only wall-clock/cancel cutoffs may vary).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bundle/candidates.h"
#include "bundle/exact_cover.h"
#include "net/deployment.h"
#include "sim/checkpoint.h"
#include "sim/evaluate.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tour/plan.h"
#include "tour/planner.h"
#include "tour/replan.h"

namespace bc {
namespace {

net::Deployment make_deployment(std::size_t n, std::uint64_t seed = 11) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(BudgetSemanticsTest, TinyNodeBudgetYieldsValidSuboptimalCover) {
  const net::Deployment d = make_deployment(40);
  const double r = 120.0;
  const std::vector<bundle::Bundle> candidates =
      bundle::enumerate_candidates(d, r);

  bundle::ExactCoverOptions unlimited;
  const auto full = bundle::exact_cover_anytime(d, candidates, unlimited);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(full.value().optimal);

  bundle::ExactCoverOptions tiny;
  tiny.budget.node_cap = 3;  // trips almost immediately
  const auto capped = bundle::exact_cover_anytime(d, candidates, tiny);
  ASSERT_TRUE(capped.has_value());
  const bundle::CoverSolution& solution = capped.value();
  EXPECT_FALSE(solution.optimal);
  EXPECT_EQ(solution.trip, support::BudgetTrip::kNodeCap);
  // The incumbent is always a full cover — the greedy seed guarantees it.
  tour::ChargingPlan as_plan;
  as_plan.depot = d.depot();
  for (const bundle::Bundle& b : solution.bundles) {
    as_plan.stops.push_back({b.anchor, b.members});
  }
  EXPECT_TRUE(tour::plan_is_partition(d, as_plan));
  // Suboptimal means at-least-as-many bundles, never fewer.
  EXPECT_GE(solution.bundles.size(), full.value().bundles.size());
}

TEST(BudgetSemanticsTest, EveryPlannerStaysAPartitionUnderAnyBudget) {
  const net::Deployment d = make_deployment(60);
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt, tour::Algorithm::kTspn}) {
    for (const std::size_t cap : {std::size_t{1}, std::size_t{50},
                                  std::size_t{5000}}) {
      tour::PlannerConfig config;
      config.bundle_radius = 60.0;
      config.budget.node_cap = cap;
      const tour::ChargingPlan plan =
          tour::plan_charging_tour(d, algorithm, config);
      EXPECT_TRUE(tour::plan_is_partition(d, plan))
          << to_string(algorithm) << " cap=" << cap;
    }
  }
}

TEST(BudgetSemanticsTest, PreCancelledBudgetStillYieldsValidPlans) {
  const net::Deployment d = make_deployment(50);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  config.budget.cancel.request_cancel();
  for (const auto algorithm : {tour::Algorithm::kBc, tour::Algorithm::kSc,
                               tour::Algorithm::kBcOpt}) {
    const tour::ChargingPlan plan =
        tour::plan_charging_tour(d, algorithm, config);
    EXPECT_TRUE(tour::plan_is_partition(d, plan)) << to_string(algorithm);
  }
}

// The exact serialized metrics of a node-capped plan, for byte-for-byte
// comparison across thread counts.
std::string capped_plan_fingerprint(std::size_t node_cap) {
  const net::Deployment d = make_deployment(70, /*seed=*/23);
  tour::PlannerConfig config;
  config.bundle_radius = 70.0;
  config.budget.node_cap = node_cap;
  const tour::ChargingPlan plan =
      tour::plan_charging_tour(d, tour::Algorithm::kBcOpt, config);
  std::string fingerprint = sim::encode_metrics(
      sim::evaluate_plan(d, plan, sim::EvaluationConfig{}));
  for (const tour::Stop& stop : plan.stops) {
    fingerprint += "|";
    for (const net::SensorId id : stop.members) {
      fingerprint += std::to_string(id) + ",";
    }
  }
  return fingerprint;
}

TEST(BudgetSemanticsTest, NodeCapCutoffsAreBitIdenticalAcrossThreadCounts) {
  for (const std::size_t cap : {std::size_t{10}, std::size_t{1000},
                                std::size_t{100000}}) {
    support::set_thread_count(1);
    const std::string serial = capped_plan_fingerprint(cap);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      support::set_thread_count(threads);
      EXPECT_EQ(capped_plan_fingerprint(cap), serial)
          << "cap=" << cap << " threads=" << threads;
    }
  }
  support::set_thread_count(0);  // restore the default for other tests
}

TEST(BudgetSemanticsTest, ReplanLadderReportsBudgetExhausted) {
  const net::Deployment d = make_deployment(30);
  tour::ReplanRequest request;
  request.current_position = {100.0, 100.0};
  for (std::size_t id = 0; id < d.size(); ++id) {
    request.remaining.push_back(id);
    request.deficits_j.push_back(1.0);
  }
  tour::PlannerConfig config;
  config.bundle_radius = 50.0;

  tour::ReplanOptions options;
  options.budget.cancel.request_cancel();  // tripped before the first rung
  const auto replanned = tour::replan_tour(d, request, config, options);
  ASSERT_FALSE(replanned.has_value());
  EXPECT_EQ(replanned.fault().kind, support::FaultKind::kBudgetExhausted);

  // Without the budget the same request succeeds — the fault above came
  // from the trip, not the instance.
  const auto unbudgeted = tour::replan_tour(d, request, config);
  ASSERT_TRUE(unbudgeted.has_value());
  EXPECT_FALSE(unbudgeted.value().stops.empty());
}

}  // namespace
}  // namespace bc
