// Tests for the CSS (Combine-Skip-Substitute) baseline planner.

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

using geometry::Box2;
using geometry::Point2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(CssPlannerTest, StopsKeepMembersWithinRange) {
  const net::Deployment d = random_deployment(80, 1);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  const ChargingPlan plan = plan_css(d, config);
  ASSERT_TRUE(plan_is_partition(d, plan));
  for (const Stop& stop : plan.stops) {
    ASSERT_LE(stop_max_distance(d, stop), config.bundle_radius + 1e-6);
  }
}

TEST(CssPlannerTest, ShortensTheTourVersusSc) {
  const net::Deployment d = random_deployment(100, 2);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  const ChargingPlan sc = plan_sc(d, config);
  const ChargingPlan css = plan_css(d, config);
  EXPECT_LT(plan_tour_length(css), plan_tour_length(sc));
  EXPECT_LE(css.stops.size(), sc.stops.size());
}

TEST(CssPlannerTest, LargerRangeMeansShorterOrEqualTours) {
  // Averaged over seeds (per-instance monotonicity is not guaranteed for
  // a tour-order-constrained heuristic).
  double short_range_total = 0.0;
  double long_range_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const net::Deployment d = random_deployment(60, 10 + seed);
    PlannerConfig config;
    config.bundle_radius = 10.0;
    short_range_total += plan_tour_length(plan_css(d, config));
    config.bundle_radius = 60.0;
    long_range_total += plan_tour_length(plan_css(d, config));
  }
  EXPECT_LT(long_range_total, short_range_total);
}

TEST(CssPlannerTest, CombinesCoLocatedSensorsIntoOneStop) {
  // A 5 m blob far from the depot plus one sensor on the way: the blob is
  // tour-consecutive mid-tour, so CSS must merge it into a single stop.
  // (A blob adjacent to the depot may legitimately be split, because the
  // tour is not cyclic across the depot.)
  const net::Deployment d(
      {{800.0, 800.0}, {803.0, 800.0}, {800.0, 803.0}, {100.0, 100.0}},
      Box2{{0.0, 0.0}, {1000.0, 1000.0}}, {0.0, 0.0}, 2.0);
  PlannerConfig config;
  config.bundle_radius = 10.0;
  const ChargingPlan plan = plan_css(d, config);
  EXPECT_EQ(plan.stops.size(), 2u);
}

TEST(CssPlannerTest, RequiresPositiveRadius) {
  const net::Deployment d = random_deployment(5, 3);
  PlannerConfig config;
  config.bundle_radius = 0.0;
  EXPECT_THROW(plan_css(d, config), support::PreconditionError);
}

TEST(CssPlannerTest, SubstituteNeverLengthensTheTour) {
  // CSS with substitution must not be longer than CSS frozen right after
  // combining; approximate by checking CSS <= SC with merged counts equal.
  const net::Deployment d = random_deployment(70, 4);
  PlannerConfig config;
  config.bundle_radius = 20.0;
  const ChargingPlan css = plan_css(d, config);
  // All stops still within the field bounding box (slides are interior).
  for (const Stop& stop : css.stops) {
    EXPECT_GE(stop.position.x, d.field().lo.x - config.bundle_radius);
    EXPECT_LE(stop.position.x, d.field().hi.x + config.bundle_radius);
  }
}

}  // namespace
}  // namespace bc::tour
