// Tests for the simulated-annealing joint optimiser.

#include "tour/anneal.h"

#include <gtest/gtest.h>

#include "sim/evaluate.h"
#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

struct Fixture {
  net::Deployment deployment;
  ChargingPlan plan;
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
};

Fixture make_fixture(std::size_t n = 60, std::uint64_t seed = 1,
                     double radius = 50.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  net::Deployment d = net::uniform_random_deployment(n, spec, rng);
  PlannerConfig config;
  config.bundle_radius = radius;
  ChargingPlan plan = plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

AnnealOptions quick_options() {
  AnnealOptions options;
  options.iterations = 4000;
  return options;
}

TEST(AnnealTest, ObjectiveMatchesEvaluator) {
  const Fixture f = make_fixture();
  const double direct =
      plan_energy_j(f.deployment, f.plan, f.charging, f.movement);
  const sim::PlanMetrics m =
      sim::evaluate_plan(f.deployment, f.plan, sim::EvaluationConfig{});
  EXPECT_NEAR(direct, m.total_energy_j, 1e-6);
}

TEST(AnnealTest, NeverReturnsAWorsePlan) {
  const Fixture f = make_fixture();
  const AnnealResult result = anneal_plan(f.deployment, f.plan, f.charging,
                                          f.movement, quick_options());
  EXPECT_LE(result.best_energy_j, result.initial_energy_j + 1e-6);
  EXPECT_NEAR(result.best_energy_j,
              plan_energy_j(f.deployment, result.plan, f.charging,
                            f.movement),
              1e-6);
}

TEST(AnnealTest, OutputIsAFeasiblePartition) {
  const Fixture f = make_fixture(50, 3);
  const AnnealResult result = anneal_plan(f.deployment, f.plan, f.charging,
                                          f.movement, quick_options());
  ASSERT_TRUE(plan_is_partition(f.deployment, result.plan));
  EXPECT_TRUE(sim::plan_is_feasible(f.deployment, result.plan,
                                    sim::EvaluationConfig{}));
}

TEST(AnnealTest, ActuallyImprovesABcPlan) {
  // BC leaves movement on the table (SED anchors, frozen order); a few
  // thousand annealing steps must find some of it.
  const Fixture f = make_fixture(80, 5);
  AnnealOptions options;
  options.iterations = 12000;
  const AnnealResult result =
      anneal_plan(f.deployment, f.plan, f.charging, f.movement, options);
  EXPECT_LT(result.best_energy_j, result.initial_energy_j * 0.995);
  EXPECT_GT(result.accepted_moves, 0u);
}

TEST(AnnealTest, DeterministicForFixedSeed) {
  const Fixture f = make_fixture(40, 7);
  const AnnealResult a = anneal_plan(f.deployment, f.plan, f.charging,
                                     f.movement, quick_options());
  const AnnealResult b = anneal_plan(f.deployment, f.plan, f.charging,
                                     f.movement, quick_options());
  EXPECT_DOUBLE_EQ(a.best_energy_j, b.best_energy_j);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
}

TEST(AnnealTest, ZeroTemperatureIsPureDescent) {
  const Fixture f = make_fixture(40, 9);
  AnnealOptions options = quick_options();
  options.initial_temperature_fraction = 0.0;
  const AnnealResult result =
      anneal_plan(f.deployment, f.plan, f.charging, f.movement, options);
  EXPECT_LE(result.best_energy_j, result.initial_energy_j + 1e-9);
}

TEST(AnnealTest, ValidatesInput) {
  const Fixture f = make_fixture(10, 11);
  ChargingPlan broken = f.plan;
  broken.stops[0].members.clear();
  EXPECT_THROW(anneal_plan(f.deployment, broken, f.charging, f.movement,
                           quick_options()),
               support::PreconditionError);
  AnnealOptions bad = quick_options();
  bad.cooling = 0.0;
  EXPECT_THROW(
      anneal_plan(f.deployment, f.plan, f.charging, f.movement, bad),
      support::PreconditionError);
}

TEST(AnnealTest, BoundsBcOptHeadroom) {
  // The reference use case: annealing from BC-OPT quantifies how much the
  // Algorithm 3 decomposition leaves behind. It must never be negative,
  // and on these sizes is typically a few percent.
  const Fixture f = make_fixture(60, 13);
  PlannerConfig config;
  config.bundle_radius = 50.0;
  const ChargingPlan opt = plan_bc_opt(f.deployment, config);
  AnnealOptions options;
  options.iterations = 8000;
  const AnnealResult result =
      anneal_plan(f.deployment, opt, f.charging, f.movement, options);
  EXPECT_LE(result.best_energy_j, result.initial_energy_j + 1e-6);
}

}  // namespace
}  // namespace bc::tour
