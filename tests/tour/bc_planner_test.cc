// Tests for the BC (bundle charging) planner.

#include <gtest/gtest.h>

#include "geometry/minidisk.h"
#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(BcPlannerTest, StopsAreSedAnchorsOfTheirMembers) {
  const net::Deployment d = random_deployment(90, 1);
  PlannerConfig config;
  config.bundle_radius = 50.0;
  const ChargingPlan plan = plan_bc(d, config);
  ASSERT_TRUE(plan_is_partition(d, plan));
  for (const Stop& stop : plan.stops) {
    std::vector<geometry::Point2> pts;
    for (const net::SensorId id : stop.members) {
      pts.push_back(d.sensor(id).position);
    }
    const auto sed = geometry::smallest_enclosing_disk(pts);
    ASSERT_TRUE(geometry::almost_equal(stop.position, sed.center, 1e-6));
    ASSERT_LE(sed.radius, config.bundle_radius + 1e-6);
  }
}

TEST(BcPlannerTest, DenseNetworksGetFewerStopsThanSensors) {
  const net::Deployment d = random_deployment(200, 2);
  PlannerConfig config;
  config.bundle_radius = 60.0;
  const ChargingPlan plan = plan_bc(d, config);
  EXPECT_LT(plan.stops.size(), d.size() / 2);
}

TEST(BcPlannerTest, TinyRadiusDegeneratesToSc) {
  const net::Deployment d = random_deployment(40, 3);
  PlannerConfig config;
  config.bundle_radius = 1e-3;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan sc = plan_sc(d, config);
  EXPECT_EQ(bc.stops.size(), sc.stops.size());
  EXPECT_NEAR(plan_tour_length(bc), plan_tour_length(sc), 1e-6);
}

TEST(BcPlannerTest, GeneratorKindIsHonoured) {
  const net::Deployment d = random_deployment(60, 4);
  PlannerConfig config;
  config.bundle_radius = 40.0;
  config.generator.kind = bundle::GeneratorKind::kGrid;
  const ChargingPlan grid_plan = plan_bc(d, config);
  config.generator.kind = bundle::GeneratorKind::kGreedy;
  const ChargingPlan greedy_plan = plan_bc(d, config);
  ASSERT_TRUE(plan_is_partition(d, grid_plan));
  ASSERT_TRUE(plan_is_partition(d, greedy_plan));
  // Greedy needs no more stops than the grid on average-sized instances;
  // allow equality.
  EXPECT_LE(greedy_plan.stops.size(), grid_plan.stops.size() + 2);
}

TEST(BcPlannerTest, RequiresPositiveRadius) {
  const net::Deployment d = random_deployment(5, 5);
  PlannerConfig config;
  config.bundle_radius = -1.0;
  EXPECT_THROW(plan_bc(d, config), support::PreconditionError);
}

TEST(BcPlannerTest, TourLengthShrinksWithRadiusOnAverage) {
  double small_total = 0.0;
  double large_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const net::Deployment d = random_deployment(120, 20 + seed);
    PlannerConfig config;
    config.bundle_radius = 5.0;
    small_total += plan_tour_length(plan_bc(d, config));
    config.bundle_radius = 80.0;
    large_total += plan_tour_length(plan_bc(d, config));
  }
  EXPECT_LT(large_total, small_total);
}

}  // namespace
}  // namespace bc::tour
