// Tests for the BC-OPT planner (Algorithm 3).

#include <gtest/gtest.h>

#include "sim/evaluate.h"
#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

double total_energy(const net::Deployment& d, const ChargingPlan& plan) {
  return sim::evaluate_plan(d, plan, sim::EvaluationConfig{}).total_energy_j;
}

TEST(BcOptPlannerTest, NeverWorseThanBc) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const net::Deployment d = random_deployment(100, seed);
    for (const double r : {10.0, 40.0, 80.0}) {
      PlannerConfig config;
      config.bundle_radius = r;
      const ChargingPlan bc = plan_bc(d, config);
      const ChargingPlan opt = plan_bc_opt(d, config);
      ASSERT_LE(total_energy(d, opt), total_energy(d, bc) + 1e-6)
          << "seed=" << seed << " r=" << r;
    }
  }
}

TEST(BcOptPlannerTest, ExactEvalNeverWorseThanBcEither) {
  const net::Deployment d = random_deployment(80, 5);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  config.opt.exact_charging_eval = true;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan opt = plan_bc_opt(d, config);
  EXPECT_LE(total_energy(d, opt), total_energy(d, bc) + 1e-6);
}

TEST(BcOptPlannerTest, KeepsTheAssignmentFixed) {
  // Algorithm 3 relocates anchors but never reassigns sensors.
  const net::Deployment d = random_deployment(70, 6);
  PlannerConfig config;
  config.bundle_radius = 40.0;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan opt = plan_bc_opt(d, config);
  ASSERT_EQ(bc.stops.size(), opt.stops.size());
  for (std::size_t i = 0; i < bc.stops.size(); ++i) {
    ASSERT_EQ(bc.stops[i].members, opt.stops[i].members);
  }
  ASSERT_TRUE(plan_is_partition(d, opt));
}

TEST(BcOptPlannerTest, ShortensTheTour) {
  // The whole point of the displacement: trading charging efficiency for
  // tour length. Under the default (cheap-charging) profile the tour must
  // shrink on dense instances.
  const net::Deployment d = random_deployment(150, 7);
  PlannerConfig config;
  config.bundle_radius = 20.0;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan opt = plan_bc_opt(d, config);
  EXPECT_LT(plan_tour_length(opt), plan_tour_length(bc));
}

TEST(BcOptPlannerTest, RemainsFeasible) {
  const net::Deployment d = random_deployment(60, 8);
  PlannerConfig config;
  config.bundle_radius = 50.0;
  const ChargingPlan opt = plan_bc_opt(d, config);
  sim::EvaluationConfig eval;
  EXPECT_TRUE(sim::plan_is_feasible(d, opt, eval));
}

TEST(BcOptPlannerTest, MaxDisplacementOverrideLimitsMoves) {
  const net::Deployment d = random_deployment(60, 9);
  PlannerConfig config;
  config.bundle_radius = 20.0;
  config.opt.max_displacement_m = 0.5;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan opt = plan_bc_opt(d, config);
  for (std::size_t i = 0; i < bc.stops.size(); ++i) {
    ASSERT_LE(geometry::distance(bc.stops[i].position, opt.stops[i].position),
              0.5 + 1e-9);
  }
}

TEST(BcOptPlannerTest, ExpensiveChargingFreezesAnchors) {
  // With a very high charger draw, any displacement loses energy, so
  // BC-OPT must keep every SED anchor (conservative evaluation).
  const net::Deployment d = random_deployment(50, 10);
  PlannerConfig config;
  config.bundle_radius = 20.0;
  config.charging = charging::ChargingModel(36.0, 30.0, 3.0, 3000.0);
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan opt = plan_bc_opt(d, config);
  for (std::size_t i = 0; i < bc.stops.size(); ++i) {
    ASSERT_LE(geometry::distance(bc.stops[i].position, opt.stops[i].position),
              1e-9);
  }
}

TEST(BcOptPlannerTest, ValidatesOptions) {
  const net::Deployment d = random_deployment(10, 11);
  PlannerConfig config;
  config.opt.radius_steps = 0;
  EXPECT_THROW(plan_bc_opt(d, config), support::PreconditionError);
}

}  // namespace
}  // namespace bc::tour
