// Tests for the shared stop-ordering helper.

#include "tour/route_util.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::tour {
namespace {

using geometry::Point2;

std::vector<Stop> stops_at(const std::vector<Point2>& positions) {
  std::vector<Stop> stops;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    stops.push_back(Stop{positions[i], {static_cast<net::SensorId>(i)}});
  }
  return stops;
}

double closed_length(Point2 depot, const std::vector<Stop>& stops) {
  ChargingPlan plan;
  plan.depot = depot;
  plan.stops = stops;
  return plan_tour_length(plan);
}

TEST(RouteUtilTest, SmallCountsAreNoops) {
  std::vector<Stop> empty;
  order_stops_by_tsp({0.0, 0.0}, empty, tsp::SolverOptions{});
  EXPECT_TRUE(empty.empty());
  std::vector<Stop> one = stops_at({{5.0, 5.0}});
  order_stops_by_tsp({0.0, 0.0}, one, tsp::SolverOptions{});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].position, (Point2{5.0, 5.0}));
}

TEST(RouteUtilTest, PreservesTheStopMultiset) {
  support::Rng rng(3);
  std::vector<Point2> positions;
  for (int i = 0; i < 20; ++i) {
    positions.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  std::vector<Stop> stops = stops_at(positions);
  order_stops_by_tsp({0.0, 0.0}, stops, tsp::SolverOptions{});
  ASSERT_EQ(stops.size(), positions.size());
  std::vector<net::SensorId> members;
  for (const Stop& s : stops) members.push_back(s.members[0]);
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    ASSERT_EQ(members[i], i);
  }
}

TEST(RouteUtilTest, OrderingBeatsIdentityOrder) {
  support::Rng rng(7);
  std::vector<Point2> positions;
  for (int i = 0; i < 40; ++i) {
    positions.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  const Point2 depot{0.0, 0.0};
  std::vector<Stop> ordered = stops_at(positions);
  const double naive = closed_length(depot, ordered);
  order_stops_by_tsp(depot, ordered, tsp::SolverOptions{});
  EXPECT_LT(closed_length(depot, ordered), naive);
}

TEST(RouteUtilTest, SmallInstancesAreOrderedOptimally) {
  // Four collinear stops: the optimal depot tour visits them in line
  // order (out and back).
  const Point2 depot{0.0, 0.0};
  std::vector<Stop> stops =
      stops_at({{30.0, 0.0}, {10.0, 0.0}, {40.0, 0.0}, {20.0, 0.0}});
  order_stops_by_tsp(depot, stops, tsp::SolverOptions{});
  EXPECT_DOUBLE_EQ(closed_length(depot, stops), 80.0);
}

TEST(RouteUtilTest, DeterministicDirectionNormalisation) {
  support::Rng rng(11);
  std::vector<Point2> positions;
  for (int i = 0; i < 15; ++i) {
    positions.push_back({rng.uniform(0, 500), rng.uniform(0, 500)});
  }
  std::vector<Stop> a = stops_at(positions);
  std::vector<Stop> b = stops_at(positions);
  order_stops_by_tsp({0.0, 0.0}, a, tsp::SolverOptions{});
  order_stops_by_tsp({0.0, 0.0}, b, tsp::SolverOptions{});
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].members, b[i].members);
  }
}

}  // namespace
}  // namespace bc::tour
