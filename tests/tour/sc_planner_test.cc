// Tests for the SC (single charging) baseline planner.

#include <gtest/gtest.h>

#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

using geometry::Point2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(ScPlannerTest, OneStopPerSensorAtItsPosition) {
  const net::Deployment d = random_deployment(40, 1);
  const ChargingPlan plan = plan_sc(d, PlannerConfig{});
  ASSERT_EQ(plan.stops.size(), d.size());
  for (const Stop& stop : plan.stops) {
    ASSERT_EQ(stop.members.size(), 1u);
    ASSERT_EQ(stop.position, d.sensor(stop.members[0]).position);
  }
}

TEST(ScPlannerTest, ZeroChargingDistance) {
  const net::Deployment d = random_deployment(30, 2);
  const ChargingPlan plan = plan_sc(d, PlannerConfig{});
  for (const Stop& stop : plan.stops) {
    ASSERT_DOUBLE_EQ(stop_max_distance(d, stop), 0.0);
  }
}

TEST(ScPlannerTest, TourIsLocallyOptimalOrdering) {
  // SC's stop order comes from the shared TSP solver: its closed tour
  // through the depot should beat a naive id-order tour on random fields.
  const net::Deployment d = random_deployment(60, 3);
  const ChargingPlan plan = plan_sc(d, PlannerConfig{});
  ChargingPlan naive = plan;
  naive.stops.clear();
  for (const net::Sensor& s : d.sensors()) {
    naive.stops.push_back(Stop{s.position, {s.id}});
  }
  EXPECT_LT(plan_tour_length(plan), plan_tour_length(naive));
}

TEST(ScPlannerTest, IgnoresBundleRadius) {
  const net::Deployment d = random_deployment(20, 4);
  PlannerConfig small;
  small.bundle_radius = 1.0;
  PlannerConfig large;
  large.bundle_radius = 500.0;
  const ChargingPlan a = plan_sc(d, small);
  const ChargingPlan b = plan_sc(d, large);
  ASSERT_EQ(a.stops.size(), b.stops.size());
  for (std::size_t i = 0; i < a.stops.size(); ++i) {
    ASSERT_EQ(a.stops[i].position, b.stops[i].position);
  }
}

}  // namespace
}  // namespace bc::tour
