// Tests for the TSPN (reach-only) baseline planner.

#include <gtest/gtest.h>

#include "sim/evaluate.h"
#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(TspnPlannerTest, ProducesAFeasiblePartition) {
  const net::Deployment d = random_deployment(80, 1);
  PlannerConfig config;
  config.bundle_radius = 50.0;
  const ChargingPlan plan = plan_tspn(d, config);
  EXPECT_EQ(plan.algorithm, "TSPN");
  ASSERT_TRUE(plan_is_partition(d, plan));
  EXPECT_TRUE(sim::plan_is_feasible(d, plan, sim::EvaluationConfig{}));
}

TEST(TspnPlannerTest, StopsStayWithinTheirNeighbourhood) {
  // Every stop remains within r of its bundle's disk centre, so every
  // member is within 2r of the stop.
  const net::Deployment d = random_deployment(90, 2);
  PlannerConfig config;
  config.bundle_radius = 40.0;
  const ChargingPlan bc = plan_bc(d, config);
  const ChargingPlan tspn = plan_tspn(d, config);
  ASSERT_EQ(bc.stops.size(), tspn.stops.size());
  for (std::size_t i = 0; i < bc.stops.size(); ++i) {
    ASSERT_LE(geometry::distance(bc.stops[i].position,
                                 tspn.stops[i].position),
              config.bundle_radius + 1e-6);
    ASSERT_LE(stop_max_distance(d, tspn.stops[i]),
              2.0 * config.bundle_radius + 1e-6);
  }
}

TEST(TspnPlannerTest, TourIsNeverLongerThanBc) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const net::Deployment d = random_deployment(100, seed);
    PlannerConfig config;
    config.bundle_radius = 60.0;
    EXPECT_LE(plan_tour_length(plan_tspn(d, config)),
              plan_tour_length(plan_bc(d, config)) + 1e-6)
        << "seed=" << seed;
  }
}

TEST(TspnPlannerTest, PaysMoreChargingTimeThanBc) {
  // The paper's §II criticism quantified: reach-only stops are farther
  // from their sensors, so total charging time exceeds BC's.
  const net::Deployment d = random_deployment(120, 6);
  PlannerConfig config;
  config.bundle_radius = 50.0;
  const sim::EvaluationConfig eval;
  const auto bc = sim::evaluate_plan(d, plan_bc(d, config), eval);
  const auto tspn = sim::evaluate_plan(d, plan_tspn(d, config), eval);
  EXPECT_GT(tspn.charge_time_s, bc.charge_time_s);
  EXPECT_LT(tspn.tour_length_m, bc.tour_length_m);
}

TEST(TspnPlannerTest, BcOptBeatsTspnOnTotalEnergy) {
  // BC-OPT makes the same move (sliding stops toward the tour) but
  // energy-aware; it must never lose to the blind version on average.
  double tspn_total = 0.0;
  double opt_total = 0.0;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const net::Deployment d = random_deployment(100, seed);
    PlannerConfig config;
    config.bundle_radius = 40.0;
    const sim::EvaluationConfig eval;
    tspn_total +=
        sim::evaluate_plan(d, plan_tspn(d, config), eval).total_energy_j;
    opt_total +=
        sim::evaluate_plan(d, plan_bc_opt(d, config), eval).total_energy_j;
  }
  EXPECT_LT(opt_total, tspn_total);
}

TEST(TspnPlannerTest, ChordCrossingStopsLandOnTheChord) {
  // Three collinear bundles: the middle disk is pierced by the leg
  // between its neighbours, so its stop lies on that line.
  const net::Deployment d(
      {{200.0, 500.0}, {500.0, 500.0}, {800.0, 500.0}},
      geometry::Box2{{0.0, 0.0}, {1000.0, 1000.0}}, {200.0, 500.0}, 2.0);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  const ChargingPlan plan = plan_tspn(d, config);
  for (const Stop& stop : plan.stops) {
    EXPECT_NEAR(stop.position.y, 500.0, 1e-6);
  }
}

TEST(TspnPlannerTest, DispatchesThroughTheFacade) {
  const net::Deployment d = random_deployment(30, 20);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  const ChargingPlan plan =
      plan_charging_tour(d, Algorithm::kTspn, config);
  EXPECT_EQ(plan.algorithm, "TSPN");
  EXPECT_EQ(to_string(Algorithm::kTspn), "TSPN");
}

TEST(TspnPlannerTest, RequiresPositiveRadius) {
  const net::Deployment d = random_deployment(5, 21);
  PlannerConfig config;
  config.bundle_radius = 0.0;
  EXPECT_THROW(plan_tspn(d, config), support::PreconditionError);
}

}  // namespace
}  // namespace bc::tour
