// Cross-planner invariants: every algorithm must produce a feasible
// partition plan, and the facade must dispatch correctly.

#include <gtest/gtest.h>

#include "sim/evaluate.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;  // paper defaults: 1000 m field, 2 J demand
  return net::uniform_random_deployment(n, spec, rng);
}

constexpr Algorithm kAll[] = {Algorithm::kSc, Algorithm::kCss, Algorithm::kBc,
                              Algorithm::kBcOpt};

TEST(PlannerCommonTest, AllAlgorithmsPartitionTheSensors) {
  const net::Deployment d = random_deployment(80, 1);
  PlannerConfig config;
  config.bundle_radius = 30.0;
  for (const Algorithm algorithm : kAll) {
    const ChargingPlan plan = plan_charging_tour(d, algorithm, config);
    ASSERT_TRUE(plan_is_partition(d, plan)) << to_string(algorithm);
    EXPECT_EQ(plan.algorithm, to_string(algorithm));
    EXPECT_EQ(plan.depot, d.depot());
  }
}

TEST(PlannerCommonTest, AllPlansAreFeasibleUnderBothPolicies) {
  const net::Deployment d = random_deployment(60, 2);
  PlannerConfig config;
  config.bundle_radius = 40.0;
  sim::EvaluationConfig eval;
  for (const Algorithm algorithm : kAll) {
    const ChargingPlan plan = plan_charging_tour(d, algorithm, config);
    for (const auto policy :
         {sim::SchedulePolicy::kIsolated, sim::SchedulePolicy::kCumulative}) {
      eval.policy = policy;
      ASSERT_TRUE(sim::plan_is_feasible(d, plan, eval))
          << to_string(algorithm) << "/" << sim::to_string(policy);
    }
  }
}

TEST(PlannerCommonTest, PlansAreDeterministic) {
  const net::Deployment d = random_deployment(50, 3);
  PlannerConfig config;
  config.bundle_radius = 25.0;
  for (const Algorithm algorithm : kAll) {
    const ChargingPlan a = plan_charging_tour(d, algorithm, config);
    const ChargingPlan b = plan_charging_tour(d, algorithm, config);
    ASSERT_EQ(a.stops.size(), b.stops.size()) << to_string(algorithm);
    for (std::size_t i = 0; i < a.stops.size(); ++i) {
      ASSERT_EQ(a.stops[i].position, b.stops[i].position);
      ASSERT_EQ(a.stops[i].members, b.stops[i].members);
    }
  }
}

TEST(PlannerCommonTest, SingleSensorNetworksWork) {
  const net::Deployment d = random_deployment(1, 4);
  PlannerConfig config;
  config.bundle_radius = 10.0;
  for (const Algorithm algorithm : kAll) {
    const ChargingPlan plan = plan_charging_tour(d, algorithm, config);
    ASSERT_EQ(plan.stops.size(), 1u) << to_string(algorithm);
    ASSERT_EQ(plan.stops[0].members, (std::vector<net::SensorId>{0}));
  }
}

TEST(PlannerCommonTest, AlgorithmNamesAreStable) {
  EXPECT_EQ(to_string(Algorithm::kSc), "SC");
  EXPECT_EQ(to_string(Algorithm::kCss), "CSS");
  EXPECT_EQ(to_string(Algorithm::kBc), "BC");
  EXPECT_EQ(to_string(Algorithm::kBcOpt), "BC-OPT");
}

}  // namespace
}  // namespace bc::tour
