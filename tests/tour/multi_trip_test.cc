// Tests for the capacitated multi-trip splitter.

#include "tour/multi_trip.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

struct Fixture {
  net::Deployment deployment;
  ChargingPlan plan;
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
};

Fixture make_fixture(std::size_t n = 80, std::uint64_t seed = 1,
                 double radius = 60.0) {
  PlannerConfig config;
  config.bundle_radius = radius;
  net::Deployment d = random_deployment(n, seed);
  ChargingPlan plan = plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

// Smallest battery for which every stop is individually reachable.
double min_feasible_capacity(const Fixture& s) {
  double worst = 0.0;
  for (const Stop& stop : s.plan.stops) {
    ChargingPlan lone;
    lone.depot = s.plan.depot;
    lone.stops = {stop};
    worst = std::max(worst,
                     trip_energy_j(s.deployment, lone, s.charging,
                                   s.movement));
  }
  return worst;
}

std::vector<net::SensorId> all_members(const MultiTripPlan& trips) {
  std::vector<net::SensorId> ids;
  for (const auto& trip : trips.trips) {
    for (const auto& stop : trip.stops) {
      ids.insert(ids.end(), stop.members.begin(), stop.members.end());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(MultiTripTest, UnlimitedBatteryKeepsOneTrip) {
  const Fixture s = make_fixture();
  const MultiTripPlan trips = split_into_trips(
      s.deployment, s.plan, s.charging, s.movement, 1e12);
  ASSERT_EQ(trips.trips.size(), 1u);
  EXPECT_EQ(trips.trips[0].stops.size(), s.plan.stops.size());
}

TEST(MultiTripTest, EveryTripRespectsTheBattery) {
  const Fixture s = make_fixture();
  const double single =
      trip_energy_j(s.deployment, s.plan, s.charging, s.movement);
  const double capacity =
      std::max(single / 4.0, min_feasible_capacity(s) * 1.05);
  const MultiTripPlan trips = split_into_trips(
      s.deployment, s.plan, s.charging, s.movement, capacity);
  EXPECT_GE(trips.trips.size(), 2u);
  for (const auto& trip : trips.trips) {
    ASSERT_LE(trip_energy_j(s.deployment, trip, s.charging, s.movement),
              capacity + 1e-6);
  }
  const MultiTripMetrics m =
      evaluate_trips(s.deployment, trips, s.charging, s.movement);
  EXPECT_LE(m.max_trip_energy_j, capacity + 1e-6);
  EXPECT_EQ(m.num_trips, trips.trips.size());
}

TEST(MultiTripTest, MembershipIsPreserved) {
  const Fixture s = make_fixture(100, 3);
  const double capacity = std::max(
      trip_energy_j(s.deployment, s.plan, s.charging, s.movement) / 3.0,
      min_feasible_capacity(s) * 1.05);
  const MultiTripPlan trips = split_into_trips(
      s.deployment, s.plan, s.charging, s.movement, capacity);
  std::vector<net::SensorId> expected;
  for (const auto& stop : s.plan.stops) {
    expected.insert(expected.end(), stop.members.begin(),
                    stop.members.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all_members(trips), expected);
}

TEST(MultiTripTest, SplittingCostsExtraDepotLegs) {
  const Fixture s = make_fixture();
  const double full =
      trip_energy_j(s.deployment, s.plan, s.charging, s.movement);
  const MultiTripPlan trips = split_into_trips(
      s.deployment, s.plan, s.charging, s.movement, full / 3.0);
  const MultiTripMetrics m =
      evaluate_trips(s.deployment, trips, s.charging, s.movement);
  EXPECT_GT(m.total_energy_j, full);
  EXPECT_GT(m.tour_length_m, plan_tour_length(s.plan));
  // Charging cost is unchanged by splitting (same stops, same times).
  double charge = 0.0;
  for (const auto& stop : s.plan.stops) {
    charge += s.charging.cost_of_stop_j(
        isolated_stop_time_s(s.deployment, stop, s.charging));
  }
  EXPECT_NEAR(m.charge_energy_j, charge, 1e-6);
}

TEST(MultiTripTest, TighterBatteryNeverMeansFewerTrips) {
  const Fixture s = make_fixture(90, 5);
  const double full =
      trip_energy_j(s.deployment, s.plan, s.charging, s.movement);
  const double floor_capacity = min_feasible_capacity(s) * 1.05;
  std::size_t previous = 1;
  for (const double divider : {1.5, 2.5, 4.0, 6.0}) {
    const double capacity = std::max(full / divider, floor_capacity);
    const MultiTripPlan trips = split_into_trips(
        s.deployment, s.plan, s.charging, s.movement, capacity);
    ASSERT_GE(trips.trips.size(), previous);
    previous = trips.trips.size();
  }
}

TEST(MultiTripTest, ImpossibleCapacityIsRejected) {
  const Fixture s = make_fixture(20, 7);
  EXPECT_THROW(split_into_trips(s.deployment, s.plan, s.charging,
                                s.movement, 0.0),
               support::PreconditionError);
  // A capacity below any single out-and-back is also rejected.
  EXPECT_THROW(split_into_trips(s.deployment, s.plan, s.charging,
                                s.movement, 1.0),
               support::PreconditionError);
}

}  // namespace
}  // namespace bc::tour
