// Tests for the ChargingPlan data model helpers.

#include "tour/plan.h"

#include <gtest/gtest.h>

namespace bc::tour {
namespace {

using geometry::Box2;
using geometry::Point2;

net::Deployment line_deployment() {
  return net::Deployment({{10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}},
                         Box2{{0.0, 0.0}, {50.0, 50.0}}, {0.0, 0.0}, 2.0);
}

TEST(PlanTourLengthTest, ClosedThroughDepot) {
  ChargingPlan plan;
  plan.depot = {0.0, 0.0};
  plan.stops = {Stop{{10.0, 0.0}, {0}}, Stop{{20.0, 0.0}, {1}},
                Stop{{30.0, 0.0}, {2}}};
  EXPECT_DOUBLE_EQ(plan_tour_length(plan), 60.0);  // out along the line, back
}

TEST(PlanTourLengthTest, EmptyAndSingleStop) {
  ChargingPlan plan;
  plan.depot = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(plan_tour_length(plan), 0.0);
  plan.stops = {Stop{{3.0, 4.0}, {0}}};
  EXPECT_DOUBLE_EQ(plan_tour_length(plan), 10.0);  // there and back
}

TEST(StopMaxDistanceTest, FarthestAssignedMember) {
  const net::Deployment d = line_deployment();
  const Stop stop{{15.0, 0.0}, {0, 1, 2}};
  EXPECT_DOUBLE_EQ(stop_max_distance(d, stop), 15.0);
  const Stop empty{{15.0, 0.0}, {}};
  EXPECT_DOUBLE_EQ(stop_max_distance(d, empty), 0.0);
}

TEST(IsolatedStopTimeTest, DictatedByFarthestMember) {
  const net::Deployment d = line_deployment();
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const Stop stop{{10.0, 0.0}, {0, 1}};  // distances 0 and 10
  const double expected = model.charge_time_s(10.0, 2.0);
  EXPECT_DOUBLE_EQ(isolated_stop_time_s(d, stop, model), expected);
  // Must exceed the single-sensor time at distance 0.
  EXPECT_GT(expected, model.charge_time_s(0.0, 2.0));
}

TEST(PlanPartitionTest, DetectsMissingAndDuplicatedSensors) {
  const net::Deployment d = line_deployment();
  ChargingPlan plan;
  plan.depot = d.depot();
  plan.stops = {Stop{{10.0, 0.0}, {0, 1}}, Stop{{30.0, 0.0}, {2}}};
  EXPECT_TRUE(plan_is_partition(d, plan));
  plan.stops[1].members = {1, 2};  // sensor 1 duplicated
  EXPECT_FALSE(plan_is_partition(d, plan));
  plan.stops[1].members = {};  // sensor 2 missing
  EXPECT_FALSE(plan_is_partition(d, plan));
  plan.stops[1].members = {7};  // out of range
  EXPECT_FALSE(plan_is_partition(d, plan));
}

}  // namespace
}  // namespace bc::tour
