// Multi-depot, battery-constrained fleet planning tests: the single-depot
// reduction must match split_among_chargers bit for bit, hand-computable
// 3-depot instances pin home-depot and trip-boundary selection, and
// battery-infeasible tours must split — never strand — or fault with a
// structured kBatteryShortfall naming the stop.

#include "tour/depots.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/fleet.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

using geometry::Point2;

struct Fixture {
  net::Deployment deployment;
  ChargingPlan plan;
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
};

Fixture make_fixture(std::size_t n = 80, std::uint64_t seed = 1,
                     double radius = 60.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  net::Deployment d = net::uniform_random_deployment(n, spec, rng);
  PlannerConfig config;
  config.bundle_radius = radius;
  ChargingPlan plan = plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

std::vector<net::SensorId> fleet_members(const DepotFleetPlan& fleet) {
  std::vector<net::SensorId> ids;
  for (const DepotRoute& route : fleet.routes) {
    for (const DepotTrip& trip : route.trips) {
      for (const Stop& stop : trip.stops) {
        ids.insert(ids.end(), stop.members.begin(), stop.members.end());
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<net::SensorId> plan_members(const ChargingPlan& plan) {
  std::vector<net::SensorId> ids;
  for (const Stop& stop : plan.stops) {
    ids.insert(ids.end(), stop.members.begin(), stop.members.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- Single-depot reduction: bit-for-bit against split_among_chargers ---

TEST(DepotFleetTest, SingleDepotReducesToSplitAmongChargersBitForBit) {
  for (const std::size_t k : {1u, 2u, 4u, 7u}) {
    const Fixture f = make_fixture(90, 3);
    const FleetPlan baseline = split_among_chargers(
        f.deployment, f.plan, f.charging, f.movement, k);

    DepotFleetOptions options;
    options.depots = {f.plan.depot};
    options.num_chargers = k;
    const auto fleet = split_among_depot_fleet(f.deployment, f.plan,
                                               f.charging, f.movement,
                                               options);
    ASSERT_TRUE(fleet.has_value()) << fleet.fault().message;

    ASSERT_EQ(fleet.value().routes.size(), baseline.routes.size())
        << "k=" << k;
    for (std::size_t r = 0; r < baseline.routes.size(); ++r) {
      const DepotRoute& route = fleet.value().routes[r];
      const ChargingPlan& base_route = baseline.routes[r];
      EXPECT_EQ(route.home_depot, 0u);
      if (base_route.stops.empty()) {
        EXPECT_TRUE(route.trips.empty()) << "idle charger " << r;
        continue;
      }
      // Unconstrained battery: exactly one trip, home -> stops -> home.
      ASSERT_EQ(route.trips.size(), 1u) << "k=" << k << " route " << r;
      const DepotTrip& trip = route.trips[0];
      EXPECT_EQ(trip.start_depot, 0u);
      EXPECT_EQ(trip.end_depot, 0u);
      ASSERT_EQ(trip.stops.size(), base_route.stops.size());
      for (std::size_t s = 0; s < trip.stops.size(); ++s) {
        EXPECT_EQ(trip.stops[s].position.x, base_route.stops[s].position.x);
        EXPECT_EQ(trip.stops[s].position.y, base_route.stops[s].position.y);
        EXPECT_EQ(trip.stops[s].members, base_route.stops[s].members);
      }
    }

    // And the metrics agree exactly: same depots, same legs, same stops.
    const FleetMetrics mb =
        evaluate_fleet(f.deployment, baseline, f.charging, f.movement);
    const DepotFleetMetrics md = evaluate_depot_fleet(
        f.deployment, fleet.value(), options, f.charging, f.movement);
    EXPECT_EQ(md.makespan_s, mb.makespan_s) << "k=" << k;
    EXPECT_EQ(md.num_routes, mb.num_routes) << "k=" << k;
  }
}

// --- 3-depot analytic pins on a hand-computable instance ---

// Four sensors on a 1000 m line, depots at both ends and the middle.
// Demands are tiny so movement dominates every choice.
struct LineWorld {
  net::Deployment deployment = [] {
    std::vector<geometry::Point2> positions = {
        {100.0, 0.0}, {200.0, 0.0}, {800.0, 0.0}, {900.0, 0.0}};
    const geometry::Box2 field{{0.0, 0.0}, {1000.0, 10.0}};
    return net::Deployment(std::move(positions), field, Point2{0.0, 0.0},
                           100.0);
  }();
  ChargingPlan plan = [] {
    ChargingPlan p;
    p.depot = Point2{0.0, 0.0};
    p.stops = {Stop{{100.0, 0.0}, {0}},
               Stop{{200.0, 0.0}, {1}},
               Stop{{800.0, 0.0}, {2}},
               Stop{{900.0, 0.0}, {3}}};
    return p;
  }();
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
  DepotFleetOptions options = [] {
    DepotFleetOptions o;
    o.depots = {Point2{0.0, 0.0}, Point2{500.0, 0.0}, Point2{1000.0, 0.0}};
    return o;
  }();
};

TEST(DepotFleetTest, TwoChargersSplitTheLineBetweenEndDepots) {
  LineWorld w;
  w.options.num_chargers = 2;
  const auto fleet = split_among_depot_fleet(w.deployment, w.plan,
                                             w.charging, w.movement,
                                             w.options);
  ASSERT_TRUE(fleet.has_value()) << fleet.fault().message;
  // The natural split is {100, 200} | {800, 900}; the left route homes at
  // depot 0 (x=0) and the right route at depot 2 (x=1000).
  std::vector<std::size_t> homes;
  for (const DepotRoute& route : fleet.value().routes) {
    if (!route.trips.empty()) homes.push_back(route.home_depot);
  }
  ASSERT_EQ(homes.size(), 2u);
  std::sort(homes.begin(), homes.end());
  EXPECT_EQ(homes[0], 0u);
  EXPECT_EQ(homes[1], 2u);
  EXPECT_EQ(fleet_members(fleet.value()), plan_members(w.plan));
}

TEST(DepotFleetTest, OneChargerHomesAtTheCheapestDepot) {
  LineWorld w;
  w.options.num_chargers = 1;
  const auto fleet = split_among_depot_fleet(w.deployment, w.plan,
                                             w.charging, w.movement,
                                             w.options);
  ASSERT_TRUE(fleet.has_value()) << fleet.fault().message;
  ASSERT_EQ(fleet.value().routes.size(), 1u);
  const DepotRoute& route = fleet.value().routes[0];
  // Out-and-back from x=0 or x=1000 costs 1800 m; from the middle depot
  // 500 -> 100 -> 900 -> 500 costs 1600 m. The middle depot must win.
  EXPECT_EQ(route.home_depot, 1u);
  ASSERT_EQ(route.trips.size(), 1u);
  EXPECT_EQ(route.trips[0].start_depot, 1u);
  EXPECT_EQ(route.trips[0].end_depot, 1u);
}

TEST(DepotFleetTest, DepotTiesBreakTowardTheLowestIndex) {
  LineWorld w;
  w.options.num_chargers = 1;
  // Duplicate the winning middle depot; the earlier copy must be chosen.
  w.options.depots = {Point2{500.0, 0.0}, Point2{500.0, 0.0},
                      Point2{0.0, 0.0}};
  const auto fleet = split_among_depot_fleet(w.deployment, w.plan,
                                             w.charging, w.movement,
                                             w.options);
  ASSERT_TRUE(fleet.has_value()) << fleet.fault().message;
  EXPECT_EQ(fleet.value().routes[0].home_depot, 0u);
}

// --- Battery feasibility: split, never strand ---

TEST(DepotFleetTest, TightBatterySplitsIntoFeasibleTrips) {
  LineWorld w;
  w.options.num_chargers = 1;
  // Enough battery for one out-and-back to the farthest stop from the
  // middle depot, but nowhere near enough for the whole route in one go.
  const DepotTrip probe{1, 1, {w.plan.stops[3]}};
  const double worst = depot_trip_energy_j(w.deployment, probe,
                                           w.options.depots, w.charging,
                                           w.movement);
  w.options.battery_capacity_j = worst * 1.3;
  const auto fleet = split_among_depot_fleet(w.deployment, w.plan,
                                             w.charging, w.movement,
                                             w.options);
  ASSERT_TRUE(fleet.has_value()) << fleet.fault().message;
  // All stops covered, every trip within the battery.
  EXPECT_EQ(fleet_members(fleet.value()), plan_members(w.plan));
  const DepotFleetMetrics m = evaluate_depot_fleet(
      w.deployment, fleet.value(), w.options, w.charging, w.movement);
  EXPECT_GT(m.num_trips, 1u) << "a tight battery must force a split";
  EXPECT_LE(m.max_trip_energy_j, w.options.battery_capacity_j * (1 + 1e-9));
  // Trips chain and the route closes at home.
  for (const DepotRoute& route : fleet.value().routes) {
    if (route.trips.empty()) continue;
    EXPECT_EQ(route.trips.front().start_depot, route.home_depot);
    EXPECT_EQ(route.trips.back().end_depot, route.home_depot);
    for (std::size_t t = 0; t + 1 < route.trips.size(); ++t) {
      EXPECT_EQ(route.trips[t].end_depot, route.trips[t + 1].start_depot);
    }
  }
}

TEST(DepotFleetTest, RandomPlansSplitFeasiblyUnderManyCapacities) {
  const Fixture f = make_fixture(70, 21);
  DepotFleetOptions options;
  options.depots = {Point2{0.0, 0.0}, Point2{1000.0, 0.0},
                    Point2{500.0, 1000.0}};
  options.num_chargers = 2;
  // Worst single-stop out-and-back from the best depot sets the floor for
  // a feasible capacity.
  double floor = 0.0;
  for (const Stop& stop : f.plan.stops) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t d = 0; d < options.depots.size(); ++d) {
      const DepotTrip probe{d, d, {stop}};
      best = std::min(best,
                      depot_trip_energy_j(f.deployment, probe,
                                          options.depots, f.charging,
                                          f.movement));
    }
    floor = std::max(floor, best);
  }
  for (const double factor : {1.05, 1.5, 3.0, 10.0}) {
    options.battery_capacity_j = floor * factor;
    const auto fleet = split_among_depot_fleet(f.deployment, f.plan,
                                               f.charging, f.movement,
                                               options);
    ASSERT_TRUE(fleet.has_value())
        << "factor " << factor << ": " << fleet.fault().message;
    EXPECT_EQ(fleet_members(fleet.value()), plan_members(f.plan))
        << "factor " << factor;
    const DepotFleetMetrics m = evaluate_depot_fleet(
        f.deployment, fleet.value(), options, f.charging, f.movement);
    EXPECT_LE(m.max_trip_energy_j,
              options.battery_capacity_j * (1 + 1e-9))
        << "factor " << factor;
  }
}

TEST(DepotFleetTest, ImpossibleStopFaultsWithBatteryShortfallNamingIt) {
  LineWorld w;
  w.options.num_chargers = 1;
  // Far too small for even one out-and-back anywhere.
  w.options.battery_capacity_j = 1.0;
  const auto fleet = split_among_depot_fleet(w.deployment, w.plan,
                                             w.charging, w.movement,
                                             w.options);
  ASSERT_FALSE(fleet.has_value());
  EXPECT_EQ(fleet.fault().kind, support::FaultKind::kBatteryShortfall);
  EXPECT_NE(fleet.fault().message.find("stop"), std::string::npos);
}

TEST(DepotFleetTest, PreconditionsAreEnforced) {
  const Fixture f = make_fixture(20, 5);
  DepotFleetOptions no_depots;
  EXPECT_THROW(split_among_depot_fleet(f.deployment, f.plan, f.charging,
                                       f.movement, no_depots),
               support::PreconditionError);
  DepotFleetOptions zero_chargers;
  zero_chargers.depots = {f.plan.depot};
  zero_chargers.num_chargers = 0;
  EXPECT_THROW(split_among_depot_fleet(f.deployment, f.plan, f.charging,
                                       f.movement, zero_chargers),
               support::PreconditionError);
}

TEST(DepotFleetTest, MoreDepotsNeverRaiseTheMakespan) {
  const Fixture f = make_fixture(80, 9);
  DepotFleetOptions one;
  one.depots = {f.plan.depot};
  one.num_chargers = 3;
  DepotFleetOptions three = one;
  three.depots.push_back(Point2{1000.0, 1000.0});
  three.depots.push_back(Point2{500.0, 500.0});
  const auto a = split_among_depot_fleet(f.deployment, f.plan, f.charging,
                                         f.movement, one);
  const auto b = split_among_depot_fleet(f.deployment, f.plan, f.charging,
                                         f.movement, three);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const DepotFleetMetrics ma = evaluate_depot_fleet(
      f.deployment, a.value(), one, f.charging, f.movement);
  const DepotFleetMetrics mb = evaluate_depot_fleet(
      f.deployment, b.value(), three, f.charging, f.movement);
  EXPECT_LE(mb.makespan_s, ma.makespan_s * (1.0 + 1e-5))
      << "extra depots can only help per-route homes";
}

}  // namespace
}  // namespace bc::tour
