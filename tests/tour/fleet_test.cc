// Tests for multi-charger fleet planning.

#include "tour/fleet.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::tour {
namespace {

struct Fixture {
  net::Deployment deployment;
  ChargingPlan plan;
  charging::ChargingModel charging =
      charging::ChargingModel::icdcs2019_simulation();
  charging::MovementModel movement = charging::MovementModel::icdcs2019();
};

Fixture make_fixture(std::size_t n = 80, std::uint64_t seed = 1,
                     double radius = 60.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  net::Deployment d = net::uniform_random_deployment(n, spec, rng);
  PlannerConfig config;
  config.bundle_radius = radius;
  ChargingPlan plan = plan_bc(d, config);
  return Fixture{std::move(d), std::move(plan)};
}

std::vector<net::SensorId> all_members(const FleetPlan& fleet) {
  std::vector<net::SensorId> ids;
  for (const auto& route : fleet.routes) {
    for (const auto& stop : route.stops) {
      ids.insert(ids.end(), stop.members.begin(), stop.members.end());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(FleetTest, SingleChargerEqualsTheOriginalPlan) {
  const Fixture f = make_fixture();
  const FleetPlan fleet = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, 1);
  ASSERT_EQ(fleet.routes.size(), 1u);
  EXPECT_EQ(fleet.routes[0].stops.size(), f.plan.stops.size());
  const FleetMetrics m =
      evaluate_fleet(f.deployment, fleet, f.charging, f.movement);
  EXPECT_NEAR(m.makespan_s,
              route_time_s(f.deployment, f.plan, f.charging, f.movement),
              1e-6);
}

TEST(FleetTest, MembershipIsPreserved) {
  const Fixture f = make_fixture(90, 3);
  const FleetPlan fleet = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, 4);
  std::vector<net::SensorId> expected;
  for (const auto& stop : f.plan.stops) {
    expected.insert(expected.end(), stop.members.begin(),
                    stop.members.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all_members(fleet), expected);
}

TEST(FleetTest, MoreChargersNeverRaiseTheMakespan) {
  const Fixture f = make_fixture();
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
    const FleetPlan fleet = split_among_chargers(
        f.deployment, f.plan, f.charging, f.movement, k);
    const FleetMetrics m =
        evaluate_fleet(f.deployment, fleet, f.charging, f.movement);
    ASSERT_LE(m.makespan_s, previous + 1e-6) << "k=" << k;
    ASSERT_LE(m.num_routes, k);
    previous = m.makespan_s;
  }
}

TEST(FleetTest, ParallelismCutsTheMakespanSubstantially) {
  const Fixture f = make_fixture(120, 5);
  const double solo =
      route_time_s(f.deployment, f.plan, f.charging, f.movement);
  const FleetPlan fleet = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, 4);
  const FleetMetrics m =
      evaluate_fleet(f.deployment, fleet, f.charging, f.movement);
  // Perfect speedup is 4x; depot overheads eat some of it. Expect at
  // least 2x.
  EXPECT_LT(m.makespan_s, solo / 2.0);
  // Parallelism costs total energy (extra depot legs) versus one charger.
  const FleetPlan single = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, 1);
  EXPECT_GT(m.total_energy_j,
            evaluate_fleet(f.deployment, single, f.charging, f.movement)
                .total_energy_j);
}

TEST(FleetTest, ExcessChargersLeaveIdleRoutes) {
  const Fixture f = make_fixture(10, 7, 300.0);  // few stops
  const std::size_t k = 20;
  const FleetPlan fleet = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, k);
  EXPECT_EQ(fleet.routes.size(), k);
  const FleetMetrics m =
      evaluate_fleet(f.deployment, fleet, f.charging, f.movement);
  EXPECT_LE(m.num_routes, f.plan.stops.size());
}

TEST(FleetTest, MinimumFleetSizeIsConsistentWithTheSplit) {
  const Fixture f = make_fixture(60, 9);
  const double solo =
      route_time_s(f.deployment, f.plan, f.charging, f.movement);
  // A deadline of half the solo time needs at least 2 chargers; the size
  // reported must actually achieve the deadline when splitting.
  const double deadline = solo / 2.0;
  const std::size_t k = minimum_fleet_size(f.deployment, f.plan, f.charging,
                                           f.movement, deadline);
  ASSERT_GE(k, 2u);
  const FleetPlan fleet = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, k);
  const FleetMetrics m =
      evaluate_fleet(f.deployment, fleet, f.charging, f.movement);
  EXPECT_LE(m.makespan_s, deadline + 1e-6);
  // And k-1 chargers must miss it (minimality), unless k == 1.
  const FleetPlan smaller = split_among_chargers(
      f.deployment, f.plan, f.charging, f.movement, k - 1);
  EXPECT_GT(evaluate_fleet(f.deployment, smaller, f.charging, f.movement)
                .makespan_s,
            deadline);
}

TEST(FleetTest, GenerousDeadlineNeedsOneCharger) {
  const Fixture f = make_fixture(40, 11);
  const double solo =
      route_time_s(f.deployment, f.plan, f.charging, f.movement);
  EXPECT_EQ(minimum_fleet_size(f.deployment, f.plan, f.charging,
                               f.movement, solo * 1.01),
            1u);
}

TEST(FleetTest, ImpossibleDeadlineIsRejected) {
  const Fixture f = make_fixture(20, 13);
  EXPECT_THROW(minimum_fleet_size(f.deployment, f.plan, f.charging,
                                  f.movement, 1.0),
               support::PreconditionError);
  EXPECT_THROW(split_among_chargers(f.deployment, f.plan, f.charging,
                                    f.movement, 0),
               support::PreconditionError);
}

}  // namespace
}  // namespace bc::tour
