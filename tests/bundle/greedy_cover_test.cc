// Tests for Algorithm 2 (greedy bundle generation).

#include "bundle/greedy_cover.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bundle/candidates.h"
#include "geometry/minidisk.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed,
                                  double side = 100.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {side, side}};
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(GreedyCoverTest, OutputIsAPartitionWithinRadius) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const net::Deployment d = random_deployment(60, seed);
    for (const double r : {3.0, 10.0, 30.0}) {
      const auto bundles = greedy_bundles(d, r);
      ASSERT_TRUE(is_partition(d, bundles));
      ASSERT_LE(max_charging_distance(d, bundles), r + 1e-6);
    }
  }
}

TEST(GreedyCoverTest, TinyRadiusYieldsSingletons) {
  const net::Deployment d = random_deployment(30, 4);
  const auto bundles = greedy_bundles(d, 1e-6);
  EXPECT_EQ(bundles.size(), d.size());
}

TEST(GreedyCoverTest, HugeRadiusYieldsOneBundle) {
  const net::Deployment d = random_deployment(30, 5);
  const auto bundles = greedy_bundles(d, 1000.0);
  EXPECT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].members.size(), d.size());
}

TEST(GreedyCoverTest, BundleCountDecreasesWithRadius) {
  const net::Deployment d = random_deployment(100, 6);
  std::size_t previous = d.size() + 1;
  for (const double r : {1.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    const std::size_t count = greedy_bundles(d, r).size();
    ASSERT_LE(count, previous) << "r=" << r;
    previous = count;
  }
}

TEST(GreedyCoverTest, PicksMaxCardinalityFirst) {
  // Cluster of 3 near the origin, 2 farther out, 1 isolated: greedy must
  // select the triple before the pair.
  const net::Deployment d(
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {10.0, 10.0}, {11.0, 10.0},
       {50.0, 50.0}},
      Box2{{0.0, 0.0}, {60.0, 60.0}}, {0.0, 0.0}, 2.0);
  const auto bundles = greedy_bundles(d, 1.0);
  ASSERT_EQ(bundles.size(), 3u);
  EXPECT_EQ(bundles[0].members, (std::vector<net::SensorId>{0, 1, 2}));
  EXPECT_EQ(bundles[1].members, (std::vector<net::SensorId>{3, 4}));
  EXPECT_EQ(bundles[2].members, (std::vector<net::SensorId>{5}));
}

TEST(GreedyCoverTest, RequiresCoveringCandidates) {
  const net::Deployment d = random_deployment(5, 7);
  const std::vector<Bundle> partial{make_bundle(d, {0, 1})};
  EXPECT_THROW(greedy_cover(d, partial), support::PreconditionError);
}

TEST(GreedyCoverTest, PartitionAnchorsAreRetightened) {
  // When a later bundle loses members to an earlier one, its anchor must
  // be the SED centre of the *remaining* members.
  const net::Deployment d = random_deployment(80, 8);
  const auto bundles = greedy_bundles(d, 15.0);
  for (const Bundle& b : bundles) {
    std::vector<geometry::Point2> pts;
    for (const net::SensorId id : b.members) {
      pts.push_back(d.sensor(id).position);
    }
    const auto sed = geometry::smallest_enclosing_disk(pts);
    ASSERT_NEAR(b.radius, sed.radius, 1e-9);
    ASSERT_TRUE(geometry::almost_equal(b.anchor, sed.center, 1e-6));
  }
}

TEST(GreedyCoverTest, LnNApproximationBoundHolds) {
  // Compare against a trivially valid lower bound: ceil(n / max bundle
  // size). The greedy output must satisfy the Theorem 2 guarantee
  // |greedy| <= (ln n + 1) * OPT for every instance.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const net::Deployment d = random_deployment(50, seed, 60.0);
    const double r = 12.0;
    const auto candidates = enumerate_candidates(d, r);
    std::size_t max_size = 1;
    for (const Bundle& b : candidates) {
      max_size = std::max(max_size, b.members.size());
    }
    const double lower_bound =
        std::ceil(static_cast<double>(d.size()) /
                  static_cast<double>(max_size));
    const auto greedy = greedy_cover(d, candidates);
    const double guarantee =
        (std::log(static_cast<double>(d.size())) + 1.0) * lower_bound;
    // OPT >= lower_bound, so violating this would violate Theorem 2.
    ASSERT_LE(static_cast<double>(greedy.size()),
              guarantee + 1e-9)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace bc::bundle
