// Tests for the exact (branch & bound) minimum bundle cover.

#include "bundle/exact_cover.h"

#include <gtest/gtest.h>

#include "bundle/candidates.h"
#include "bundle/greedy_cover.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed,
                                  double side = 60.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {side, side}};
  return net::uniform_random_deployment(n, spec, rng);
}

// Exhaustive minimum cover size by subset enumeration over candidates
// (only for very small candidate universes).
std::size_t brute_minimum_cover(const net::Deployment& d,
                                const std::vector<Bundle>& candidates) {
  const std::size_t m = candidates.size();
  std::size_t best = m + 1;
  for (std::size_t mask = 1; mask < (std::size_t{1} << m); ++mask) {
    std::vector<bool> covered(d.size(), false);
    std::size_t chosen = 0;
    for (std::size_t c = 0; c < m; ++c) {
      if (!(mask & (std::size_t{1} << c))) continue;
      ++chosen;
      for (const net::SensorId id : candidates[c].members) covered[id] = true;
    }
    if (chosen >= best) continue;
    bool all = true;
    for (const bool cov : covered) all = all && cov;
    if (all) best = chosen;
  }
  return best;
}

TEST(ExactCoverTest, OutputIsAFeasiblePartition) {
  const net::Deployment d = random_deployment(25, 1);
  const auto result = optimal_bundles(d, 10.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_partition(d, *result));
  EXPECT_LE(max_charging_distance(d, *result), 10.0 + 1e-6);
}

TEST(ExactCoverTest, NeverWorseThanGreedy) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const net::Deployment d = random_deployment(30, seed);
    for (const double r : {5.0, 12.0}) {
      const auto candidates = enumerate_candidates(d, r);
      const auto greedy = greedy_cover(d, candidates);
      const auto exact = exact_cover(d, candidates);
      ASSERT_TRUE(exact.has_value());
      ASSERT_LE(exact->size(), greedy.size()) << "seed=" << seed;
    }
  }
}

TEST(ExactCoverTest, MatchesSubsetBruteForce) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const net::Deployment d = random_deployment(10, seed, 40.0);
    const auto candidates = enumerate_candidates(d, 12.0);
    if (candidates.size() > 18) continue;  // keep the brute force tractable
    const auto exact = exact_cover(d, candidates);
    ASSERT_TRUE(exact.has_value());
    ASSERT_EQ(exact->size(), brute_minimum_cover(d, candidates))
        << "seed=" << seed;
  }
}

TEST(ExactCoverTest, KnownFragmentationInstanceIsSolvedOptimally) {
  // Five collinear sensors 1 apart with r = 1.01 (diameter 2.02 covers
  // any 3 consecutive): greedy may take 0-1-2 then split {3,4}; optimal
  // needs exactly ceil(5/3) = 2 bundles.
  const net::Deployment d(
      {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}},
      Box2{{0.0, 0.0}, {10.0, 10.0}}, {0.0, 0.0}, 2.0);
  const auto exact = optimal_bundles(d, 1.01);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 2u);
}

TEST(ExactCoverTest, NodeBudgetExhaustionReturnsNullopt) {
  const net::Deployment d = random_deployment(40, 10);
  ExactCoverOptions options;
  options.max_nodes = 1;
  const auto candidates = enumerate_candidates(d, 15.0);
  EXPECT_FALSE(exact_cover(d, candidates, options).has_value());
}

TEST(ExactCoverTest, RequiresCoveringCandidates) {
  const net::Deployment d = random_deployment(5, 11);
  const std::vector<Bundle> partial{make_bundle(d, {0})};
  EXPECT_THROW(exact_cover(d, partial), support::PreconditionError);
}

}  // namespace
}  // namespace bc::bundle
