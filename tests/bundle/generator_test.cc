// Tests for the bundle-generation facade.

#include "bundle/generator.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = geometry::Box2{{0.0, 0.0}, {100.0, 100.0}};
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(GeneratorTest, AllKindsProduceFeasiblePartitions) {
  const net::Deployment d = random_deployment(40, 1);
  for (const GeneratorKind kind :
       {GeneratorKind::kGrid, GeneratorKind::kGreedy, GeneratorKind::kExact}) {
    GeneratorOptions options;
    options.kind = kind;
    const auto bundles = generate_bundles(d, 10.0, options);
    ASSERT_TRUE(is_partition(d, bundles)) << to_string(kind);
    ASSERT_LE(max_charging_distance(d, bundles), 10.0 + 1e-6)
        << to_string(kind);
  }
}

TEST(GeneratorTest, OrderingExactLeGreedyLeGrid) {
  // Averaged over seeds: optimal <= greedy, and greedy <= grid at small
  // radii (Fig. 11(a)).
  double exact_total = 0.0;
  double greedy_total = 0.0;
  double grid_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const net::Deployment d = random_deployment(35, 20 + seed);
    GeneratorOptions options;
    options.kind = GeneratorKind::kExact;
    exact_total += static_cast<double>(
        generate_bundles(d, 8.0, options).size());
    options.kind = GeneratorKind::kGreedy;
    greedy_total += static_cast<double>(
        generate_bundles(d, 8.0, options).size());
    options.kind = GeneratorKind::kGrid;
    grid_total += static_cast<double>(
        generate_bundles(d, 8.0, options).size());
  }
  EXPECT_LE(exact_total, greedy_total);
  EXPECT_LT(greedy_total, grid_total);
}

TEST(GeneratorTest, ExactFallsBackToGreedyOnBudgetExhaustion) {
  const net::Deployment d = random_deployment(60, 30);
  GeneratorOptions options;
  options.kind = GeneratorKind::kExact;
  options.exact.max_nodes = 1;  // force exhaustion
  const auto bundles = generate_bundles(d, 15.0, options);
  EXPECT_TRUE(is_partition(d, bundles));  // greedy fallback still feasible
}

TEST(GeneratorTest, InvalidRadiusRejected) {
  const net::Deployment d = random_deployment(5, 40);
  EXPECT_THROW(generate_bundles(d, 0.0), support::PreconditionError);
}

TEST(GeneratorTest, KindNamesAreStable) {
  EXPECT_EQ(to_string(GeneratorKind::kGrid), "grid");
  EXPECT_EQ(to_string(GeneratorKind::kGreedy), "greedy");
  EXPECT_EQ(to_string(GeneratorKind::kExact), "exact");
}

}  // namespace
}  // namespace bc::bundle
