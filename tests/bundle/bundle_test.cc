// Tests for the Bundle data model helpers.

#include "bundle/bundle.h"

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::bundle {
namespace {

using geometry::Box2;
using geometry::Point2;

net::Deployment square_deployment() {
  return net::Deployment(
      {{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}, {2.0, 2.0}},
      Box2{{0.0, 0.0}, {10.0, 10.0}}, {0.0, 0.0}, 2.0);
}

TEST(MakeBundleTest, ComputesSedAnchor) {
  const net::Deployment d = square_deployment();
  const Bundle b = make_bundle(d, {0, 1, 2, 3});
  EXPECT_TRUE(almost_equal(b.anchor, {2.0, 2.0}, 1e-9));
  EXPECT_NEAR(b.radius, std::sqrt(8.0), 1e-9);
  EXPECT_EQ(b.members, (std::vector<net::SensorId>{0, 1, 2, 3}));
}

TEST(MakeBundleTest, SingletonBundleIsZeroRadius) {
  const net::Deployment d = square_deployment();
  const Bundle b = make_bundle(d, {4});
  EXPECT_EQ(b.anchor, (Point2{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(b.radius, 0.0);
}

TEST(MakeBundleTest, SortsAndDeduplicatesMembers) {
  const net::Deployment d = square_deployment();
  const Bundle b = make_bundle(d, {3, 1, 3, 1});
  EXPECT_EQ(b.members, (std::vector<net::SensorId>{1, 3}));
}

TEST(MakeBundleTest, EmptyMembersRejected) {
  const net::Deployment d = square_deployment();
  EXPECT_THROW(make_bundle(d, {}), support::PreconditionError);
}

TEST(CoverageTest, DetectsFullAndPartialCover) {
  const net::Deployment d = square_deployment();
  const std::vector<Bundle> full{make_bundle(d, {0, 1}),
                                 make_bundle(d, {2, 3, 4})};
  EXPECT_TRUE(covers_all_sensors(d, full));
  EXPECT_TRUE(is_partition(d, full));
  const std::vector<Bundle> partial{make_bundle(d, {0, 1})};
  EXPECT_FALSE(covers_all_sensors(d, partial));
  EXPECT_FALSE(is_partition(d, partial));
  // Overlap: covered, but not a partition.
  const std::vector<Bundle> overlap{make_bundle(d, {0, 1, 2}),
                                    make_bundle(d, {2, 3, 4})};
  EXPECT_TRUE(covers_all_sensors(d, overlap));
  EXPECT_FALSE(is_partition(d, overlap));
}

TEST(MaxChargingDistanceTest, TracksFarthestMember) {
  const net::Deployment d = square_deployment();
  const std::vector<Bundle> bundles{make_bundle(d, {0, 1, 2, 3}),
                                    make_bundle(d, {4})};
  EXPECT_NEAR(max_charging_distance(d, bundles), std::sqrt(8.0), 1e-9);
  EXPECT_DOUBLE_EQ(max_charging_distance(d, {}), 0.0);
}

}  // namespace
}  // namespace bc::bundle
