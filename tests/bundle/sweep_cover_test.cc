// Tests for the sweep (tour-order chain) bundle generator.

#include "bundle/sweep_cover.h"

#include <gtest/gtest.h>

#include "bundle/generator.h"
#include "bundle/greedy_cover.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(SweepCoverTest, OutputIsAPartitionWithinRadius) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const net::Deployment d = random_deployment(80, seed);
    for (const double r : {10.0, 40.0, 100.0}) {
      const auto bundles = sweep_bundles(d, r);
      ASSERT_TRUE(is_partition(d, bundles));
      ASSERT_LE(max_charging_distance(d, bundles), r + 1e-6);
    }
  }
}

TEST(SweepCoverTest, ZeroRadiusYieldsSingletons) {
  const net::Deployment d = random_deployment(25, 4);
  EXPECT_EQ(sweep_bundles(d, 0.0).size(), d.size());
}

TEST(SweepCoverTest, HugeRadiusYieldsOneBundle) {
  const net::Deployment d = random_deployment(25, 5);
  EXPECT_EQ(sweep_bundles(d, 5000.0).size(), 1u);
}

TEST(SweepCoverTest, ChainsAreTourContiguous) {
  // A line of sensors 10 apart with r = 10.01 (disk diameter covers two
  // spacings): the sweep must emit ceil(7/3) = 3 chains of consecutive
  // sensors, never interleaved groups.
  std::vector<geometry::Point2> line;
  for (int i = 0; i < 7; ++i) line.push_back({10.0 * i, 0.0});
  const net::Deployment d(std::move(line), Box2{{-5.0, -5.0}, {70.0, 5.0}},
                          {0.0, 0.0}, 2.0);
  const auto bundles = sweep_bundles(d, 10.01);
  ASSERT_EQ(bundles.size(), 3u);
  for (const Bundle& b : bundles) {
    for (std::size_t i = 1; i < b.members.size(); ++i) {
      ASSERT_EQ(b.members[i], b.members[i - 1] + 1);
    }
  }
}

TEST(SweepCoverTest, CompetitiveWithGreedyOnUniformFields) {
  // The finding that motivated this generator: on uniform fields at mid
  // radii the sweep is at least close to greedy (within 15 % more
  // bundles) and frequently strictly better. Seed-averaged.
  double sweep_total = 0.0;
  double greedy_total = 0.0;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const net::Deployment d = random_deployment(150, seed);
    sweep_total += static_cast<double>(sweep_bundles(d, 50.0).size());
    greedy_total += static_cast<double>(greedy_bundles(d, 50.0).size());
  }
  EXPECT_LE(sweep_total, greedy_total * 1.15);
}

TEST(SweepCoverTest, AvailableThroughTheGeneratorFacade) {
  const net::Deployment d = random_deployment(40, 20);
  GeneratorOptions options;
  options.kind = GeneratorKind::kSweep;
  const auto bundles = generate_bundles(d, 30.0, options);
  EXPECT_TRUE(is_partition(d, bundles));
  EXPECT_EQ(to_string(GeneratorKind::kSweep), "sweep");
}

TEST(SweepCoverTest, NegativeRadiusRejected) {
  const net::Deployment d = random_deployment(5, 30);
  EXPECT_THROW(sweep_bundles(d, -1.0), support::PreconditionError);
}

}  // namespace
}  // namespace bc::bundle
