// Tests for candidate bundle enumeration (pair-circle method).

#include "bundle/candidates.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geometry/minidisk.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Box2;
using geometry::Point2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed,
                                  double side = 100.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {side, side}};
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(CandidatesTest, SingletonsAlwaysPresent) {
  const net::Deployment d = random_deployment(10, 1);
  const auto candidates = enumerate_candidates(d, 0.0);
  EXPECT_EQ(candidates.size(), 10u);
  for (const Bundle& b : candidates) {
    EXPECT_EQ(b.members.size(), 1u);
    EXPECT_DOUBLE_EQ(b.radius, 0.0);
  }
}

TEST(CandidatesTest, AllCandidatesRespectRadius) {
  const net::Deployment d = random_deployment(60, 2);
  for (const double r : {5.0, 15.0, 40.0}) {
    for (const Bundle& b : enumerate_candidates(d, r)) {
      ASSERT_LE(b.radius, r * (1.0 + 1e-6) + 1e-9);
      // Anchor really is the members' SED centre.
      for (const net::SensorId id : b.members) {
        ASSERT_LE(geometry::distance(b.anchor, d.sensor(id).position),
                  b.radius + 1e-6);
      }
    }
  }
}

TEST(CandidatesTest, JointCoverageAlwaysHolds) {
  const net::Deployment d = random_deployment(40, 3);
  for (const double r : {0.5, 10.0, 100.0}) {
    EXPECT_TRUE(covers_all_sensors(d, enumerate_candidates(d, r)));
  }
}

TEST(CandidatesTest, CapturesEveryMaximalSubsetExhaustively) {
  // Ground truth: enumerate all subsets of a small instance, keep those
  // with SED radius <= r, and check every one is contained in some
  // candidate. This validates the pair-circle discretisation argument.
  const net::Deployment d = random_deployment(9, 4, 30.0);
  const double r = 12.0;
  const auto candidates = enumerate_candidates(d, r);

  const auto is_subset_of_candidate =
      [&](const std::vector<net::SensorId>& subset) {
        return std::any_of(
            candidates.begin(), candidates.end(), [&](const Bundle& b) {
              return std::includes(b.members.begin(), b.members.end(),
                                   subset.begin(), subset.end());
            });
      };

  const std::size_t n = d.size();
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<net::SensorId> subset;
    std::vector<Point2> pts;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        subset.push_back(static_cast<net::SensorId>(i));
        pts.push_back(d.sensor(static_cast<net::SensorId>(i)).position);
      }
    }
    if (!geometry::fits_in_radius(pts, r)) continue;
    ASSERT_TRUE(is_subset_of_candidate(subset)) << "mask=" << mask;
  }
}

TEST(CandidatesTest, DominatedPruningKeepsCoverageEquivalence) {
  const net::Deployment d = random_deployment(50, 5);
  CandidateOptions no_prune;
  no_prune.prune_dominated = false;
  const auto all = enumerate_candidates(d, 20.0, no_prune);
  const auto pruned = enumerate_candidates(d, 20.0);
  EXPECT_LE(pruned.size(), all.size());
  // Every unpruned candidate is a subset of some kept candidate.
  for (const Bundle& b : all) {
    const bool represented = std::any_of(
        pruned.begin(), pruned.end(), [&](const Bundle& keeper) {
          return std::includes(keeper.members.begin(), keeper.members.end(),
                               b.members.begin(), b.members.end());
        });
    ASSERT_TRUE(represented);
  }
}

TEST(CandidatesTest, MaxCandidatesCapIsRespected) {
  const net::Deployment d = random_deployment(80, 6);
  CandidateOptions options;
  options.max_candidates = 100;
  options.prune_dominated = false;
  const auto capped = enumerate_candidates(d, 30.0, options);
  EXPECT_LE(capped.size(), 100u);
}

TEST(CandidatesTest, NegativeRadiusRejected) {
  const net::Deployment d = random_deployment(5, 7);
  EXPECT_THROW(enumerate_candidates(d, -1.0), support::PreconditionError);
}

TEST(CandidatesTest, DeterministicAcrossCalls) {
  const net::Deployment d = random_deployment(40, 8);
  const auto a = enumerate_candidates(d, 15.0);
  const auto b = enumerate_candidates(d, 15.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].members, b[i].members);
  }
}

}  // namespace
}  // namespace bc::bundle
