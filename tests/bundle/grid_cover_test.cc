// Tests for the grid-based bundle generation baseline.

#include "bundle/grid_cover.h"

#include <gtest/gtest.h>

#include "bundle/greedy_cover.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::bundle {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {100.0, 100.0}};
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(GridCoverTest, OutputIsAPartitionWithinRadius) {
  const net::Deployment d = random_deployment(100, 1);
  for (const double r : {2.0, 10.0, 50.0}) {
    const auto bundles = grid_bundles(d, r);
    ASSERT_TRUE(is_partition(d, bundles));
    // Cell circumradius equals r, so every member is within r of the SED
    // anchor.
    ASSERT_LE(max_charging_distance(d, bundles), r + 1e-6);
  }
}

TEST(GridCoverTest, CellAssignmentIsGeometric) {
  // 4 sensors in distinct cells of a 10sqrt(2)-cell grid.
  const net::Deployment d({{1.0, 1.0}, {30.0, 1.0}, {1.0, 30.0},
                           {30.0, 30.0}},
                          Box2{{0.0, 0.0}, {40.0, 40.0}}, {0.0, 0.0}, 2.0);
  const auto bundles = grid_bundles(d, 10.0);
  EXPECT_EQ(bundles.size(), 4u);
}

TEST(GridCoverTest, NeverBeatsItsOwnRadiusGuarantee) {
  EXPECT_THROW(grid_bundles(random_deployment(5, 2), 0.0),
               support::PreconditionError);
}

TEST(GridCoverTest, GreedyIsNeverWorseOnSmallRadii) {
  // The paper's Fig. 11(a): greedy clearly beats the grid when the radius
  // is small relative to the sensor spacing. Averaged over seeds to avoid
  // instance luck.
  double grid_total = 0.0;
  double greedy_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const net::Deployment d = random_deployment(120, 10 + seed);
    grid_total += static_cast<double>(grid_bundles(d, 6.0).size());
    greedy_total += static_cast<double>(greedy_bundles(d, 6.0).size());
  }
  EXPECT_LT(greedy_total, grid_total);
}

TEST(GridCoverTest, EmptyCellsProduceNoBundles) {
  // All sensors in one corner: exactly one non-empty cell.
  const net::Deployment d({{1.0, 1.0}, {2.0, 1.0}, {1.0, 2.0}},
                          Box2{{0.0, 0.0}, {1000.0, 1000.0}}, {0.0, 0.0},
                          2.0);
  const auto bundles = grid_bundles(d, 10.0);
  EXPECT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].members.size(), 3u);
}

}  // namespace
}  // namespace bc::bundle
