// Property tests for the hierarchical sharded solver (bundle/shard.h):
// the output must cover every sensor exactly once within the radius, be
// bit-identical at every BC_THREADS, be stable across shard-size choices,
// and degenerate to the monolithic greedy solver (the oracle) whenever the
// grid collapses to a single tile.

#include "bundle/shard.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bundle/greedy_cover.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::bundle {
namespace {

using geometry::Box2;

net::Deployment random_deployment(std::size_t n, std::uint64_t seed,
                                  double side = 100.0) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = Box2{{0.0, 0.0}, {side, side}};
  return net::uniform_random_deployment(n, spec, rng);
}

// Exact textual signature of a bundle list: anchors at full double
// precision plus the member ids. Two lists compare equal iff they are
// bit-identical.
std::string signature(const std::vector<Bundle>& bundles) {
  std::string out;
  char buf[64];
  for (const Bundle& b : bundles) {
    std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", b.anchor.x,
                  b.anchor.y, b.radius);
    out += buf;
    for (const net::SensorId id : b.members) {
      out += ' ';
      out += std::to_string(id);
    }
    out += '\n';
  }
  return out;
}

std::string signature(const tour::ChargingPlan& plan) {
  std::string out = plan.algorithm;
  char buf[64];
  for (const tour::Stop& s : plan.stops) {
    std::snprintf(buf, sizeof(buf), "(%.17g,%.17g)", s.position.x,
                  s.position.y);
    out += buf;
    for (const net::SensorId id : s.members) {
      out += ' ';
      out += std::to_string(id);
    }
    out += '\n';
  }
  return out;
}

class ThreadGuard {
 public:
  ~ThreadGuard() { support::set_thread_count(1); }
};

TEST(ShardGridTest, PartitionsSensorsDeterministically) {
  const net::Deployment d = random_deployment(200, 1, 1000.0);
  ShardOptions options;
  options.target_shard_sensors = 16;
  const ShardGrid grid = build_shard_grid(d, 60.0, options);
  ASSERT_GE(grid.tiles(), 2u);
  std::vector<int> seen(d.size(), 0);
  for (const auto& tile : grid.tile_members) {
    for (const net::SensorId id : tile) {
      ASSERT_LT(id, d.size());
      ++seen[id];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);

  const ShardGrid again = build_shard_grid(d, 60.0, options);
  EXPECT_EQ(again.cols, grid.cols);
  EXPECT_EQ(again.rows, grid.rows);
  EXPECT_EQ(again.tile_members, grid.tile_members);
}

TEST(ShardGridTest, TilesNeverThinnerThanMinFactorTimesRadius) {
  const net::Deployment d = random_deployment(400, 2, 1000.0);
  ShardOptions options;
  options.target_shard_sensors = 4;  // pressure toward tiny tiles
  const double r = 60.0;
  const ShardGrid grid = build_shard_grid(d, r, options);
  EXPECT_GE(grid.tile_w, options.min_tile_factor * r - 1e-9);
  EXPECT_GE(grid.tile_h, options.min_tile_factor * r - 1e-9);
}

TEST(ShardSolveTest, SingleTileMatchesMonolithicOracleExactly) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const net::Deployment d = random_deployment(60, seed);
    for (const double r : {5.0, 15.0, 40.0}) {
      ShardOptions options;  // target 512 >> 60 sensors: one tile
      const auto sharded = sharded_bundles(d, r, options);
      const auto oracle = greedy_bundles(d, r);
      ASSERT_EQ(signature(sharded), signature(oracle))
          << "seed=" << seed << " r=" << r;
    }
  }
}

TEST(ShardSolveTest, MultiTileOutputIsAPartitionWithinRadius) {
  for (const std::uint64_t seed : {4u, 5u}) {
    const net::Deployment d = random_deployment(300, seed, 1000.0);
    for (const double r : {30.0, 60.0}) {
      ShardOptions options;
      options.target_shard_sensors = 24;
      const ShardGrid grid = build_shard_grid(d, r, options);
      ASSERT_GE(grid.tiles(), 4u) << "test needs a genuinely multi-tile grid";
      const auto bundles = sharded_bundles(d, r, options);
      ASSERT_TRUE(is_partition(d, bundles)) << "seed=" << seed << " r=" << r;
      ASSERT_LE(max_charging_distance(d, bundles), r + 1e-6);
    }
  }
}

TEST(ShardSolveTest, StitchingNeverIncreasesBundleCount) {
  const net::Deployment d = random_deployment(300, 6, 1000.0);
  const double r = 60.0;
  ShardOptions stitched;
  stitched.target_shard_sensors = 24;
  ShardOptions unstitched = stitched;
  unstitched.stitch = false;
  const auto with = sharded_bundles(d, r, stitched);
  const auto without = sharded_bundles(d, r, unstitched);
  EXPECT_LE(with.size(), without.size());
  ASSERT_TRUE(is_partition(d, with));
  ASSERT_TRUE(is_partition(d, without));
}

TEST(ShardSolveTest, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const net::Deployment d = random_deployment(300, 7, 1000.0);
  ShardOptions options;
  options.target_shard_sensors = 24;
  support::set_thread_count(1);
  const std::string base = signature(sharded_bundles(d, 60.0, options));
  for (const std::size_t threads : {2u, 8u}) {
    support::set_thread_count(threads);
    ASSERT_EQ(signature(sharded_bundles(d, 60.0, options)), base)
        << "threads=" << threads;
  }
}

TEST(ShardSolveTest, SmallInstanceStableAcrossShardSizes) {
  // On an instance the monolithic solver can own, every target shard size
  // that still yields one tile must reproduce the oracle bit for bit; and
  // genuinely multi-tile splits must still cover within the radius.
  const net::Deployment d = random_deployment(80, 8);
  const double r = 12.0;
  const auto oracle = greedy_bundles(d, r);
  for (const std::size_t target : {64u, 256u, 1024u}) {
    ShardOptions options;
    options.target_shard_sensors = target;
    const ShardGrid grid = build_shard_grid(d, r, options);
    const auto bundles = sharded_bundles(d, r, options);
    ASSERT_TRUE(is_partition(d, bundles)) << "target=" << target;
    ASSERT_LE(max_charging_distance(d, bundles), r + 1e-6);
    if (grid.tiles() == 1) {
      ASSERT_EQ(signature(bundles), signature(oracle)) << "target=" << target;
    }
  }
}

TEST(ShardPlannerTest, SingleTilePlanMatchesBcPlanExactly) {
  const net::Deployment d = random_deployment(60, 9);
  tour::PlannerConfig config;
  config.bundle_radius = 15.0;
  const auto bc = tour::plan_charging_tour(d, tour::Algorithm::kBc, config);
  const auto sharded =
      tour::plan_charging_tour(d, tour::Algorithm::kBcSharded, config);
  EXPECT_EQ(sharded.algorithm, "BC-SHARD");
  // Identical stops in identical order; only the algorithm label differs.
  ASSERT_EQ(sharded.stops.size(), bc.stops.size());
  tour::ChargingPlan relabelled = sharded;
  relabelled.algorithm = bc.algorithm;
  EXPECT_EQ(signature(relabelled), signature(bc));
}

TEST(ShardPlannerTest, SnakePathCoversAllSensorsAndIsThreadInvariant) {
  ThreadGuard guard;
  const net::Deployment d = random_deployment(300, 10, 1000.0);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  config.shard.target_shard_sensors = 24;
  config.shard_tsp_cutover = 0;  // force the snake ordering path
  support::set_thread_count(1);
  const auto plan =
      tour::plan_charging_tour(d, tour::Algorithm::kBcSharded, config);
  std::vector<int> seen(d.size(), 0);
  for (const tour::Stop& s : plan.stops) {
    for (const net::SensorId id : s.members) ++seen[id];
  }
  for (const int count : seen) ASSERT_EQ(count, 1);

  const std::string base = signature(plan);
  for (const std::size_t threads : {2u, 8u}) {
    support::set_thread_count(threads);
    ASSERT_EQ(
        signature(tour::plan_charging_tour(d, tour::Algorithm::kBcSharded,
                                           config)),
        base)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace bc::bundle
