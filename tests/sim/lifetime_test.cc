// Tests for the WRSN lifetime simulator.

#include "sim/lifetime.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::sim {
namespace {

net::Deployment small_deployment(std::uint64_t seed = 3) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = geometry::Box2{{0.0, 0.0}, {300.0, 300.0}};
  return net::uniform_random_deployment(20, spec, rng);
}

LifetimeConfig quick_config() {
  LifetimeConfig config;
  config.planner.bundle_radius = 60.0;
  config.horizon_s = 2.0 * 24.0 * 3600.0;
  config.drain_w = {1e-4};
  return config;
}

TEST(LifetimeTest, ValidatesConfig) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.battery_capacity_j = 0.0;
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.trigger_fraction = 1.5;
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.drain_w = {1e-4, 1e-4};  // neither 1 nor n values
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.drain_w = {-1.0};
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
}

TEST(LifetimeTest, LowDrainRunsPerpetually) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  // 1e-4 W on a 20 J battery reaches the 40 % trigger after ~1.4 days, so
  // the 2-day horizon sees at least one mission — and stays perpetual.
  config.drain_w = {1e-4};
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_TRUE(stats.perpetual);
  EXPECT_DOUBLE_EQ(stats.dead_time_sensor_s, 0.0);
  EXPECT_GT(stats.missions, 0u);
  EXPECT_GT(stats.min_level_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.simulated_s, config.horizon_s);
}

TEST(LifetimeTest, ExtremeDrainKillsSensors) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {0.05};
  config.horizon_s = 6.0 * 3600.0;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_FALSE(stats.perpetual);
  EXPECT_GT(stats.dead_time_sensor_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.min_level_fraction, 0.0);
}

TEST(LifetimeTest, NoMissionBeforeTheTriggerIsReached) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  // Draining from 100 % to the 40 % trigger at 1e-5 W on a 20 J battery
  // takes 12 J / 1e-5 W = 1.2e6 s; a shorter horizon sees no mission.
  config.drain_w = {1e-5};
  config.horizon_s = 1e6;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_EQ(stats.missions, 0u);
  EXPECT_DOUBLE_EQ(stats.charger_energy_j, 0.0);
  EXPECT_GT(stats.min_level_fraction, config.trigger_fraction);
}

TEST(LifetimeTest, MissionsRefillTowardCapacity) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {1e-4};
  const LifetimeStats stats = simulate_lifetime(d, config);
  ASSERT_GT(stats.missions, 0u);
  // With missions firing, the worst level stays between dead and trigger.
  EXPECT_GT(stats.min_level_fraction, 0.0);
  EXPECT_LE(stats.min_level_fraction, config.trigger_fraction + 1e-9);
  EXPECT_GT(stats.charger_energy_j, 0.0);
  EXPECT_GT(stats.charger_busy_s, 0.0);
}

TEST(LifetimeTest, HigherDrainMeansMoreMissions) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {5e-5};
  const auto low = simulate_lifetime(d, config);
  config.drain_w = {2e-4};
  const auto high = simulate_lifetime(d, config);
  EXPECT_GT(high.missions, low.missions);
  EXPECT_GT(high.charger_energy_j, low.charger_energy_j);
}

TEST(LifetimeTest, HeterogeneousDrainsAreHonoured) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w.assign(d.size(), 1e-5);
  config.drain_w[0] = 3e-4;  // one hot sensor forces frequent missions
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_GT(stats.missions, 3u);
}

TEST(LifetimeTest, DeterministicForIdenticalInputs) {
  const net::Deployment d = small_deployment();
  const LifetimeConfig config = quick_config();
  const auto a = simulate_lifetime(d, config);
  const auto b = simulate_lifetime(d, config);
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_DOUBLE_EQ(a.charger_energy_j, b.charger_energy_j);
  EXPECT_DOUBLE_EQ(a.min_level_fraction, b.min_level_fraction);
}

TEST(LifetimeTest, SustainableDrainSearchBrackets) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.horizon_s = 1.0 * 24.0 * 3600.0;
  const double w =
      max_sustainable_drain_w(d, config, 1e-6, 0.05, /*probes=*/4);
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 0.05);
  // The found rate must itself be sustainable.
  config.drain_w = {w};
  EXPECT_TRUE(simulate_lifetime(d, config).perpetual);
}

}  // namespace
}  // namespace bc::sim
