// Tests for the WRSN lifetime simulator.

#include "sim/lifetime.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::sim {
namespace {

net::Deployment small_deployment(std::uint64_t seed = 3) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  spec.field = geometry::Box2{{0.0, 0.0}, {300.0, 300.0}};
  return net::uniform_random_deployment(20, spec, rng);
}

LifetimeConfig quick_config() {
  LifetimeConfig config;
  config.planner.bundle_radius = 60.0;
  config.horizon_s = 2.0 * 24.0 * 3600.0;
  config.drain_w = {1e-4};
  return config;
}

TEST(LifetimeTest, ValidatesConfig) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.battery_capacity_j = 0.0;
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.trigger_fraction = 1.5;
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.drain_w = {1e-4, 1e-4};  // neither 1 nor n values
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
  config = quick_config();
  config.drain_w = {-1.0};
  EXPECT_THROW(simulate_lifetime(d, config), support::PreconditionError);
}

TEST(LifetimeTest, LowDrainRunsPerpetually) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  // 1e-4 W on a 20 J battery reaches the 40 % trigger after ~1.4 days, so
  // the 2-day horizon sees at least one mission — and stays perpetual.
  config.drain_w = {1e-4};
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_TRUE(stats.perpetual);
  EXPECT_DOUBLE_EQ(stats.dead_time_sensor_s, 0.0);
  EXPECT_GT(stats.missions, 0u);
  EXPECT_GT(stats.min_level_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.simulated_s, config.horizon_s);
}

TEST(LifetimeTest, ExtremeDrainKillsSensors) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {0.05};
  config.horizon_s = 6.0 * 3600.0;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_FALSE(stats.perpetual);
  EXPECT_GT(stats.dead_time_sensor_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.min_level_fraction, 0.0);
}

TEST(LifetimeTest, NoMissionBeforeTheTriggerIsReached) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  // Draining from 100 % to the 40 % trigger at 1e-5 W on a 20 J battery
  // takes 12 J / 1e-5 W = 1.2e6 s; a shorter horizon sees no mission.
  config.drain_w = {1e-5};
  config.horizon_s = 1e6;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_EQ(stats.missions, 0u);
  EXPECT_DOUBLE_EQ(stats.charger_energy_j, 0.0);
  EXPECT_GT(stats.min_level_fraction, config.trigger_fraction);
}

TEST(LifetimeTest, MissionsRefillTowardCapacity) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {1e-4};
  const LifetimeStats stats = simulate_lifetime(d, config);
  ASSERT_GT(stats.missions, 0u);
  // With missions firing, the worst level stays between dead and trigger.
  EXPECT_GT(stats.min_level_fraction, 0.0);
  EXPECT_LE(stats.min_level_fraction, config.trigger_fraction + 1e-9);
  EXPECT_GT(stats.charger_energy_j, 0.0);
  EXPECT_GT(stats.charger_busy_s, 0.0);
}

TEST(LifetimeTest, HigherDrainMeansMoreMissions) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w = {5e-5};
  const auto low = simulate_lifetime(d, config);
  config.drain_w = {2e-4};
  const auto high = simulate_lifetime(d, config);
  EXPECT_GT(high.missions, low.missions);
  EXPECT_GT(high.charger_energy_j, low.charger_energy_j);
}

TEST(LifetimeTest, HeterogeneousDrainsAreHonoured) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.drain_w.assign(d.size(), 1e-5);
  config.drain_w[0] = 3e-4;  // one hot sensor forces frequent missions
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_GT(stats.missions, 3u);
}

TEST(LifetimeTest, DeterministicForIdenticalInputs) {
  const net::Deployment d = small_deployment();
  const LifetimeConfig config = quick_config();
  const auto a = simulate_lifetime(d, config);
  const auto b = simulate_lifetime(d, config);
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_DOUBLE_EQ(a.charger_energy_j, b.charger_energy_j);
  EXPECT_DOUBLE_EQ(a.min_level_fraction, b.min_level_fraction);
}

TEST(LifetimeTest, SustainableDrainSearchBrackets) {
  const net::Deployment d = small_deployment();
  LifetimeConfig config = quick_config();
  config.horizon_s = 1.0 * 24.0 * 3600.0;
  const double w =
      max_sustainable_drain_w(d, config, 1e-6, 0.05, /*probes=*/4);
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 0.05);
  // The found rate must itself be sustainable.
  config.drain_w = {w};
  EXPECT_TRUE(simulate_lifetime(d, config).perpetual);
}

TEST(LifetimeTest, DeadSecondsPinnedWhenStartingBelowTrigger) {
  // One sensor at (10, 0), depot at the origin, starting *below* the
  // trigger: the t = 0 scan dispatches a mission immediately and the
  // sensor goes flat mid-mission. Every quantity is analytic:
  //   level(0)      = 0.2 * 20 = 4 J, trigger level 8 J
  //   deficit       = 20 - 4 = 16 J
  //   mission time  = 20 m / 1 m/s + 16 J / 0.12 W = 20 + 400/3 s
  //   survive       = 4 J / 0.05 W = 80 s
  //   dead seconds  = (20 + 400/3) - 80 = 220/3
  // Afterwards the loop is steady (trigger at 8 J survives 160 s versus a
  // 120 s recharge mission), so 220/3 is the horizon total.
  const net::Deployment d({{10.0, 0.0}},
                          geometry::Box2{{-5.0, -5.0}, {50.0, 5.0}},
                          {0.0, 0.0}, 2.0);
  LifetimeConfig config;
  config.battery_capacity_j = 20.0;
  config.trigger_fraction = 0.4;
  config.initial_fraction = 0.2;
  config.drain_w = {0.05};
  config.horizon_s = 2000.0;
  config.algorithm = tour::Algorithm::kSc;
  config.planner.bundle_radius = 5.0;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_FALSE(stats.perpetual);
  EXPECT_NEAR(stats.dead_time_sensor_s, 220.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min_level_fraction, 0.0);
  EXPECT_GE(stats.missions, 2u);
}

TEST(LifetimeTest, DeadSecondsHeterogeneousDrainsPinned) {
  // Two sensors, both below the trigger at t = 0, with different drains:
  // only the hot one dies during the immediate mission.
  //   tour: depot -> (10,0) -> (12,0) -> depot = 24 m -> 24 s
  //   charge: 16 J / 0.12 W per sensor     -> 800/3 s
  //   hot sensor survives 4 J / 0.05 W = 80 s, cold one 4 / 0.01 = 400 s
  //   dead = (24 + 800/3) - 80; the cold sensor outlives the mission.
  const net::Deployment d({{10.0, 0.0}, {12.0, 0.0}},
                          geometry::Box2{{-5.0, -5.0}, {50.0, 5.0}},
                          {0.0, 0.0}, 2.0);
  LifetimeConfig config;
  config.battery_capacity_j = 20.0;
  config.trigger_fraction = 0.4;
  config.initial_fraction = 0.2;
  config.drain_w = {0.05, 0.01};
  config.horizon_s = 350.0;  // one mission plus a quiet tail window
  config.algorithm = tour::Algorithm::kSc;
  config.planner.bundle_radius = 5.0;
  const LifetimeStats stats = simulate_lifetime(d, config);
  EXPECT_FALSE(stats.perpetual);
  ASSERT_EQ(stats.missions, 1u);
  EXPECT_NEAR(stats.dead_time_sensor_s, (24.0 + 800.0 / 3.0) - 80.0, 1e-9);
}

}  // namespace
}  // namespace bc::sim
