// Tests for the charging-time scheduling policies.

#include "sim/schedule.h"

#include <limits>
#include <numeric>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::sim {
namespace {

using geometry::Box2;

net::Deployment line_deployment() {
  return net::Deployment({{10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}},
                         Box2{{0.0, 0.0}, {50.0, 50.0}}, {0.0, 0.0}, 2.0);
}

tour::ChargingPlan simple_plan(const net::Deployment& d) {
  tour::ChargingPlan plan;
  plan.algorithm = "test";
  plan.depot = d.depot();
  plan.stops = {tour::Stop{{10.0, 0.0}, {0, 1}},
                tour::Stop{{30.0, 0.0}, {2}}};
  return plan;
}

TEST(ScheduleTest, IsolatedTimesMatchFarthestMember) {
  const net::Deployment d = line_deployment();
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto plan = simple_plan(d);
  const auto times =
      schedule_stop_times(d, plan, model, SchedulePolicy::kIsolated);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], model.charge_time_s(10.0, 2.0));
  EXPECT_DOUBLE_EQ(times[1], model.charge_time_s(0.0, 2.0));
}

TEST(ScheduleTest, CumulativeNeverExceedsIsolatedPerStop) {
  support::Rng rng(3);
  net::FieldSpec spec;
  const net::Deployment d = net::uniform_random_deployment(80, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 40.0;
  const auto plan = tour::plan_bc(d, config);
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto isolated =
      schedule_stop_times(d, plan, model, SchedulePolicy::kIsolated);
  const auto cumulative =
      schedule_stop_times(d, plan, model, SchedulePolicy::kCumulative);
  ASSERT_EQ(isolated.size(), cumulative.size());
  for (std::size_t i = 0; i < isolated.size(); ++i) {
    ASSERT_LE(cumulative[i], isolated[i] + 1e-9);
  }
  const double total_iso =
      std::accumulate(isolated.begin(), isolated.end(), 0.0);
  const double total_cum =
      std::accumulate(cumulative.begin(), cumulative.end(), 0.0);
  EXPECT_LT(total_cum, total_iso);
}

TEST(ScheduleTest, CumulativeStillMeetsEveryDemand) {
  support::Rng rng(5);
  net::FieldSpec spec;
  const net::Deployment d = net::uniform_random_deployment(60, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto plan = tour::plan_bc(d, config);
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto times =
      schedule_stop_times(d, plan, model, SchedulePolicy::kCumulative);
  const auto received = received_energy_j(d, plan, model, times);
  for (const net::Sensor& s : d.sensors()) {
    ASSERT_GE(received[s.id], s.demand_j * (1.0 - 1e-9));
  }
}

TEST(ScheduleTest, ReceivedEnergyIsOneToMany) {
  // Every stop radiates to every sensor: a sensor not assigned to any
  // nearby stop still collects energy.
  const net::Deployment d = line_deployment();
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto plan = simple_plan(d);
  const std::vector<double> times{100.0, 0.0};
  const auto received = received_energy_j(d, plan, model, times);
  // Sensor 2 (assigned to the zero-time stop) still got cross-charged
  // from the first stop at distance 20.
  EXPECT_NEAR(received[2], model.received_power_w(20.0) * 100.0, 1e-9);
}

TEST(ScheduleTest, RejectsNonPartitionPlans) {
  const net::Deployment d = line_deployment();
  tour::ChargingPlan plan = simple_plan(d);
  plan.stops[1].members = {1, 2};  // duplicate sensor 1
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  EXPECT_THROW(
      schedule_stop_times(d, plan, model, SchedulePolicy::kIsolated),
      support::PreconditionError);
}

TEST(ScheduleTest, MismatchedTimesVectorRejected) {
  const net::Deployment d = line_deployment();
  const auto plan = simple_plan(d);
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  EXPECT_THROW(received_energy_j(d, plan, model, {1.0}),
               support::PreconditionError);
}

TEST(ScheduleTest, PolicyNamesAreStable) {
  EXPECT_EQ(to_string(SchedulePolicy::kIsolated), "isolated");
  EXPECT_EQ(to_string(SchedulePolicy::kCumulative), "cumulative");
  EXPECT_EQ(to_string(SchedulePolicy::kOptimalLp), "optimal-lp");
}

TEST(ScheduleTest, OptimalLpLowerBoundsBothHeuristics) {
  support::Rng rng(7);
  net::FieldSpec spec;
  const net::Deployment d = net::uniform_random_deployment(70, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 60.0;
  const auto plan = tour::plan_bc(d, config);
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto total = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
  };
  const double t_iso = total(
      schedule_stop_times(d, plan, model, SchedulePolicy::kIsolated));
  const double t_cum = total(
      schedule_stop_times(d, plan, model, SchedulePolicy::kCumulative));
  const double t_lp = total(
      schedule_stop_times(d, plan, model, SchedulePolicy::kOptimalLp));
  EXPECT_LE(t_lp, t_cum + 1e-6);
  EXPECT_LE(t_cum, t_iso + 1e-6);
}

TEST(ScheduleTest, OptimalLpExactlyMeetsEveryDemand) {
  support::Rng rng(9);
  net::FieldSpec spec;
  const net::Deployment d = net::uniform_random_deployment(50, spec, rng);
  tour::PlannerConfig config;
  config.bundle_radius = 70.0;
  const auto plan = tour::plan_bc(d, config);
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto times =
      schedule_stop_times(d, plan, model, SchedulePolicy::kOptimalLp);
  for (const double t : times) ASSERT_GE(t, -1e-9);
  const auto received = received_energy_j(d, plan, model, times);
  double min_fraction = std::numeric_limits<double>::infinity();
  for (const net::Sensor& s : d.sensors()) {
    ASSERT_GE(received[s.id], s.demand_j * (1.0 - 1e-6));
    min_fraction = std::min(min_fraction, received[s.id] / s.demand_j);
  }
  // The LP leaves no slack on the binding sensor.
  EXPECT_NEAR(min_fraction, 1.0, 1e-6);
}

TEST(ScheduleTest, OptimalLpOnSingleStopMatchesIsolated) {
  const net::Deployment d = line_deployment();
  tour::ChargingPlan plan;
  plan.depot = d.depot();
  plan.stops = {tour::Stop{{20.0, 0.0}, {0, 1, 2}}};
  const auto model = charging::ChargingModel::icdcs2019_simulation();
  const auto lp_times =
      schedule_stop_times(d, plan, model, SchedulePolicy::kOptimalLp);
  const auto iso_times =
      schedule_stop_times(d, plan, model, SchedulePolicy::kIsolated);
  ASSERT_EQ(lp_times.size(), 1u);
  EXPECT_NEAR(lp_times[0], iso_times[0], 1e-6);
}

}  // namespace
}  // namespace bc::sim
