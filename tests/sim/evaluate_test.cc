// Tests for plan evaluation and feasibility checking.

#include "sim/evaluate.h"

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"
#include "tour/planner.h"

namespace bc::sim {
namespace {

net::Deployment random_deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  net::FieldSpec spec;
  return net::uniform_random_deployment(n, spec, rng);
}

TEST(EvaluateTest, BreakdownIsInternallyConsistent) {
  const net::Deployment d = random_deployment(60, 1);
  tour::PlannerConfig config;
  config.bundle_radius = 30.0;
  const auto plan = tour::plan_bc(d, config);
  const EvaluationConfig eval;
  const PlanMetrics m = evaluate_plan(d, plan, eval);

  EXPECT_EQ(m.num_stops, plan.stops.size());
  EXPECT_NEAR(m.tour_length_m, tour::plan_tour_length(plan), 1e-9);
  EXPECT_NEAR(m.move_energy_j,
              eval.movement.move_energy_j(m.tour_length_m), 1e-9);
  EXPECT_NEAR(m.move_time_s, eval.movement.move_time_s(m.tour_length_m),
              1e-9);
  EXPECT_NEAR(m.charge_energy_j,
              eval.charging.cost_of_stop_j(m.charge_time_s), 1e-6);
  EXPECT_NEAR(m.total_energy_j, m.move_energy_j + m.charge_energy_j, 1e-6);
  EXPECT_NEAR(m.total_time_s, m.move_time_s + m.charge_time_s, 1e-6);
  EXPECT_NEAR(m.avg_charge_time_per_sensor_s,
              m.charge_time_s / static_cast<double>(d.size()), 1e-9);
  EXPECT_GE(m.min_demand_fraction, 1.0 - 1e-9);
}

TEST(EvaluateTest, FeasibilityHoldsForAllPlanners) {
  const net::Deployment d = random_deployment(50, 2);
  tour::PlannerConfig config;
  config.bundle_radius = 40.0;
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt}) {
    const auto plan = tour::plan_charging_tour(d, algorithm, config);
    EXPECT_TRUE(plan_is_feasible(d, plan, EvaluationConfig{}))
        << tour::to_string(algorithm);
  }
}

TEST(EvaluateTest, CumulativePolicyCostsNoMoreEnergy) {
  const net::Deployment d = random_deployment(80, 3);
  tour::PlannerConfig config;
  config.bundle_radius = 50.0;
  const auto plan = tour::plan_bc(d, config);
  EvaluationConfig iso;
  iso.policy = SchedulePolicy::kIsolated;
  EvaluationConfig cum;
  cum.policy = SchedulePolicy::kCumulative;
  const PlanMetrics m_iso = evaluate_plan(d, plan, iso);
  const PlanMetrics m_cum = evaluate_plan(d, plan, cum);
  EXPECT_LE(m_cum.charge_time_s, m_iso.charge_time_s + 1e-9);
  EXPECT_LE(m_cum.total_energy_j, m_iso.total_energy_j + 1e-9);
  EXPECT_DOUBLE_EQ(m_cum.tour_length_m, m_iso.tour_length_m);
  EXPECT_GE(m_cum.min_demand_fraction, 1.0 - 1e-9);
}

TEST(EvaluateTest, InfeasiblePlanIsDetected) {
  // Manually zero the members of one stop: the evaluator's schedule will
  // park zero seconds there and the sensor may only get cross-charge.
  const net::Deployment d(
      {{100.0, 100.0}, {900.0, 900.0}},
      geometry::Box2{{0.0, 0.0}, {1000.0, 1000.0}}, {0.0, 0.0}, 2.0);
  tour::ChargingPlan plan;
  plan.algorithm = "broken";
  plan.depot = d.depot();
  // Both sensors assigned to a stop near sensor 0 only; sensor 1 is
  // 1131 m away and its cross-charge is tiny but nonzero, so the isolated
  // schedule on the assigned stop *will* cover it (farthest member rule).
  // To get infeasibility, give sensor 1 its own stop with zero time by
  // assigning it nowhere — which the partition check rejects — so instead
  // verify the tolerance knob of plan_is_feasible.
  plan.stops = {tour::Stop{{100.0, 100.0}, {0, 1}}};
  EvaluationConfig eval;
  const PlanMetrics m = evaluate_plan(d, plan, eval);
  EXPECT_GE(m.min_demand_fraction, 1.0 - 1e-9);  // farthest-member rule
  EXPECT_TRUE(plan_is_feasible(d, plan, eval));
  EXPECT_THROW(plan_is_feasible(d, plan, eval, -1.0),
               support::PreconditionError);
}

TEST(EvaluateTest, EmptyPlanForbiddenByPartitionCheck) {
  const net::Deployment d = random_deployment(3, 4);
  tour::ChargingPlan plan;
  plan.depot = d.depot();
  EXPECT_THROW(evaluate_plan(d, plan, EvaluationConfig{}),
               support::PreconditionError);
}

}  // namespace
}  // namespace bc::sim
