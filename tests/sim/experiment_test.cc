// Tests for the multi-seed experiment runner.

#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::sim {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.make_deployment = uniform_factory(30, net::FieldSpec{});
  spec.algorithm = tour::Algorithm::kBc;
  spec.planner.bundle_radius = 40.0;
  spec.runs = 5;
  return spec;
}

TEST(ExperimentTest, AggregatesTheRequestedNumberOfRuns) {
  const AggregateMetrics agg = run_experiment(small_spec());
  EXPECT_EQ(agg.total_energy_j.count(), 5u);
  EXPECT_EQ(agg.tour_length_m.count(), 5u);
  EXPECT_GT(agg.total_energy_j.mean(), 0.0);
  EXPECT_GE(agg.min_demand_fraction.min(), 1.0 - 1e-9);
}

TEST(ExperimentTest, SameSeedIsReproducible) {
  const AggregateMetrics a = run_experiment(small_spec());
  const AggregateMetrics b = run_experiment(small_spec());
  EXPECT_DOUBLE_EQ(a.total_energy_j.mean(), b.total_energy_j.mean());
  EXPECT_DOUBLE_EQ(a.tour_length_m.mean(), b.tour_length_m.mean());
}

TEST(ExperimentTest, DifferentSeedsChangeTheSamples) {
  ExperimentSpec spec = small_spec();
  const AggregateMetrics a = run_experiment(spec);
  spec.base_seed = 777;
  const AggregateMetrics b = run_experiment(spec);
  EXPECT_NE(a.total_energy_j.mean(), b.total_energy_j.mean());
}

TEST(ExperimentTest, RunsVaryAcrossSeedsWithinOneExperiment) {
  ExperimentSpec spec = small_spec();
  spec.runs = 10;
  const AggregateMetrics agg = run_experiment(spec);
  // Ten random deployments cannot all have the same tour length.
  EXPECT_GT(agg.tour_length_m.stddev(), 0.0);
}

TEST(ExperimentTest, ValidatesSpec) {
  ExperimentSpec spec = small_spec();
  spec.runs = 0;
  EXPECT_THROW(run_experiment(spec), support::PreconditionError);
  spec = small_spec();
  spec.make_deployment = nullptr;
  EXPECT_THROW(run_experiment(spec), support::PreconditionError);
}

TEST(ExperimentTest, AllAlgorithmsRunUnderTheRunner) {
  for (const auto algorithm :
       {tour::Algorithm::kSc, tour::Algorithm::kCss, tour::Algorithm::kBc,
        tour::Algorithm::kBcOpt}) {
    ExperimentSpec spec = small_spec();
    spec.algorithm = algorithm;
    spec.runs = 2;
    const AggregateMetrics agg = run_experiment(spec);
    EXPECT_EQ(agg.total_energy_j.count(), 2u) << tour::to_string(algorithm);
  }
}

}  // namespace
}  // namespace bc::sim
