// Tests for the experiment checkpoint journal: format round-trips,
// corruption handling, and the determinism of the on-disk bytes.

#include "sim/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "support/atomic_file.h"

namespace bc::sim {
namespace {

// Fresh path for this test: TempDir persists across gtest invocations, so
// a leftover journal from a previous run must not leak into this one.
std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(CheckpointTest, FreshJournalRoundTrips) {
  const std::string path = temp_path("bc_ckpt_rt.ckpt");
  auto journal = CheckpointJournal::open(path, "sweep-abc");
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal.value().size(), 0u);
  journal.value().record("a:run=0", "1,2");
  journal.value().record("a:run=1", "3,4");
  ASSERT_TRUE(journal.value().flush().has_value());

  auto reopened = CheckpointJournal::open(path, "sweep-abc");
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened.value().size(), 2u);
  EXPECT_TRUE(reopened.value().contains("a:run=0"));
  ASSERT_NE(reopened.value().lookup("a:run=1"), nullptr);
  EXPECT_EQ(*reopened.value().lookup("a:run=1"), "3,4");
  EXPECT_EQ(reopened.value().lookup("a:run=2"), nullptr);
}

TEST(CheckpointTest, FlushBytesIndependentOfRecordOrder) {
  const std::string pa = temp_path("bc_ckpt_order_a.ckpt");
  const std::string pb = temp_path("bc_ckpt_order_b.ckpt");
  auto a = CheckpointJournal::open(pa, "sweep-x");
  auto b = CheckpointJournal::open(pb, "sweep-x");
  ASSERT_TRUE(a.has_value() && b.has_value());
  a.value().record("k1", "v1");
  a.value().record("k2", "v2");
  a.value().record("k3", "v3");
  b.value().record("k3", "v3");
  b.value().record("k1", "v1");
  b.value().record("k2", "v2");
  ASSERT_TRUE(a.value().flush().has_value());
  ASSERT_TRUE(b.value().flush().has_value());
  EXPECT_EQ(support::read_file(pa).value(), support::read_file(pb).value());
}

TEST(CheckpointTest, SweepIdMismatchRefusesToResume) {
  const std::string path = temp_path("bc_ckpt_mismatch.ckpt");
  auto journal = CheckpointJournal::open(path, "sweep-one");
  ASSERT_TRUE(journal.has_value());
  ASSERT_TRUE(journal.value().flush().has_value());
  const auto other = CheckpointJournal::open(path, "sweep-two");
  ASSERT_FALSE(other.has_value());
  EXPECT_EQ(other.fault().kind, support::FaultKind::kInvalidInput);
  EXPECT_NE(other.fault().message.find("sweep id mismatch"),
            std::string::npos);
}

TEST(CheckpointTest, RejectsBadHeaderAndVersion) {
  const std::string path = temp_path("bc_ckpt_header.ckpt");
  ASSERT_TRUE(support::write_file_atomic(path, "not a journal\n").has_value());
  EXPECT_FALSE(CheckpointJournal::open(path, "s").has_value());

  ASSERT_TRUE(support::write_file_atomic(
                  path, "bundlecharge-checkpoint v999 s\n")
                  .has_value());
  const auto versioned = CheckpointJournal::open(path, "s");
  ASSERT_FALSE(versioned.has_value());
  EXPECT_NE(versioned.fault().message.find("unsupported version"),
            std::string::npos);

  // An empty file is a fresh journal, not corruption.
  ASSERT_TRUE(support::write_file_atomic(path, "").has_value());
  EXPECT_TRUE(CheckpointJournal::open(path, "s").has_value());
}

TEST(CheckpointTest, InteriorCorruptionIsFatalTornTailIsDropped) {
  const std::string path = temp_path("bc_ckpt_corrupt.ckpt");
  auto journal = CheckpointJournal::open(path, "s");
  ASSERT_TRUE(journal.has_value());
  journal.value().record("k1", "v1");
  journal.value().record("k2", "v2");
  ASSERT_TRUE(journal.value().flush().has_value());
  const std::string good = support::read_file(path).value();

  // Flip one payload byte of an interior record: CRC catches it. (Search
  // for the full "key payload" body — a bare "v1" would hit the header's
  // version token first.)
  std::string flipped = good;
  flipped[flipped.find("k1 v1") + 3] = 'X';
  ASSERT_TRUE(support::write_file_atomic(path, flipped).has_value());
  const auto corrupt = CheckpointJournal::open(path, "s");
  ASSERT_FALSE(corrupt.has_value());
  EXPECT_NE(corrupt.fault().message.find("CRC mismatch"), std::string::npos);

  // Truncate mid-way through the final record (no trailing newline): the
  // torn tail is dropped, every complete record survives.
  const std::string torn = good.substr(0, good.size() - 4);
  ASSERT_TRUE(support::write_file_atomic(path, torn).has_value());
  const auto tolerated = CheckpointJournal::open(path, "s");
  ASSERT_TRUE(tolerated.has_value());
  EXPECT_EQ(tolerated.value().size(), 1u);
  EXPECT_TRUE(tolerated.value().contains("k1"));
  EXPECT_FALSE(tolerated.value().contains("k2"));

  // The same damage followed by a newline is no longer a torn tail — a
  // complete-but-wrong record is corruption.
  ASSERT_TRUE(support::write_file_atomic(path, torn + "\n").has_value());
  EXPECT_FALSE(CheckpointJournal::open(path, "s").has_value());
}

TEST(CheckpointTest, LastWriteWinsAndPreconditionsHold) {
  const std::string path = temp_path("bc_ckpt_lww.ckpt");
  auto journal = CheckpointJournal::open(path, "s");
  ASSERT_TRUE(journal.has_value());
  journal.value().record("k", "first");
  journal.value().record("k", "second");
  EXPECT_EQ(journal.value().size(), 1u);
  EXPECT_EQ(*journal.value().lookup("k"), "second");
  EXPECT_THROW(journal.value().record("bad key", "v"),
               support::PreconditionError);
  EXPECT_THROW(journal.value().record("k", "bad value"),
               support::PreconditionError);
}

TEST(CheckpointTest, MetricsEncodeDecodeIsBitExact) {
  PlanMetrics m;
  m.num_stops = 37;
  m.tour_length_m = 1234.5678901234567;
  m.move_energy_j = 1.0 / 3.0;
  m.move_time_s = 6.02214076e23;
  m.charge_time_s = 5e-324;  // denormal min
  m.charge_energy_j = 0.0;
  m.total_energy_j = -0.0;
  m.total_time_s = 0.1;  // not exactly representable in binary
  m.avg_charge_time_per_sensor_s = 3.141592653589793;
  m.min_demand_fraction = 0.9999999999999999;

  const std::string payload = encode_metrics(m);
  EXPECT_EQ(payload.find(' '), std::string::npos);  // journal-safe token
  const auto decoded = decode_metrics(payload);
  ASSERT_TRUE(decoded.has_value());
  const PlanMetrics& d = decoded.value();
  EXPECT_EQ(d.num_stops, m.num_stops);
  // Bit-exact, not merely near: hexfloats round-trip doubles.
  EXPECT_EQ(std::memcmp(&d.tour_length_m, &m.tour_length_m, sizeof(double)),
            0);
  EXPECT_EQ(d.move_energy_j, m.move_energy_j);
  EXPECT_EQ(d.move_time_s, m.move_time_s);
  EXPECT_EQ(d.charge_time_s, m.charge_time_s);
  EXPECT_EQ(d.total_time_s, m.total_time_s);
  EXPECT_EQ(d.avg_charge_time_per_sensor_s, m.avg_charge_time_per_sensor_s);
  EXPECT_EQ(d.min_demand_fraction, m.min_demand_fraction);
  EXPECT_TRUE(std::signbit(d.total_energy_j));

  EXPECT_FALSE(decode_metrics("garbage").has_value());
  EXPECT_FALSE(decode_metrics("1,2,3").has_value());
}

TEST(CheckpointTest, CellKeysComposePrefixAndRun) {
  EXPECT_EQ(cell_key("r=20_alg=BC", 17), "r=20_alg=BC:run=17");
  EXPECT_THROW(cell_key("has space", 0), support::PreconditionError);
}

}  // namespace
}  // namespace bc::sim
