// Metamorphic scaling laws of the charging model (Eq. 1).
//
// These pin down the model's algebraic structure: how received power,
// charge time, and charger cost must respond to scaling alpha, beta,
// power, distance, and demand. Violations indicate unit mistakes — the
// most dangerous class of bug in an energy simulator.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "charging/model.h"

namespace bc::charging {
namespace {

class ScalingPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ScalingPropertyTest, AlphaScalesPowerLinearly) {
  const auto [d, e] = GetParam();
  const ChargingModel base(36.0, 30.0, 3.0, 3.0);
  const ChargingModel doubled(72.0, 30.0, 3.0, 3.0);
  EXPECT_NEAR(doubled.received_power_w(d), 2.0 * base.received_power_w(d),
              1e-12);
  EXPECT_NEAR(doubled.charge_time_s(d, e), base.charge_time_s(d, e) / 2.0,
              1e-9);
}

TEST_P(ScalingPropertyTest, TransmitPowerScalesPowerLinearly) {
  const auto [d, e] = GetParam();
  const ChargingModel base(36.0, 30.0, 3.0, 3.0);
  const ChargingModel strong(36.0, 30.0, 9.0, 3.0);
  EXPECT_NEAR(strong.received_power_w(d), 3.0 * base.received_power_w(d),
              1e-12);
  // Same electrical draw, 3x radiated power: cost per delivered joule
  // drops 3x.
  EXPECT_NEAR(strong.charge_cost_j(d, e), base.charge_cost_j(d, e) / 3.0,
              1e-9);
}

TEST_P(ScalingPropertyTest, JointDistanceBetaScaleIsQuadratic) {
  const auto [d, e] = GetParam();
  // Scaling all lengths (d and beta) by k divides power by k^2.
  const double k = 2.5;
  const ChargingModel base(36.0, 30.0, 3.0, 3.0);
  const ChargingModel scaled(36.0, 30.0 * k, 3.0, 3.0);
  EXPECT_NEAR(scaled.received_power_w(d * k),
              base.received_power_w(d) / (k * k), 1e-12);
  (void)e;
}

TEST_P(ScalingPropertyTest, DemandScalesTimeAndCostLinearly) {
  const auto [d, e] = GetParam();
  const ChargingModel m(36.0, 30.0, 3.0, 3.0);
  EXPECT_NEAR(m.charge_time_s(d, 2.0 * e), 2.0 * m.charge_time_s(d, e),
              1e-9);
  EXPECT_NEAR(m.charge_cost_j(d, 2.0 * e), 2.0 * m.charge_cost_j(d, e),
              1e-9);
}

TEST_P(ScalingPropertyTest, EnergyConservingCostClosedForm) {
  // With draw == radiated power, cost to deliver e at distance d is
  // exactly e (d + beta)^2 / alpha.
  const auto [d, e] = GetParam();
  const ChargingModel m(36.0, 30.0, 3.0, 3.0);
  EXPECT_NEAR(m.charge_cost_j(d, e), e * (d + 30.0) * (d + 30.0) / 36.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DistanceDemandGrid, ScalingPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 10.0, 55.0, 200.0),
                       ::testing::Values(0.004, 2.0, 15.0)));

}  // namespace
}  // namespace bc::charging
