// Tests for the movement model.

#include "charging/movement.h"

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::charging {
namespace {

TEST(MovementModelTest, ValidatesParameters) {
  EXPECT_THROW(MovementModel(0.0, 1.0), support::PreconditionError);
  EXPECT_THROW(MovementModel(5.59, 0.0), support::PreconditionError);
  EXPECT_THROW(MovementModel(-5.59, 1.0), support::PreconditionError);
}

TEST(MovementModelTest, EnergyIsLinearInDistance) {
  const MovementModel m = MovementModel::icdcs2019();
  EXPECT_DOUBLE_EQ(m.joules_per_meter(), 5.59);
  EXPECT_DOUBLE_EQ(m.move_energy_j(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.move_energy_j(100.0), 559.0);
  EXPECT_DOUBLE_EQ(m.move_energy_j(250.0), 2.5 * m.move_energy_j(100.0));
  EXPECT_THROW(m.move_energy_j(-1.0), support::PreconditionError);
}

TEST(MovementModelTest, TimeFollowsSpeed) {
  const MovementModel m = MovementModel::testbed_robot();
  EXPECT_DOUBLE_EQ(m.speed_m_per_s(), 0.3);
  EXPECT_NEAR(m.move_time_s(3.0), 10.0, 1e-12);
  EXPECT_THROW(m.move_time_s(-1.0), support::PreconditionError);
}

TEST(MovementModelTest, PresetsMatchPaperConstants) {
  EXPECT_DOUBLE_EQ(MovementModel::icdcs2019().joules_per_meter(), 5.59);
  EXPECT_DOUBLE_EQ(MovementModel::testbed_robot().joules_per_meter(), 5.59);
  EXPECT_DOUBLE_EQ(MovementModel::testbed_robot().speed_m_per_s(), 0.3);
}

}  // namespace
}  // namespace bc::charging
