// Tests for the quadratic-attenuation charging model (Eq. 1).

#include "charging/model.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "support/require.h"

namespace bc::charging {
namespace {

TEST(ChargingModelTest, ConstructorValidatesParameters) {
  EXPECT_THROW(ChargingModel(0.0, 30.0, 3.0, 3.0),
               support::PreconditionError);
  EXPECT_THROW(ChargingModel(36.0, 0.0, 3.0, 3.0),
               support::PreconditionError);
  EXPECT_THROW(ChargingModel(36.0, 30.0, 0.0, 3.0),
               support::PreconditionError);
  EXPECT_THROW(ChargingModel(36.0, 30.0, 3.0, -1.0),
               support::PreconditionError);
}

TEST(ChargingModelTest, ReceivedPowerMatchesEquationOne) {
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  // p_r(d) = 36 / (d + 30)^2 * 3 W.
  EXPECT_DOUBLE_EQ(m.received_power_w(0.0), 36.0 / 900.0 * 3.0);
  EXPECT_DOUBLE_EQ(m.received_power_w(30.0), 36.0 / 3600.0 * 3.0);
  EXPECT_THROW(m.received_power_w(-1.0), support::PreconditionError);
}

TEST(ChargingModelTest, PowerDecaysQuadratically) {
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  // Doubling (d + beta) quarters the received power.
  const double p1 = m.received_power_w(0.0);    // d + beta = 30
  const double p2 = m.received_power_w(30.0);   // d + beta = 60
  EXPECT_NEAR(p1 / p2, 4.0, 1e-12);
}

TEST(ChargingModelTest, PowerIsStrictlyDecreasingInDistance) {
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  double previous = m.received_power_w(0.0);
  for (double d = 1.0; d <= 200.0; d += 1.0) {
    const double current = m.received_power_w(d);
    ASSERT_LT(current, previous);
    previous = current;
  }
}

TEST(ChargingModelTest, ChargeTimeInvertsPower) {
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  const double t = m.charge_time_s(10.0, 2.0);
  EXPECT_NEAR(t * m.received_power_w(10.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.charge_time_s(10.0, 0.0), 0.0);
  EXPECT_THROW(m.charge_time_s(10.0, -1.0), support::PreconditionError);
}

TEST(ChargingModelTest, ChargeTimeGrowsQuadraticallyWithDistance) {
  // The WISP anecdote from §I: charging time scales with (d + beta)^2.
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  const double t0 = m.charge_time_s(0.0, 2.0);
  const double t30 = m.charge_time_s(30.0, 2.0);
  EXPECT_NEAR(t30 / t0, 4.0, 1e-12);
}

TEST(ChargingModelTest, CostAccountsChargerDraw) {
  const ChargingModel m(36.0, 30.0, 3.0, 12.0);  // 25 % efficient PA
  const double t = m.charge_time_s(5.0, 2.0);
  EXPECT_DOUBLE_EQ(m.charge_cost_j(5.0, 2.0), 12.0 * t);
  EXPECT_DOUBLE_EQ(m.cost_of_stop_j(10.0), 120.0);
  EXPECT_THROW(m.cost_of_stop_j(-1.0), support::PreconditionError);
}

TEST(ChargingModelTest, EnergyConservingProfileCostIsPowerIndependent) {
  // With charge_cost == transmit power, the charger-side energy to deliver
  // `e` at distance d is e * (d + beta)^2 / alpha — independent of the
  // absolute power. This is what makes Fig. 6(b)'s trade-off well defined.
  const ChargingModel weak(36.0, 30.0, 1.0, 1.0);
  const ChargingModel strong(36.0, 30.0, 10.0, 10.0);
  EXPECT_NEAR(weak.charge_cost_j(12.0, 2.0), strong.charge_cost_j(12.0, 2.0),
              1e-9);
  EXPECT_NEAR(weak.charge_cost_j(12.0, 2.0), 2.0 * 42.0 * 42.0 / 36.0, 1e-9);
}

TEST(ChargingModelTest, PaperCostProfileMatchesQuotedRate) {
  const ChargingModel m = ChargingModel::icdcs2019_paper_cost();
  // 0.9 J/min = 0.015 W.
  EXPECT_NEAR(m.cost_of_stop_j(60.0), 0.9, 1e-12);
}

TEST(ChargingModelTest, RangeForPowerInvertsReceivedPower) {
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  const double d = m.range_for_power_m(0.01);
  EXPECT_NEAR(m.received_power_w(d), 0.01, 1e-9);
  // Asking for more power than available at contact clamps to zero.
  EXPECT_DOUBLE_EQ(m.range_for_power_m(1e9), 0.0);
  EXPECT_THROW(m.range_for_power_m(0.0), support::PreconditionError);
}

TEST(ChargingModelTest, FriisConstructionIsPhysical) {
  const ChargingModel m = ChargingModel::powercast_testbed();
  // A 3 W 915 MHz transmitter should deliver on the order of milliwatts at
  // 1 m — the P2110 datasheet regime — not watts, not microwatts.
  const double p_1m = m.received_power_w(1.0);
  EXPECT_GT(p_1m, 5e-4);
  EXPECT_LT(p_1m, 5e-2);
  // Friis parameter validation.
  EXPECT_THROW(ChargingModel::from_friis(8.0, 2.0, -0.33, 0.25, 2.0, 0.1,
                                         3.0, 3.0),
               support::PreconditionError);
  EXPECT_THROW(ChargingModel::from_friis(8.0, 2.0, 0.33, 1.5, 2.0, 0.1, 3.0,
                                         3.0),
               support::PreconditionError);
  EXPECT_THROW(ChargingModel::from_friis(8.0, 2.0, 0.33, 0.25, 0.5, 0.1, 3.0,
                                         3.0),
               support::PreconditionError);
}

TEST(ChargingModelTest, ReceivedPowerNeverExceedsTransmitPower) {
  // A model with alpha > beta^2 would, read literally, receive more than
  // it radiates at short range; the conservation clamp caps it at p_tx.
  const ChargingModel hot(/*alpha=*/36.0, /*beta=*/0.01,
                          /*transmit_power_w=*/3.0, /*charge_cost_w=*/3.0);
  EXPECT_DOUBLE_EQ(hot.received_power_w(0.0), 3.0);
  EXPECT_DOUBLE_EQ(hot.received_power_w(1.0), 3.0);  // still inside the clamp
  for (double d = 0.0; d < 50.0; d += 0.5) {
    EXPECT_LE(hot.received_power_w(d), hot.transmit_power_w());
  }
  // Beyond sqrt(alpha) - beta the unclamped law takes over again.
  EXPECT_LT(hot.received_power_w(10.0), 3.0);
  EXPECT_NEAR(hot.received_power_w(10.0), 36.0 / (10.01 * 10.01) * 3.0,
              1e-12);
}

TEST(ChargingModelTest, ClampLeavesStandardProfilesUntouched) {
  // icdcs2019 has alpha / beta^2 = 0.04 << 1: the clamp never binds, so
  // every published number is unchanged.
  const ChargingModel m = ChargingModel::icdcs2019_simulation();
  EXPECT_DOUBLE_EQ(m.received_power_w(0.0), 36.0 / 900.0 * 3.0);
  EXPECT_DOUBLE_EQ(m.received_power_w(20.0), 36.0 / 2500.0 * 3.0);
}

TEST(ChargingModelTest, ChargeTimeIsFiniteInsideTheClamp) {
  const ChargingModel hot(/*alpha=*/100.0, /*beta=*/1.0,
                          /*transmit_power_w=*/3.0, /*charge_cost_w=*/3.0);
  // At contact the sensor absorbs exactly p_tx, no more.
  EXPECT_DOUBLE_EQ(hot.charge_time_s(0.0, 6.0), 2.0);
}

TEST(ChargingModelTest, RangeForPowerConsistentWithClamp) {
  const ChargingModel hot(/*alpha=*/36.0, /*beta=*/0.01,
                          /*transmit_power_w=*/3.0, /*charge_cost_w=*/3.0);
  // Requests at or above the radiated power collapse to zero range...
  EXPECT_DOUBLE_EQ(hot.range_for_power_m(3.0), 0.0);
  EXPECT_DOUBLE_EQ(hot.range_for_power_m(10.0), 0.0);
  // ...while requests below it still invert the attenuation law.
  const double d = hot.range_for_power_m(0.5);
  EXPECT_NEAR(hot.received_power_w(d), 0.5, 1e-9);
}

TEST(ChargingModelTest, FriisRejectsNonFiniteInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(
      ChargingModel::from_friis(inf, 2.0, 0.33, 0.25, 2.0, 0.1, 3.0, 3.0),
      support::PreconditionError);
  EXPECT_THROW(
      ChargingModel::from_friis(8.0, nan, 0.33, 0.25, 2.0, 0.1, 3.0, 3.0),
      support::PreconditionError);
  EXPECT_THROW(
      ChargingModel::from_friis(8.0, 2.0, inf, 0.25, 2.0, 0.1, 3.0, 3.0),
      support::PreconditionError);
  EXPECT_THROW(
      ChargingModel::from_friis(8.0, 2.0, 0.33, 0.25, inf, 0.1, 3.0, 3.0),
      support::PreconditionError);
}

}  // namespace
}  // namespace bc::charging
