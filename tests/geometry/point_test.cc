// Tests for Point2 / Box2 algebra.

#include "geometry/point.h"

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace bc::geometry {
namespace {

TEST(Point2Test, ArithmeticOperators) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Point2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Point2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Point2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Point2{1.5, -2.0}));
  Point2 c = a;
  c += b;
  EXPECT_EQ(c, a + b);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Point2Test, DotAndCross) {
  const Point2 a{1.0, 0.0};
  const Point2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW of a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 1.0);
}

TEST(Point2Test, NormAndNormalize) {
  const Point2 p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.norm(), 5.0);
  EXPECT_DOUBLE_EQ(p.norm_squared(), 25.0);
  const Point2 unit = p.normalized();
  EXPECT_NEAR(unit.norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit.x, 0.6, 1e-12);
  // The zero vector normalises to itself rather than NaN.
  const Point2 zero{0.0, 0.0};
  EXPECT_EQ(zero.normalized(), zero);
}

TEST(Point2Test, PerpRotatesCcw) {
  const Point2 p{1.0, 0.0};
  EXPECT_EQ(p.perp(), (Point2{0.0, 1.0}));
  EXPECT_DOUBLE_EQ(p.dot(p.perp()), 0.0);
}

TEST(Point2Test, DistanceHelpers) {
  const Point2 a{0.0, 0.0};
  const Point2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
  EXPECT_EQ(midpoint(a, b), (Point2{1.5, 2.0}));
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), midpoint(a, b));
}

TEST(Point2Test, AlmostEqualRespectsTolerance) {
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.0, 1.0 + 1e-10}));
  EXPECT_FALSE(almost_equal({1.0, 1.0}, {1.0, 1.001}));
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.0, 1.001}, 0.01));
}

TEST(Point2Test, StreamsReadably) {
  std::ostringstream os;
  os << Point2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(Box2Test, GeometryAndContainment) {
  const Box2 box{{0.0, 0.0}, {4.0, 2.0}};
  EXPECT_DOUBLE_EQ(box.width(), 4.0);
  EXPECT_DOUBLE_EQ(box.height(), 2.0);
  EXPECT_DOUBLE_EQ(box.area(), 8.0);
  EXPECT_EQ(box.center(), (Point2{2.0, 1.0}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));   // boundary included
  EXPECT_TRUE(box.contains({4.0, 2.0}));
  EXPECT_TRUE(box.contains({2.0, 1.0}));
  EXPECT_FALSE(box.contains({4.1, 1.0}));
  EXPECT_FALSE(box.contains({2.0, -0.1}));
}

TEST(Box2Test, ExpandedToGrowsMinimally) {
  const Box2 box{{0.0, 0.0}, {1.0, 1.0}};
  const Box2 grown = box.expanded_to({3.0, -1.0});
  EXPECT_EQ(grown.lo, (Point2{0.0, -1.0}));
  EXPECT_EQ(grown.hi, (Point2{3.0, 1.0}));
  // Expanding to an interior point is a no-op.
  const Box2 same = box.expanded_to({0.5, 0.5});
  EXPECT_EQ(same.lo, box.lo);
  EXPECT_EQ(same.hi, box.hi);
}

TEST(Box2Test, BoundingBoxOfPoints) {
  const std::vector<Point2> pts{{1.0, 5.0}, {-2.0, 3.0}, {4.0, -1.0}};
  const Box2 box = bounding_box(pts);
  EXPECT_EQ(box.lo, (Point2{-2.0, -1.0}));
  EXPECT_EQ(box.hi, (Point2{4.0, 5.0}));
}

}  // namespace
}  // namespace bc::geometry
