// Tests for segment projection / distance.

#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace bc::geometry {
namespace {

TEST(SegmentTest, LengthIsEuclidean) {
  EXPECT_DOUBLE_EQ((Segment{{0.0, 0.0}, {3.0, 4.0}}.length()), 5.0);
}

TEST(SegmentTest, ProjectionInsideSegment) {
  const Segment seg{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(closest_parameter(seg, {4.0, 3.0}), 0.4);
  EXPECT_EQ(closest_point(seg, {4.0, 3.0}), (Point2{4.0, 0.0}));
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {4.0, 3.0}), 3.0);
}

TEST(SegmentTest, ProjectionClampsToEndpoints) {
  const Segment seg{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(closest_parameter(seg, {-5.0, 1.0}), 0.0);
  EXPECT_EQ(closest_point(seg, {-5.0, 0.0}), (Point2{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(closest_parameter(seg, {15.0, 1.0}), 1.0);
  EXPECT_EQ(closest_point(seg, {15.0, 0.0}), (Point2{10.0, 0.0}));
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {13.0, 4.0}), 5.0);
}

TEST(SegmentTest, DegenerateSegmentActsAsPoint) {
  const Segment seg{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(closest_parameter(seg, {5.0, 6.0}), 0.0);
  EXPECT_EQ(closest_point(seg, {5.0, 6.0}), (Point2{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {5.0, 6.0}), 5.0);
}

TEST(SegmentTest, PointOnSegmentHasZeroDistance) {
  const Segment seg{{0.0, 0.0}, {4.0, 4.0}};
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(distance_to_segment(seg, {4.0, 4.0}), 0.0);
}

}  // namespace
}  // namespace bc::geometry
