// Tests for focal-form ellipses.

#include "geometry/ellipse.h"

#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::geometry {
namespace {

TEST(EllipseTest, ThroughPointHasZeroLevelThere) {
  const Point2 f1{-3.0, 0.0};
  const Point2 f2{3.0, 0.0};
  const Point2 p{0.0, 4.0};
  const Ellipse e = Ellipse::through_point(f1, f2, p);
  EXPECT_NEAR(e.level(p), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.semi_major, 5.0);  // |pf1| + |pf2| = 10
}

TEST(EllipseTest, AxesSatisfyFocalRelation) {
  const Ellipse e{{-3.0, 0.0}, {3.0, 0.0}, 5.0};
  EXPECT_DOUBLE_EQ(e.focal_distance(), 6.0);
  EXPECT_DOUBLE_EQ(e.semi_minor(), 4.0);  // b = sqrt(25 - 9)
  EXPECT_EQ(e.center(), (Point2{0.0, 0.0}));
}

TEST(EllipseTest, DegenerateCircleWhenFociCoincide) {
  const Ellipse e{{1.0, 1.0}, {1.0, 1.0}, 2.0};
  EXPECT_DOUBLE_EQ(e.semi_minor(), 2.0);
  // Every point at distance 2 from the focus is on the level set.
  EXPECT_NEAR(e.level({3.0, 1.0}), 0.0, 1e-12);
}

TEST(EllipseTest, LevelSignSeparatesInsideOutside) {
  const Ellipse e{{-3.0, 0.0}, {3.0, 0.0}, 5.0};
  EXPECT_LT(e.level({0.0, 0.0}), 0.0);   // centre inside
  EXPECT_GT(e.level({0.0, 10.0}), 0.0);  // far point outside
  EXPECT_NEAR(e.level({5.0, 0.0}), 0.0, 1e-12);  // vertex on
}

TEST(EllipseTest, SemiMinorClampsDegenerate) {
  // 2a below the focal distance would give imaginary b; clamp to 0.
  const Ellipse e{{-3.0, 0.0}, {3.0, 0.0}, 2.0};
  EXPECT_DOUBLE_EQ(e.semi_minor(), 0.0);
}

TEST(FocalSumTest, MatchesDistances) {
  EXPECT_DOUBLE_EQ(focal_sum({0.0, 0.0}, {6.0, 0.0}, {3.0, 4.0}), 10.0);
  // Triangle inequality: focal sum is minimal on the focal segment.
  support::Rng rng(23);
  const Point2 a{0.0, 0.0};
  const Point2 b{10.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    const Point2 p{rng.uniform(-20, 20), rng.uniform(-20, 20)};
    EXPECT_GE(focal_sum(a, b, p), distance(a, b) - 1e-12);
  }
}

}  // namespace
}  // namespace bc::geometry
