// Metamorphic rigid-motion invariance of the geometry kernels.
//
// Distances, smallest enclosing disks and anchor-search detours must be
// invariant under translation and rotation; the outputs must transform
// covariantly. Any asymmetry here would silently bias the planners.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/anchor_search.h"
#include "geometry/ellipse.h"
#include "geometry/minidisk.h"
#include "support/rng.h"

namespace bc::geometry {
namespace {

struct RigidMotion {
  double angle;
  Point2 shift;

  Point2 apply(Point2 p) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return Point2{c * p.x - s * p.y, s * p.x + c * p.y} + shift;
  }
};

class RigidMotionTest : public ::testing::TestWithParam<int> {};

TEST_P(RigidMotionTest, SedTransformsCovariantly) {
  support::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const RigidMotion motion{rng.uniform(0.0, 6.28),
                           {rng.uniform(-500, 500), rng.uniform(-500, 500)}};
  std::vector<Point2> pts;
  std::vector<Point2> moved;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
    moved.push_back(motion.apply(pts.back()));
  }
  const Circle original = smallest_enclosing_disk(pts);
  const Circle transformed = smallest_enclosing_disk(moved);
  EXPECT_NEAR(transformed.radius, original.radius, 1e-7);
  EXPECT_TRUE(almost_equal(transformed.center,
                           motion.apply(original.center), 1e-6));
}

TEST_P(RigidMotionTest, AnchorSearchDetourIsInvariant) {
  support::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const RigidMotion motion{rng.uniform(0.0, 6.28),
                           {rng.uniform(-200, 200), rng.uniform(-200, 200)}};
  const Point2 a{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  const Point2 b{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  const Point2 c{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  const double r = rng.uniform(1.0, 20.0);
  const auto original = optimal_point_on_circle(a, b, c, r);
  const auto transformed = optimal_point_on_circle(
      motion.apply(a), motion.apply(b), motion.apply(c), r);
  EXPECT_NEAR(transformed.detour, original.detour, 1e-6);
  // The optimal point itself transforms covariantly (up to reflection
  // symmetry when a == b; detour equality is the strong check).
  EXPECT_NEAR(distance(transformed.point, motion.apply(c)), r, 1e-6);
}

TEST_P(RigidMotionTest, FocalSumIsInvariant) {
  support::Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const RigidMotion motion{rng.uniform(0.0, 6.28),
                           {rng.uniform(-100, 100), rng.uniform(-100, 100)}};
  for (int i = 0; i < 50; ++i) {
    const Point2 f1{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point2 f2{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point2 p{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    ASSERT_NEAR(
        focal_sum(motion.apply(f1), motion.apply(f2), motion.apply(p)),
        focal_sum(f1, f2, p), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RigidMotionTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace bc::geometry
