// Tests for the Theorem 4/5 anchor search: the bisection search must match
// a dense brute-force scan, and the optimum must satisfy the bisector
// property of Theorem 5 and the ellipse-tangency property of Theorem 4.

#include "geometry/anchor_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geometry/ellipse.h"
#include "geometry/segment.h"
#include "support/require.h"
#include "support/rng.h"

namespace bc::geometry {
namespace {

TEST(AnchorSearchTest, ZeroRadiusReturnsCenter) {
  const auto res =
      optimal_point_on_circle({0.0, 0.0}, {10.0, 0.0}, {5.0, 5.0}, 0.0);
  EXPECT_EQ(res.point, (Point2{5.0, 5.0}));
  EXPECT_DOUBLE_EQ(res.detour, focal_sum({0.0, 0.0}, {10.0, 0.0}, {5.0, 5.0}));
}

TEST(AnchorSearchTest, NegativeRadiusRejected) {
  EXPECT_THROW(
      optimal_point_on_circle({0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}, -1.0),
      support::PreconditionError);
}

TEST(AnchorSearchTest, SymmetricCaseLandsOnAxis) {
  // Foci symmetric about the centre: the optimum is the circle point on
  // the segment side, i.e. directly between the foci.
  const Point2 a{-10.0, -5.0};
  const Point2 b{10.0, -5.0};
  const Point2 center{0.0, 0.0};
  const auto res = optimal_point_on_circle(a, b, center, 2.0);
  EXPECT_NEAR(res.point.x, 0.0, 1e-6);
  EXPECT_NEAR(res.point.y, -2.0, 1e-6);
}

TEST(AnchorSearchTest, FociOnOppositeSidesCrossesSegment) {
  // When the segment ab passes through the circle, the optimum lies on it
  // and the detour equals |ab|.
  const Point2 a{-10.0, 0.0};
  const Point2 b{10.0, 0.0};
  const auto res = optimal_point_on_circle(a, b, {0.0, 0.0}, 3.0);
  EXPECT_NEAR(res.detour, distance(a, b), 1e-9);
  EXPECT_NEAR(res.point.y, 0.0, 1e-5);
}

TEST(AnchorSearchTest, DegenerateCoincidentFoci) {
  // A == B: the best circle point is the one closest to the focus.
  const Point2 f{10.0, 0.0};
  const auto res = optimal_point_on_circle(f, f, {0.0, 0.0}, 2.0);
  EXPECT_NEAR(res.point.x, 2.0, 1e-6);
  EXPECT_NEAR(res.point.y, 0.0, 1e-6);
  EXPECT_NEAR(res.detour, 16.0, 1e-9);
}

TEST(AnchorSearchTest, BruteForceReferenceIsConsistent) {
  const auto res = optimal_point_on_circle_brute({-10.0, -5.0}, {10.0, -5.0},
                                                 {0.0, 0.0}, 2.0, 100000);
  EXPECT_NEAR(res.point.x, 0.0, 1e-3);
  EXPECT_NEAR(res.point.y, -2.0, 1e-3);
}

// Property sweep over random geometries: bisection matches brute force.
class AnchorSearchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnchorSearchPropertyTest, MatchesBruteForce) {
  support::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const Point2 a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point2 b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point2 center{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const double radius = rng.uniform(0.1, 50.0);
    const auto fast = optimal_point_on_circle(a, b, center, radius);
    const auto brute =
        optimal_point_on_circle_brute(a, b, center, radius, 30000);
    // The search must be at least as good as the dense scan (up to the
    // scan's own angular resolution).
    ASSERT_LE(fast.detour, brute.detour + 1e-4)
        << "a=" << a << " b=" << b << " c=" << center << " r=" << radius;
    // And the reported detour must be consistent with the point.
    ASSERT_NEAR(fast.detour, focal_sum(a, b, fast.point), 1e-9);
    ASSERT_NEAR(distance(fast.point, center), radius, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnchorSearchPropertyTest,
                         ::testing::Range(0, 8));

TEST(AnchorSearchTheoremTest, OptimumSatisfiesBisectorProperty) {
  // Theorem 5: at the optimum P, the radius CP bisects angle A-P-B —
  // except in the degenerate case where the segment ab crosses the circle
  // (the optimum is then interior to the objective's kink).
  support::Rng rng(99);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 60; ++trial) {
    const Point2 a{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point2 b{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point2 center{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const double radius = rng.uniform(0.5, 10.0);
    // Skip configurations where the chord ab intersects the circle.
    const Segment seg{a, b};
    if (distance_to_segment(seg, center) <= radius + 0.5) continue;
    const auto res = optimal_point_on_circle(a, b, center, radius);
    EXPECT_NEAR(bisector_residual(a, b, center, res.point), 0.0, 1e-4)
        << "trial " << trial;
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(AnchorSearchTheoremTest, OptimumIsEllipseTangency) {
  // Theorem 4: the confocal ellipse through the optimum P touches the
  // circle: every other circle point lies strictly outside that ellipse.
  const Point2 a{-20.0, 3.0};
  const Point2 b{15.0, -8.0};
  const Point2 center{2.0, 30.0};
  const double radius = 6.0;
  const auto res = optimal_point_on_circle(a, b, center, radius);
  const Ellipse tangent_ellipse = Ellipse::through_point(a, b, res.point);
  for (int i = 0; i < 720; ++i) {
    const double theta = i * 3.14159265358979 / 360.0;
    const Point2 q{center.x + radius * std::cos(theta),
                   center.y + radius * std::sin(theta)};
    ASSERT_GE(tangent_ellipse.level(q), -1e-6);
  }
}

}  // namespace
}  // namespace bc::geometry
