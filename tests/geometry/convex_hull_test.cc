// Tests for the monotone-chain convex hull.

#include "geometry/convex_hull.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::geometry {
namespace {

bool point_in_or_on_hull(const std::vector<Point2>& hull, Point2 p) {
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point2 a = hull[i];
    const Point2 b = hull[(i + 1) % hull.size()];
    if ((b - a).cross(p - a) < -1e-9) return false;
  }
  return true;
}

TEST(ConvexHullTest, SmallInputsPassThrough) {
  EXPECT_TRUE(convex_hull({}).empty());
  const std::vector<Point2> one{{1.0, 2.0}};
  EXPECT_EQ(convex_hull(one).size(), 1u);
  const std::vector<Point2> two{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(convex_hull(two).size(), 2u);
}

TEST(ConvexHullTest, SquareWithInteriorPoint) {
  const std::vector<Point2> pts{
      {0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}, {2.0, 2.0}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  // Interior point excluded.
  EXPECT_EQ(std::count(hull.begin(), hull.end(), Point2{2.0, 2.0}), 0);
}

TEST(ConvexHullTest, CollinearEdgePointsDropped) {
  const std::vector<Point2> pts{
      {0.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_EQ(std::count(hull.begin(), hull.end(), Point2{2.0, 0.0}), 0);
}

TEST(ConvexHullTest, DuplicatesTolerated) {
  const std::vector<Point2> pts{
      {0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {1.0, 1.0}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, OutputIsCounterClockwise) {
  const std::vector<Point2> pts{{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0},
                                {0.0, 4.0}};
  const auto hull = convex_hull(pts);
  double signed_area = 0.0;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point2 a = hull[i];
    const Point2 b = hull[(i + 1) % hull.size()];
    signed_area += a.cross(b);
  }
  EXPECT_GT(signed_area, 0.0);
}

TEST(ConvexHullTest, RandomPointsAllContained) {
  support::Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point2> pts;
    for (int i = 0; i < 60; ++i) {
      pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
    }
    const auto hull = convex_hull(pts);
    ASSERT_GE(hull.size(), 3u);
    for (const Point2 p : pts) {
      ASSERT_TRUE(point_in_or_on_hull(hull, p));
    }
  }
}

TEST(HullPerimeterTest, KnownShapes) {
  const std::vector<Point2> square{
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(hull_perimeter(convex_hull(square)), 4.0);
  const std::vector<Point2> segment{{0.0, 0.0}, {3.0, 0.0}};
  EXPECT_DOUBLE_EQ(hull_perimeter(convex_hull(segment)), 6.0);  // out & back
  EXPECT_DOUBLE_EQ(hull_perimeter(std::vector<Point2>{{1.0, 1.0}}), 0.0);
}

}  // namespace
}  // namespace bc::geometry
