// Tests for Welzl's smallest enclosing disk (the paper's Algorithm 1),
// including randomized property sweeps against the brute-force reference.

#include "geometry/minidisk.h"

#include <vector>

#include <gtest/gtest.h>

#include "support/require.h"
#include "support/rng.h"

namespace bc::geometry {
namespace {

TEST(MinidiskTest, EmptyInputRejected) {
  EXPECT_THROW(smallest_enclosing_disk({}), support::PreconditionError);
}

TEST(MinidiskTest, SinglePointIsZeroRadius) {
  const std::vector<Point2> pts{{3.0, 4.0}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_EQ(c.center, pts[0]);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(MinidiskTest, TwoPointsGiveDiametralDisk) {
  const std::vector<Point2> pts{{0.0, 0.0}, {6.0, 8.0}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-9);
  EXPECT_TRUE(almost_equal(c.center, {3.0, 4.0}, 1e-9));
}

TEST(MinidiskTest, EquilateralTriangleCircumcircle) {
  const std::vector<Point2> pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, std::sqrt(3.0)}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_NEAR(c.radius, 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(MinidiskTest, ObtuseTriangleUsesLongestSide) {
  // For an obtuse triangle the SED is the diametral circle of the longest
  // side, not the circumcircle.
  const std::vector<Point2> pts{{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.5}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
  EXPECT_TRUE(almost_equal(c.center, {5.0, 0.0}, 1e-6));
}

TEST(MinidiskTest, DuplicatePointsHandled) {
  const std::vector<Point2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(MinidiskTest, CollinearPointsHandled) {
  const std::vector<Point2> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {7.0, 0.0}, {3.0, 0.0}};
  const Circle c = smallest_enclosing_disk(pts);
  EXPECT_NEAR(c.radius, 3.5, 1e-9);
  EXPECT_TRUE(almost_equal(c.center, {3.5, 0.0}, 1e-9));
}

TEST(MinidiskTest, DeterministicAcrossCalls) {
  support::Rng rng(5);
  std::vector<Point2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  const Circle a = smallest_enclosing_disk(pts);
  const Circle b = smallest_enclosing_disk(pts);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.radius, b.radius);
}

TEST(FitsInRadiusTest, ThresholdBehaviour) {
  const std::vector<Point2> pts{{0.0, 0.0}, {6.0, 8.0}};  // SED radius 5
  EXPECT_TRUE(fits_in_radius(pts, 5.0));
  EXPECT_TRUE(fits_in_radius(pts, 5.1));
  EXPECT_FALSE(fits_in_radius(pts, 4.9));
  EXPECT_TRUE(fits_in_radius({}, 0.0));  // empty set fits trivially
  EXPECT_THROW(fits_in_radius(pts, -1.0), support::PreconditionError);
}

// Property sweep: Welzl agrees with the O(n^4) brute force and encloses
// every input point, across point-set sizes.
class MinidiskPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinidiskPropertyTest, MatchesBruteForceAndEnclosesAll) {
  const int n = GetParam();
  support::Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point2> pts;
    pts.reserve(n);
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
    }
    const Circle fast = smallest_enclosing_disk(pts);
    const Circle brute = smallest_enclosing_disk_brute(pts);
    ASSERT_NEAR(fast.radius, brute.radius, 1e-6)
        << "n=" << n << " trial=" << trial;
    for (const Point2 p : pts) {
      ASSERT_TRUE(fast.contains(p, 1e-7));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinidiskPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21, 34));

// Clustered inputs (many cocircular-ish points) stress the support-set
// logic harder than uniform ones.
TEST(MinidiskPropertyExtraTest, NearCocircularPoints) {
  support::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point2> pts;
    const double radius = rng.uniform(5.0, 20.0);
    for (int i = 0; i < 40; ++i) {
      const double theta = rng.uniform(0.0, 6.283185307);
      const double rr = radius * (1.0 + rng.uniform(-1e-6, 1e-6));
      pts.push_back({rr * std::cos(theta), rr * std::sin(theta)});
    }
    const Circle c = smallest_enclosing_disk(pts);
    EXPECT_NEAR(c.radius, radius, radius * 1e-3);
    for (const Point2 p : pts) ASSERT_TRUE(c.contains(p, 1e-6));
  }
}

}  // namespace
}  // namespace bc::geometry
