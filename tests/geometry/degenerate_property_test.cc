// Degenerate-input property tests for the geometric kernels the planner
// leans on: Welzl's smallest enclosing disk and the Theorem-4/5 anchor
// search. Random fuzz skews deliberately toward the inputs that break
// naive implementations — duplicate-heavy multisets, exactly collinear
// sets, clusters below float noise, coordinates far from the origin, and
// segment/circle placements within epsilon of tangency. Every disk answer
// on small sets is checked against the O(n^4) brute-force reference.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/anchor_search.h"
#include "geometry/minidisk.h"
#include "geometry/point.h"
#include "support/rng.h"

namespace bc::geometry {
namespace {

constexpr double kTol = 1e-7;

// Every point enclosed, and the radius matches the brute-force reference
// (the SED is unique, so the centers must agree too).
void expect_valid_sed(const std::vector<Point2>& points) {
  const Circle disk = smallest_enclosing_disk(points);
  for (const Point2& p : points) {
    EXPECT_LE(distance(disk.center, p), disk.radius + kTol);
  }
  if (points.size() <= 8) {
    const Circle brute = smallest_enclosing_disk_brute(points);
    EXPECT_NEAR(disk.radius, brute.radius, kTol);
    EXPECT_NEAR(disk.center.x, brute.center.x, 1e-5);
    EXPECT_NEAR(disk.center.y, brute.center.y, 1e-5);
  }
}

TEST(DegenerateMinidiskTest, AllPointsIdentical) {
  for (const double c : {0.0, 1.0, -3.5, 1e6}) {
    const std::vector<Point2> points(7, Point2{c, -c});
    const Circle disk = smallest_enclosing_disk(points);
    EXPECT_NEAR(disk.radius, 0.0, kTol);
    EXPECT_NEAR(disk.center.x, c, kTol);
    EXPECT_NEAR(disk.center.y, -c, kTol);
  }
}

TEST(DegenerateMinidiskTest, DuplicateHeavyMultisets) {
  support::Rng rng(1001);
  for (int trial = 0; trial < 50; ++trial) {
    // 2..4 distinct positions, each repeated up to 3 times.
    const std::size_t distinct = 2 + rng.below(3);
    std::vector<Point2> points;
    for (std::size_t i = 0; i < distinct; ++i) {
      const Point2 p{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
      const std::size_t copies = 1 + rng.below(3);
      points.insert(points.end(), copies, p);
    }
    expect_valid_sed(points);
  }
}

TEST(DegenerateMinidiskTest, ExactlyCollinearSets) {
  support::Rng rng(1002);
  for (int trial = 0; trial < 50; ++trial) {
    // Points on a shared line: SED is the diametral disk of the extreme
    // pair. Includes vertical and horizontal lines via the angle sweep.
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const Point2 dir{std::cos(angle), std::sin(angle)};
    const Point2 base{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    std::vector<Point2> points;
    std::vector<double> ts;
    const std::size_t n = 2 + rng.below(7);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = rng.uniform(-20.0, 20.0);
      ts.push_back(t);
      points.push_back({base.x + t * dir.x, base.y + t * dir.y});
    }
    expect_valid_sed(points);
    const auto [lo, hi] = std::minmax_element(ts.begin(), ts.end());
    const Circle disk = smallest_enclosing_disk(points);
    EXPECT_NEAR(disk.radius, (*hi - *lo) / 2.0, kTol);
  }
}

TEST(DegenerateMinidiskTest, ClustersBelowFloatNoise) {
  // Spacings of 1e-9 around a far-from-origin center: catastrophic
  // cancellation territory for circumcenter formulas.
  support::Rng rng(1003);
  for (int trial = 0; trial < 30; ++trial) {
    const Point2 center{rng.uniform(1e3, 1e4), rng.uniform(1e3, 1e4)};
    std::vector<Point2> points;
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({center.x + rng.uniform(-1e-9, 1e-9),
                        center.y + rng.uniform(-1e-9, 1e-9)});
    }
    const Circle disk = smallest_enclosing_disk(points);
    EXPECT_LE(disk.radius, 3e-9);
    // Containment tolerance scales with the coordinate magnitude: the
    // circumcenter arithmetic works on ~1e4 values, so a few hundred ulps
    // (~1e-12 each) of cancellation noise is expected.
    for (const Point2& p : points) {
      EXPECT_LE(distance(disk.center, p), disk.radius + 1e-9);
    }
  }
}

TEST(DegenerateMinidiskTest, RadiusRPairsAtTheFitBoundary) {
  // Two sensors exactly 2r apart are the boundary case of Definition 2:
  // they form a radius-r bundle, and any farther pair does not. This is
  // the decision the bundle enumerator makes millions of times.
  support::Rng rng(1004);
  for (int trial = 0; trial < 50; ++trial) {
    const double r = rng.uniform(0.5, 80.0);
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const Point2 a{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    const Point2 b{a.x + 2.0 * r * std::cos(angle),
                   a.y + 2.0 * r * std::sin(angle)};
    const std::vector<Point2> pair{a, b};
    EXPECT_TRUE(fits_in_radius(pair, r * (1.0 + 1e-9)));
    EXPECT_FALSE(fits_in_radius(pair, r * (1.0 - 1e-6)));
    // Decisional and constructive forms must agree near the boundary.
    const Circle disk = smallest_enclosing_disk(pair);
    EXPECT_NEAR(disk.radius, r, r * 1e-9);
  }
}

TEST(DegenerateMinidiskTest, SmallSetFuzzMatchesBruteForce) {
  support::Rng rng(1005);
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<Point2> points;
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t i = 0; i < n; ++i) {
      // Snap to a coarse grid so duplicates, collinearity, and
      // cocircularity all occur organically.
      points.push_back({std::floor(rng.uniform(-4.0, 4.0)),
                        std::floor(rng.uniform(-4.0, 4.0))});
    }
    expect_valid_sed(points);
  }
}

// --- anchor search -------------------------------------------------------

TEST(DegenerateAnchorSearchTest, CoincidentFociAllPlacements) {
  support::Rng rng(2001);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 c{rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)};
    const double radius = rng.uniform(0.1, 5.0);
    // A == B inside, on, and outside the circle.
    const double dist = rng.uniform(0.0, 3.0 * radius);
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const Point2 a{c.x + dist * std::cos(angle),
                   c.y + dist * std::sin(angle)};
    const AnchorSearchResult best = optimal_point_on_circle(a, a, c, radius);
    // Optimal detour is twice the distance from A to the circle.
    EXPECT_NEAR(best.detour, 2.0 * std::abs(dist - radius), 1e-6);
    EXPECT_NEAR(distance(best.point, c), radius, 1e-6);
  }
}

TEST(DegenerateAnchorSearchTest, NearTangentSegments) {
  // A–B passing within epsilon of the circle on either side: the optimum
  // jumps between "touch the tangency point" and "cross the circle", and
  // the bracketing scan must not lose it in between.
  support::Rng rng(2002);
  for (int trial = 0; trial < 60; ++trial) {
    const double radius = rng.uniform(0.5, 10.0);
    const Point2 c{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    // Horizontal line at height radius * (1 +/- eps) above the center.
    const double eps = rng.uniform(-1e-7, 1e-7);
    const double y = c.y + radius * (1.0 + eps);
    const double span = rng.uniform(2.0, 30.0);
    const Point2 a{c.x - span, y};
    const Point2 b{c.x + span, y};
    const AnchorSearchResult best = optimal_point_on_circle(a, b, c, radius);
    const AnchorSearchResult brute =
        optimal_point_on_circle_brute(a, b, c, radius);
    EXPECT_NEAR(distance(best.point, c), radius, 1e-6);
    EXPECT_LE(best.detour, brute.detour + 1e-6) << "trial " << trial;
    // Within epsilon of tangency the detour is within epsilon of |AB|.
    EXPECT_NEAR(best.detour, distance(a, b), 1e-3 * distance(a, b));
  }
}

TEST(DegenerateAnchorSearchTest, FociOnTheCircle) {
  support::Rng rng(2003);
  for (int trial = 0; trial < 40; ++trial) {
    const double radius = rng.uniform(0.5, 10.0);
    const Point2 c{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const double ta = rng.uniform(0.0, 6.283185307179586);
    const double tb = rng.uniform(0.0, 6.283185307179586);
    const Point2 a{c.x + radius * std::cos(ta), c.y + radius * std::sin(ta)};
    const Point2 b{c.x + radius * std::cos(tb), c.y + radius * std::sin(tb)};
    // A is itself on the circle, so P = A gives detour |AB| — the minimum.
    const AnchorSearchResult best = optimal_point_on_circle(a, b, c, radius);
    EXPECT_NEAR(best.detour, distance(a, b), 1e-6);
  }
}

TEST(DegenerateAnchorSearchTest, TinyAndHugeRadiiMatchBruteForce) {
  support::Rng rng(2004);
  for (int trial = 0; trial < 60; ++trial) {
    const double radius = (trial % 2 == 0) ? rng.uniform(1e-9, 1e-6)
                                           : rng.uniform(100.0, 1e4);
    const Point2 c{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const Point2 a{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)};
    const Point2 b{rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)};
    const AnchorSearchResult best = optimal_point_on_circle(a, b, c, radius);
    const AnchorSearchResult brute =
        optimal_point_on_circle_brute(a, b, c, radius);
    EXPECT_NEAR(distance(best.point, c), radius,
                1e-9 + 1e-9 * radius);
    EXPECT_LE(best.detour, brute.detour + 1e-5 * (1.0 + brute.detour))
        << "trial " << trial << " radius " << radius;
  }
}

}  // namespace
}  // namespace bc::geometry
