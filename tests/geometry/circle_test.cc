// Tests for circle constructions.

#include "geometry/circle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace bc::geometry {
namespace {

TEST(CircleTest, ContainmentWithTolerance) {
  const Circle c{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(c.contains({0.5, 0.5}));
  EXPECT_TRUE(c.contains({1.0, 0.0}));  // boundary
  EXPECT_TRUE(c.contains({1.0 + 1e-12, 0.0}));
  EXPECT_FALSE(c.contains({1.1, 0.0}));
}

TEST(CircleFromTwoTest, DiametralCircle) {
  const Circle c = circle_from_two({0.0, 0.0}, {4.0, 0.0});
  EXPECT_EQ(c.center, (Point2{2.0, 0.0}));
  EXPECT_DOUBLE_EQ(c.radius, 2.0);
  EXPECT_TRUE(c.contains({0.0, 0.0}));
  EXPECT_TRUE(c.contains({4.0, 0.0}));
}

TEST(CircleFromThreeTest, KnownCircumcircle) {
  // Right triangle: circumcentre is the hypotenuse midpoint.
  const auto c = circle_from_three({0.0, 0.0}, {6.0, 0.0}, {0.0, 8.0});
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->center.x, 3.0, 1e-9);
  EXPECT_NEAR(c->center.y, 4.0, 1e-9);
  EXPECT_NEAR(c->radius, 5.0, 1e-9);
}

TEST(CircleFromThreeTest, CollinearReturnsNullopt) {
  EXPECT_FALSE(
      circle_from_three({0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}).has_value());
  EXPECT_FALSE(
      circle_from_three({0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}).has_value());
}

TEST(CircleFromThreeTest, AllVerticesEquidistantProperty) {
  support::Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const auto c = circle_from_three(a, b, p);
    if (!c.has_value()) continue;
    EXPECT_NEAR(distance(c->center, a), c->radius, 1e-6);
    EXPECT_NEAR(distance(c->center, b), c->radius, 1e-6);
    EXPECT_NEAR(distance(c->center, p), c->radius, 1e-6);
  }
}

TEST(CirclesThroughPairTest, CentersPassThroughBothPoints) {
  const Point2 a{0.0, 0.0};
  const Point2 b{2.0, 0.0};
  const double r = 2.0;
  const auto centers = circles_through_pair(a, b, r);
  ASSERT_TRUE(centers.has_value());
  for (const Point2 c : {centers->first, centers->second}) {
    EXPECT_NEAR(distance(c, a), r, 1e-9);
    EXPECT_NEAR(distance(c, b), r, 1e-9);
  }
  // The two centers are mirror images across the chord.
  EXPECT_NEAR(centers->first.y, -centers->second.y, 1e-9);
}

TEST(CirclesThroughPairTest, TooFarApartReturnsNullopt) {
  EXPECT_FALSE(circles_through_pair({0.0, 0.0}, {10.0, 0.0}, 4.9).has_value());
}

TEST(CirclesThroughPairTest, ExactDiameterGivesMidpoint) {
  const auto centers = circles_through_pair({0.0, 0.0}, {4.0, 0.0}, 2.0);
  ASSERT_TRUE(centers.has_value());
  EXPECT_TRUE(almost_equal(centers->first, {2.0, 0.0}, 1e-9));
  EXPECT_TRUE(almost_equal(centers->second, {2.0, 0.0}, 1e-9));
}

TEST(CirclesThroughPairTest, RandomPairsProperty) {
  support::Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    const Point2 a{rng.uniform(0, 100), rng.uniform(0, 100)};
    const Point2 b{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double r = rng.uniform(0.1, 80.0);
    const auto centers = circles_through_pair(a, b, r);
    if (distance(a, b) > 2.0 * r) {
      EXPECT_FALSE(centers.has_value());
      continue;
    }
    ASSERT_TRUE(centers.has_value());
    for (const Point2 c : {centers->first, centers->second}) {
      EXPECT_NEAR(distance(c, a), r, 1e-6);
      EXPECT_NEAR(distance(c, b), r, 1e-6);
    }
  }
}

}  // namespace
}  // namespace bc::geometry
