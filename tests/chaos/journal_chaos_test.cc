// The acceptance sweep from the fault-injection design: run a fixed
// journal workload (plan cache and checkpoint) once cleanly to
// enumerate its fault points, then replay it once per (fault point x
// compatible kind x stickiness) with the fault injected. After every
// replay the journal must either recover every durably-acknowledged
// entry byte-exactly or fail with a structured fault — never load
// corrupt data, never leave temp files behind, and always compact to
// bytes that are a pure function of the surviving entry set.
//
// A final seed-mode sweep mirrors the nightly CI leg: BC_IOFAULT's
// `seed:<n>` derivation is replayed for BC_IOFAULT_SWEEP_SEEDS seeds
// (default small for interactive runs; CI cranks it up).

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "service/plan_cache.h"
#include "sim/checkpoint.h"
#include "support/atomic_file.h"
#include "support/iofault.h"

namespace bc {
namespace {

namespace iofault = support::iofault;
using iofault::Kind;
using iofault::Op;

std::string chaos_path(const char* tag) {
  return ::testing::TempDir() + "journal_chaos_" + tag + "_" +
         std::to_string(::getpid());
}

std::vector<std::string> list_temps(const std::string& path) {
  std::string dir = ".";
  std::string prefix = support::temp_prefix(path);
  const std::size_t slash = prefix.find_last_of('/');
  if (slash != std::string::npos) {
    dir = prefix.substr(0, slash);
    prefix = prefix.substr(slash + 1);
  }
  std::vector<std::string> temps;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return temps;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) temps.push_back(dir + "/" + name);
  }
  ::closedir(handle);
  return temps;
}

void scrub(const std::string& path) {
  iofault::clear();
  std::remove(path.c_str());
  support::remove_stale_temps(path);
}

std::vector<Kind> kinds_for(Op op) {
  std::vector<Kind> kinds;
  for (int k = 1; k < static_cast<int>(Kind::kNumKinds); ++k) {
    if (iofault::kind_applies(static_cast<Kind>(k), op)) {
      kinds.push_back(static_cast<Kind>(k));
    }
  }
  return kinds;
}

// ---------------------------------------------------------------------------
// Plan-cache sweep

const std::vector<std::pair<std::string, std::string>>& cache_entries() {
  static const std::vector<std::pair<std::string, std::string>> entries = {
      {"alpha", "v1|BC|0x0p+0,0x0p+0"},
      {"beta", "v1|SC|0x1p+3,0x0p+0"},
      {"gamma", "v1|BC-OPT|0x0p+0,0x1p-2"},
  };
  return entries;
}

// The fixed workload: two entries + flush (compaction of a fresh file),
// one more entry + flush (an append), then an explicit compaction.
// Returns how many leading entries a *successful* persist acknowledged;
// those must survive recovery no matter what failed afterwards.
struct RunReport {
  std::size_t durable_upto = 0;
};

RunReport run_cache_workload(const std::string& path) {
  RunReport report;
  auto cache = service::PlanCache::open(path);
  // Open performs no guarded I/O on a fresh path; the sweep starts from
  // a clean slate each time, so this must always succeed.
  EXPECT_TRUE(cache.has_value())
      << (cache.has_value() ? "" : cache.fault().message);
  if (!cache.has_value()) return report;
  const auto& entries = cache_entries();
  cache.value().put(entries[0].first, entries[0].second);
  cache.value().put(entries[1].first, entries[1].second);
  if (cache.value().flush().has_value()) report.durable_upto = 2;
  cache.value().put(entries[2].first, entries[2].second);
  if (cache.value().flush().has_value()) report.durable_upto = 3;
  if (cache.value().compact().has_value()) report.durable_upto = 3;
  return report;
}

// The recovery contract checked after every injected failure.
void check_cache_recovery(const std::string& path, const RunReport& report) {
  iofault::clear();
  auto recovered = service::PlanCache::open(path);
  // Our own writers must never corrupt the journal: whatever the fault
  // left on disk, reopening succeeds (at worst a torn tail is dropped).
  ASSERT_TRUE(recovered.has_value()) << recovered.fault().message;
  // Opening garbage-collects any crash-leaked temp.
  EXPECT_TRUE(list_temps(path).empty());

  const auto& entries = cache_entries();
  // Durably acknowledged entries are sacred.
  for (std::size_t i = 0; i < report.durable_upto; ++i) {
    const std::string* payload = recovered.value().lookup(entries[i].first);
    ASSERT_NE(payload, nullptr) << "lost acknowledged entry "
                                << entries[i].first;
    EXPECT_EQ(*payload, entries[i].second);
  }
  // Unacknowledged entries may or may not have landed (the ambiguous
  // crash-after-rename window), but anything present must be byte-exact.
  EXPECT_LE(recovered.value().size(), entries.size());
  std::vector<std::pair<std::string, std::string>> present;
  for (const auto& entry : entries) {
    const std::string* payload = recovered.value().lookup(entry.first);
    if (payload != nullptr) {
      EXPECT_EQ(*payload, entry.second);
      present.push_back(entry);
    }
  }
  EXPECT_EQ(present.size(), recovered.value().size())
      << "journal holds a key the workload never wrote";

  // Byte purity: compacting the survivor must produce exactly the bytes
  // of a clean cache holding the same entry set.
  ASSERT_TRUE(recovered.value().compact().has_value());
  const std::string rebuilt_path = path + ".rebuilt";
  scrub(rebuilt_path);
  auto rebuilt = service::PlanCache::open(rebuilt_path);
  ASSERT_TRUE(rebuilt.has_value());
  for (const auto& entry : present) {
    rebuilt.value().put(entry.first, entry.second);
  }
  ASSERT_TRUE(rebuilt.value().compact().has_value());
  auto survivor_bytes = support::read_file(path);
  auto rebuilt_bytes = support::read_file(rebuilt_path);
  ASSERT_TRUE(survivor_bytes.has_value() && rebuilt_bytes.has_value());
  EXPECT_EQ(survivor_bytes.value(), rebuilt_bytes.value());
  scrub(rebuilt_path);

  // And the journal stays fully usable after healing.
  recovered.value().put("delta", "v1|BC|0x0p+0,0x0p+0");
  EXPECT_TRUE(recovered.value().flush().has_value());
}

TEST(JournalChaosSweepTest, PlanCacheSurvivesEveryFaultPoint) {
  const std::string path = chaos_path("cache_sweep");

  // Phase 1: trace a clean run to enumerate the fault points.
  scrub(path);
  iofault::set_plan(iofault::Plan{});
  const RunReport clean = run_cache_workload(path);
  const std::vector<Op> points = iofault::trace();
  scrub(path);
  ASSERT_EQ(clean.durable_upto, cache_entries().size());
  // compact-on-fresh (5) + append (4) + compact (5)
  ASSERT_GE(points.size(), 10u) << "workload shrank; sweep lost coverage";

  // Phase 2: exhaustive (point x kind x stickiness) replay.
  int cases = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const Kind kind : kinds_for(points[i])) {
      for (const bool sticky : {false, true}) {
        SCOPED_TRACE(std::string(iofault::kind_name(kind)) + "@" +
                     std::to_string(i) + (sticky ? ":sticky" : "") + " (" +
                     iofault::op_name(points[i]) + ")");
        ++cases;
        scrub(path);
        iofault::set_plan({kind, i, sticky});
        const RunReport report = run_cache_workload(path);
        check_cache_recovery(path, report);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  EXPECT_GE(cases, 50) << "sweep domain collapsed";
  scrub(path);
}

// ---------------------------------------------------------------------------
// Checkpoint-journal sweep (same contract, second consumer)

constexpr const char* kSweepId = "chaos-sweep";

const std::vector<std::pair<std::string, std::string>>& ckpt_cells() {
  static const std::vector<std::pair<std::string, std::string>> cells = {
      {sim::cell_key("r=20/alg=BC", 0), "1,0x1.8p+5,0x0p+0"},
      {sim::cell_key("r=20/alg=BC", 1), "1,0x1.9p+5,0x0p+0"},
      {sim::cell_key("r=40/alg=SC", 0), "1,0x1.2p+6,0x1p-1"},
  };
  return cells;
}

RunReport run_ckpt_workload(const std::string& path) {
  RunReport report;
  auto journal = sim::CheckpointJournal::open(path, kSweepId);
  EXPECT_TRUE(journal.has_value())
      << (journal.has_value() ? "" : journal.fault().message);
  if (!journal.has_value()) return report;
  const auto& cells = ckpt_cells();
  journal.value().record(cells[0].first, cells[0].second);
  journal.value().record(cells[1].first, cells[1].second);
  if (journal.value().flush().has_value()) report.durable_upto = 2;
  journal.value().record(cells[2].first, cells[2].second);
  if (journal.value().flush().has_value()) report.durable_upto = 3;
  if (journal.value().compact().has_value()) report.durable_upto = 3;
  return report;
}

void check_ckpt_recovery(const std::string& path, const RunReport& report) {
  iofault::clear();
  auto recovered = sim::CheckpointJournal::open(path, kSweepId);
  ASSERT_TRUE(recovered.has_value()) << recovered.fault().message;
  EXPECT_TRUE(list_temps(path).empty());

  const auto& cells = ckpt_cells();
  for (std::size_t i = 0; i < report.durable_upto; ++i) {
    const std::string* payload = recovered.value().lookup(cells[i].first);
    ASSERT_NE(payload, nullptr) << "lost acknowledged cell "
                                << cells[i].first;
    EXPECT_EQ(*payload, cells[i].second);
  }
  std::size_t present = 0;
  for (const auto& cell : cells) {
    const std::string* payload = recovered.value().lookup(cell.first);
    if (payload != nullptr) {
      EXPECT_EQ(*payload, cell.second);
      ++present;
    }
  }
  EXPECT_EQ(present, recovered.value().size());

  ASSERT_TRUE(recovered.value().compact().has_value());
  const std::string rebuilt_path = path + ".rebuilt";
  scrub(rebuilt_path);
  auto rebuilt = sim::CheckpointJournal::open(rebuilt_path, kSweepId);
  ASSERT_TRUE(rebuilt.has_value());
  for (const auto& cell : cells) {
    const std::string* payload = recovered.value().lookup(cell.first);
    if (payload != nullptr) rebuilt.value().record(cell.first, *payload);
  }
  ASSERT_TRUE(rebuilt.value().compact().has_value());
  auto survivor_bytes = support::read_file(path);
  auto rebuilt_bytes = support::read_file(rebuilt_path);
  ASSERT_TRUE(survivor_bytes.has_value() && rebuilt_bytes.has_value());
  EXPECT_EQ(survivor_bytes.value(), rebuilt_bytes.value());
  scrub(rebuilt_path);
}

TEST(JournalChaosSweepTest, CheckpointJournalSurvivesEveryFaultPoint) {
  const std::string path = chaos_path("ckpt_sweep");
  scrub(path);
  iofault::set_plan(iofault::Plan{});
  const RunReport clean = run_ckpt_workload(path);
  const std::vector<Op> points = iofault::trace();
  scrub(path);
  ASSERT_EQ(clean.durable_upto, ckpt_cells().size());
  ASSERT_GE(points.size(), 10u);

  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const Kind kind : kinds_for(points[i])) {
      for (const bool sticky : {false, true}) {
        SCOPED_TRACE(std::string(iofault::kind_name(kind)) + "@" +
                     std::to_string(i) + (sticky ? ":sticky" : "") + " (" +
                     iofault::op_name(points[i]) + ")");
        scrub(path);
        iofault::set_plan({kind, i, sticky});
        const RunReport report = run_ckpt_workload(path);
        check_ckpt_recovery(path, report);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  scrub(path);
}

// ---------------------------------------------------------------------------
// Seed mode: the nightly sweep's derivation, replayed in-process.

TEST(JournalChaosSweepTest, SeedModeSweepRecoversForEverySeed) {
  std::uint64_t seeds = 10;  // interactive default; nightly CI raises it
  if (const char* env = std::getenv("BC_IOFAULT_SWEEP_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
    ASSERT_GT(seeds, 0u) << "bad BC_IOFAULT_SWEEP_SEEDS";
  }
  const std::string cache_path = chaos_path("cache_seed");
  const std::string ckpt_path = chaos_path("ckpt_seed");
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const iofault::Plan plan = iofault::plan_from_seed(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + " -> " +
                 iofault::kind_name(plan.kind) + "@" +
                 std::to_string(plan.at_op) + (plan.sticky ? ":sticky" : ""));
    scrub(cache_path);
    iofault::set_plan(plan);
    const RunReport cache_report = run_cache_workload(cache_path);
    check_cache_recovery(cache_path, cache_report);
    if (::testing::Test::HasFatalFailure()) return;

    scrub(ckpt_path);
    iofault::set_plan(plan);
    const RunReport ckpt_report = run_ckpt_workload(ckpt_path);
    check_ckpt_recovery(ckpt_path, ckpt_report);
    if (::testing::Test::HasFatalFailure()) return;
  }
  scrub(cache_path);
  scrub(ckpt_path);
}

// ---------------------------------------------------------------------------
// Journal bounds and self-healing specifics

TEST(JournalBoundsTest, CompactedBytesIgnoreInsertionAndFlushHistory) {
  const std::string path_a = chaos_path("pure_a");
  const std::string path_b = chaos_path("pure_b");
  scrub(path_a);
  scrub(path_b);
  // a: incremental appends in one order; b: one bulk flush, reversed.
  auto a = service::PlanCache::open(path_a);
  auto b = service::PlanCache::open(path_b);
  ASSERT_TRUE(a.has_value() && b.has_value());
  a.value().put("k1", "p1");
  ASSERT_TRUE(a.value().flush().has_value());
  a.value().put("k2", "p2");
  ASSERT_TRUE(a.value().flush().has_value());
  a.value().put("k1", "p1b");  // append-mode update: duplicate on disk
  ASSERT_TRUE(a.value().flush().has_value());
  b.value().put("k2", "p2");
  b.value().put("k1", "p1b");
  ASSERT_TRUE(b.value().flush().has_value());
  // Pre-compaction the files differ (a carries history)...
  auto raw_a = support::read_file(path_a);
  auto raw_b = support::read_file(path_b);
  ASSERT_TRUE(raw_a.has_value() && raw_b.has_value());
  EXPECT_NE(raw_a.value(), raw_b.value());
  // ...post-compaction they are byte-identical.
  ASSERT_TRUE(a.value().compact().has_value());
  ASSERT_TRUE(b.value().compact().has_value());
  raw_a = support::read_file(path_a);
  raw_b = support::read_file(path_b);
  ASSERT_TRUE(raw_a.has_value() && raw_b.has_value());
  EXPECT_EQ(raw_a.value(), raw_b.value());
  scrub(path_a);
  scrub(path_b);
}

TEST(JournalBoundsTest, SizeThresholdTriggersCompaction) {
  const std::string path = chaos_path("size_trigger");
  scrub(path);
  service::PlanCacheLimits limits;
  limits.compact_threshold_bytes = 1;  // every sync must compact
  auto cache = service::PlanCache::open(path, limits);
  ASSERT_TRUE(cache.has_value());
  for (int i = 0; i < 5; ++i) {
    cache.value().put("key" + std::to_string(i), "p" + std::to_string(i));
    ASSERT_TRUE(cache.value().flush().has_value());
  }
  EXPECT_EQ(cache.value().compactions(), 5u)
      << "threshold of 1 byte must force a compaction per flush";
  // The file never accumulates duplicate history: reopening finds
  // exactly the live set.
  auto reopened = service::PlanCache::open(path, limits);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened.value().size(), 5u);
  scrub(path);
}

TEST(JournalBoundsTest, FifoEvictionIsDeterministic) {
  const std::string path = chaos_path("fifo");
  scrub(path);
  service::PlanCacheLimits limits;
  limits.max_entries = 2;
  auto cache = service::PlanCache::open(path, limits);
  ASSERT_TRUE(cache.has_value());
  cache.value().put("a", "pa");
  cache.value().put("b", "pb");
  ASSERT_TRUE(cache.value().flush().has_value());
  EXPECT_EQ(cache.value().evictions(), 0u);
  // Re-putting `a` refreshes its insertion sequence, so `b` is now the
  // oldest and is the one evicted when `c` pushes the cache over.
  cache.value().put("a", "pa2");
  cache.value().put("c", "pc");
  ASSERT_TRUE(cache.value().flush().has_value());
  EXPECT_EQ(cache.value().evictions(), 1u);
  EXPECT_EQ(cache.value().size(), 2u);
  EXPECT_EQ(cache.value().lookup("b"), nullptr);
  ASSERT_NE(cache.value().lookup("a"), nullptr);
  EXPECT_EQ(*cache.value().lookup("a"), "pa2");
  ASSERT_NE(cache.value().lookup("c"), nullptr);
  // Reopen under the same limits: the evicted entry is gone from disk.
  auto reopened = service::PlanCache::open(path, limits);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened.value().size(), 2u);
  EXPECT_EQ(reopened.value().lookup("b"), nullptr);
  scrub(path);
}

TEST(JournalBoundsTest, TornTailIsDroppedAndHealedByTheNextFlush) {
  const std::string path = chaos_path("torn_heal");
  scrub(path);
  {
    auto cache = service::PlanCache::open(path);
    ASSERT_TRUE(cache.has_value());
    cache.value().put("k1", "p1");
    cache.value().put("k2", "p2");
    ASSERT_TRUE(cache.value().flush().has_value());
  }
  // Tear the tail the way a mid-append crash would: a final line with
  // no terminating newline.
  {
    std::FILE* raw = std::fopen(path.c_str(), "ab");
    ASSERT_NE(raw, nullptr);
    std::fputs("entry deadbeef k3 torn-partial", raw);
    std::fclose(raw);
  }
  auto healed = service::PlanCache::open(path);
  ASSERT_TRUE(healed.has_value()) << healed.fault().message;
  EXPECT_EQ(healed.value().size(), 2u);
  EXPECT_EQ(healed.value().torn_tails_dropped(), 1u);
  // The next flush must compact (appending after a torn tail would fuse
  // lines), leaving a file that reopens with zero drops.
  healed.value().put("k4", "p4");
  ASSERT_TRUE(healed.value().flush().has_value());
  EXPECT_EQ(healed.value().compactions(), 1u);
  auto clean = service::PlanCache::open(path);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean.value().size(), 3u);
  EXPECT_EQ(clean.value().torn_tails_dropped(), 0u);
  scrub(path);
}

}  // namespace
}  // namespace bc
