// In-process chaos for the bundlecharged daemon: a persistently failing
// cache journal must flip the server into degraded cache-bypass mode
// (header + /statsz flag) instead of crashing it, the first successful
// re-flush must self-heal, and the hung-solve watchdog must cancel an
// overrunning request with a 504 while leaving the worker reusable.
//
// These tests drive the real Server through loopback HTTP with
// support/iofault injecting disk failures underneath the plan cache —
// the same code paths production takes when a disk actually dies.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/plan_cache.h"
#include "service/server.h"
#include "support/iofault.h"

namespace bc {
namespace {

namespace iofault = support::iofault;
using service::HttpResponse;
using service::Server;
using service::ServerOptions;

std::string positions_line(std::size_t n, std::size_t salt = 0) {
  std::string out = "positions=";
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + salt * 1000;
    out += std::to_string((j * 131 + 17) % 997) + "," +
           std::to_string((j * 197 + 5) % 991);
    if (i + 1 < n) out += ";";
  }
  out += "\n";
  return out;
}

std::string small_body(std::size_t salt = 0) {
  return "algorithm=BC\nradius=120\n" + positions_line(40, salt) +
         "depot=0,0\n";
}

HttpResponse must_roundtrip(std::uint16_t port, const std::string& method,
                            const std::string& path,
                            const std::string& body) {
  auto response = service::http_roundtrip(port, method, path, body);
  EXPECT_TRUE(response.has_value()) << response.fault().message;
  return response.has_value() ? response.value() : HttpResponse{};
}

std::uint64_t field_u64(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing in: " << body;
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + needle.size(), nullptr, 10);
}

std::unique_ptr<Server> must_start(ServerOptions options) {
  auto server = Server::start(std::move(options));
  EXPECT_TRUE(server.has_value()) << server.fault().message;
  return server.has_value() ? std::move(server.value()) : nullptr;
}

std::string cache_path(const char* tag) {
  return ::testing::TempDir() + "server_chaos_" + tag + "_" +
         std::to_string(::getpid()) + ".journal";
}

class ServerIofaultTest : public ::testing::Test {
 protected:
  void TearDown() override { iofault::clear(); }
};

TEST_F(ServerIofaultTest, PersistentDiskFaultDegradesCacheAndSelfHeals) {
  const std::string path = cache_path("degraded");
  std::remove(path.c_str());
  ServerOptions options;
  options.workers = 1;
  options.cache_path = path;
  auto server = must_start(std::move(options));
  ASSERT_NE(server, nullptr);
  const std::uint16_t port = server->port();

  // Healthy baseline: a solve lands in the journal without incident.
  const HttpResponse healthy =
      must_roundtrip(port, "POST", "/v1/plan", small_body(0));
  ASSERT_EQ(healthy.status, 200) << healthy.body;
  EXPECT_EQ(healthy.header("x-bc-cache-degraded"), "");
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "cache_flush_failures"), 0u);
    EXPECT_EQ(field_u64(stats.body, "cache_degraded"), 0u);
  }

  // The disk dies and stays dead: every journal write from here on
  // fails. The daemon must keep answering — persistence bypassed, flag
  // raised — rather than crash or 500.
  iofault::set_plan({iofault::Kind::kEio, 0, /*sticky=*/true});
  const HttpResponse degraded =
      must_roundtrip(port, "POST", "/v1/plan", small_body(1));
  ASSERT_EQ(degraded.status, 200) << degraded.body;
  EXPECT_EQ(degraded.header("x-bc-cache-degraded"), "journal");
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "cache_degraded"), 1u);
    EXPECT_GE(field_u64(stats.body, "cache_flush_failures"), 1u);
    EXPECT_EQ(field_u64(stats.body, "degraded_mode_entries"), 1u);
    // /statsz itself carries the degraded header too.
    EXPECT_EQ(stats.header("x-bc-cache-degraded"), "journal");
  }

  // Still degraded on the next request, but the healthy->degraded flip
  // is counted once, not per failure.
  const HttpResponse still =
      must_roundtrip(port, "POST", "/v1/plan", small_body(2));
  ASSERT_EQ(still.status, 200) << still.body;
  EXPECT_EQ(still.header("x-bc-cache-degraded"), "journal");
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "degraded_mode_entries"), 1u);
    EXPECT_GE(field_u64(stats.body, "cache_flush_failures"), 2u);
  }

  // The disk comes back: the first successful flush self-heals, clears
  // the flag, and counts a recovery.
  iofault::clear();
  const HttpResponse recovered =
      must_roundtrip(port, "POST", "/v1/plan", small_body(3));
  ASSERT_EQ(recovered.status, 200) << recovered.body;
  EXPECT_EQ(recovered.header("x-bc-cache-degraded"), "");
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "cache_degraded"), 0u);
    EXPECT_EQ(field_u64(stats.body, "fault_recoveries"), 1u);
  }

  server->stop();
  server.reset();
  // Nothing was lost to the outage: failed flushes kept their records
  // pending, and the healing flush compacted all four solves to disk.
  auto reloaded = service::PlanCache::open(path);
  ASSERT_TRUE(reloaded.has_value()) << reloaded.fault().message;
  EXPECT_EQ(reloaded.value().size(), 4u)
      << "entries from the degraded window were dropped";
  std::remove(path.c_str());
}

TEST_F(ServerIofaultTest, WatchdogKillsOverrunningSolveAndWorkerSurvives) {
  ServerOptions options;
  options.workers = 1;
  options.enable_test_hooks = true;  // unlock stall_ms
  options.watchdog_grace = 2.0;
  options.watchdog_min_window_s = 0.05;  // chaos floor: kill fast
  auto server = must_start(std::move(options));
  ASSERT_NE(server, nullptr);
  const std::uint16_t port = server->port();

  // deadline 50ms, grace 2x => kill at ~100ms; the stall wedges the
  // worker for 1.5s. The watchdog must fire long before the stall ends.
  const std::string wedged_body =
      small_body(0) + "deadline_ms=50\nstall_ms=1500\n";
  const auto start = std::chrono::steady_clock::now();
  const HttpResponse killed =
      must_roundtrip(port, "POST", "/v1/plan", wedged_body);
  EXPECT_EQ(killed.status, 504) << killed.body;
  EXPECT_NE(killed.body.find("watchdog_timeout"), std::string::npos)
      << killed.body;
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "watchdog_kills"), 1u);
    EXPECT_EQ(field_u64(stats.body, "failed"), 1u);
  }
  // The response can only arrive after the stall releases the worker,
  // but never hangs past it.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 10.0) << "watchdog kill did not unwedge the request";

  // The killed worker goes straight back to the pool: with workers=1,
  // this request only completes if that same worker is healthy.
  const HttpResponse next =
      must_roundtrip(port, "POST", "/v1/plan", small_body(1));
  EXPECT_EQ(next.status, 200) << next.body;
  {
    const HttpResponse stats = must_roundtrip(port, "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "watchdog_kills"), 1u);
    EXPECT_EQ(field_u64(stats.body, "completed"), 1u);
  }
}

TEST_F(ServerIofaultTest, WatchdogNeverKillsWithinGraceOrWhenDisabled) {
  // Disabled watchdog: the same overrun shape survives to completion.
  {
    ServerOptions options;
    options.workers = 1;
    options.enable_test_hooks = true;
    options.enable_watchdog = false;
    options.watchdog_min_window_s = 0.05;
    auto server = must_start(std::move(options));
    ASSERT_NE(server, nullptr);
    const HttpResponse response = must_roundtrip(
        server->port(), "POST", "/v1/plan",
        small_body(0) + "deadline_ms=50\nstall_ms=400\n");
    EXPECT_EQ(response.status, 200) << response.body;
    const HttpResponse stats =
        must_roundtrip(server->port(), "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "watchdog_kills"), 0u);
  }
  // Enabled, but the request finishes inside deadline * grace: no kill,
  // and a request with no deadline at all is never killed.
  {
    ServerOptions options;
    options.workers = 1;
    options.enable_test_hooks = true;
    options.watchdog_grace = 100.0;
    options.watchdog_min_window_s = 0.05;
    auto server = must_start(std::move(options));
    ASSERT_NE(server, nullptr);
    const HttpResponse in_grace = must_roundtrip(
        server->port(), "POST", "/v1/plan",
        small_body(0) + "deadline_ms=50\nstall_ms=100\n");
    EXPECT_EQ(in_grace.status, 200) << in_grace.body;
    const HttpResponse no_deadline =
        must_roundtrip(server->port(), "POST", "/v1/plan", small_body(1));
    EXPECT_EQ(no_deadline.status, 200) << no_deadline.body;
    const HttpResponse stats =
        must_roundtrip(server->port(), "GET", "/statsz", "");
    EXPECT_EQ(field_u64(stats.body, "watchdog_kills"), 0u);
  }
}

}  // namespace
}  // namespace bc
