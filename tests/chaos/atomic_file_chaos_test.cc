// Exhaustive fault-point sweep over support/atomic_file: every guarded
// syscall in write_file_atomic and append_file_durable is failed in
// every compatible way, and after each failure the invariants must
// hold:
//
//   * write_file_atomic: the destination holds either the complete old
//     content or the complete new content — never a mix, never a torn
//     file. No temp file survives, except under crash_before_rename
//     (a simulated SIGKILL genuinely leaves its temp) where
//     remove_stale_temps is the documented recovery path.
//   * append_file_durable: the file is always the old content plus some
//     prefix of the appended data (a torn tail at worst) — callers
//     (AppendJournal) treat a failed append as "tail in doubt" and
//     compact.
//
// The sweep enumerates fault points from a traced clean run rather than
// hard-coding indices, so it stays exhaustive if the implementation
// gains or loses syscalls.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/atomic_file.h"
#include "support/iofault.h"

namespace bc {
namespace {

namespace iofault = support::iofault;
using iofault::Kind;
using iofault::Op;

std::string temp_dir() { return ::testing::TempDir(); }

std::string target_path(const char* tag) {
  return temp_dir() + "atomic_chaos_" + tag + "_" + std::to_string(::getpid());
}

// Every sibling of `path` that matches its temp prefix.
std::vector<std::string> list_temps(const std::string& path) {
  std::string dir = ".";
  std::string prefix = support::temp_prefix(path);
  const std::size_t slash = prefix.find_last_of('/');
  if (slash != std::string::npos) {
    dir = prefix.substr(0, slash);
    prefix = prefix.substr(slash + 1);
  }
  std::vector<std::string> temps;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return temps;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) temps.push_back(dir + "/" + name);
  }
  ::closedir(handle);
  return temps;
}

void write_clean(const std::string& path, const std::string& content) {
  iofault::clear();
  ASSERT_TRUE(support::write_file_atomic(path, content).has_value());
}

// All kinds compatible with `op`, per the matrix.
std::vector<Kind> kinds_for(Op op) {
  std::vector<Kind> kinds;
  for (int k = 1; k < static_cast<int>(Kind::kNumKinds); ++k) {
    if (iofault::kind_applies(static_cast<Kind>(k), op)) {
      kinds.push_back(static_cast<Kind>(k));
    }
  }
  return kinds;
}

class AtomicFileChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { iofault::clear(); }
};

TEST_F(AtomicFileChaosTest, WriteFileAtomicSweepNeverTearsOrLeaks) {
  const std::string path = target_path("write_sweep");
  const std::string old_content = "old content line\n";
  const std::string new_content = "replacement content, longer than old\n";

  // Enumerate the fault points of one atomic write via a traced run.
  write_clean(path, old_content);
  iofault::set_plan(iofault::Plan{});  // trace mode
  ASSERT_TRUE(support::write_file_atomic(path, new_content).has_value());
  const std::vector<Op> points = iofault::trace();
  iofault::clear();
  ASSERT_EQ(points.size(), 5u) << "expected open/write/fsync/close/rename";

  int cases = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const Kind kind : kinds_for(points[i])) {
      SCOPED_TRACE(std::string("point ") + std::to_string(i) + " op " +
                   iofault::op_name(points[i]) + " kind " +
                   iofault::kind_name(kind));
      ++cases;
      write_clean(path, old_content);

      iofault::set_plan({kind, i, /*sticky=*/false});
      auto result = support::write_file_atomic(path, new_content);
      const std::uint64_t fired = iofault::injected();
      iofault::clear();

      EXPECT_EQ(fired, 1u);
      // Every injected fault surfaces as a structured fault — including
      // crash_after_rename, whose rename actually committed but whose
      // caller must be told the outcome is unknown.
      ASSERT_FALSE(result.has_value());
      EXPECT_FALSE(result.fault().message.empty());

      auto content = support::read_file(path);
      ASSERT_TRUE(content.has_value());
      if (kind == Kind::kCrashAfterRename) {
        EXPECT_EQ(content.value(), new_content);
      } else {
        EXPECT_EQ(content.value(), old_content);
      }

      if (kind == Kind::kCrashBeforeRename) {
        // The one sanctioned leak: a kill before rename leaves the temp,
        // and remove_stale_temps is the GC that heals it.
        EXPECT_EQ(list_temps(path).size(), 1u);
        EXPECT_EQ(support::remove_stale_temps(path), 1u);
      }
      EXPECT_TRUE(list_temps(path).empty())
          << "temp file leaked: " << list_temps(path).front();
    }
  }
  // The matrix above must actually cover every kind somewhere.
  EXPECT_GE(cases, 9);
  std::remove(path.c_str());
}

TEST_F(AtomicFileChaosTest, AppendDurableSweepLeavesAtWorstATornTail) {
  const std::string path = target_path("append_sweep");
  const std::string base = "base line\n";
  const std::string tail = "appended tail line\n";
  const std::string full = base + tail;

  write_clean(path, base);
  iofault::set_plan(iofault::Plan{});  // trace mode
  ASSERT_TRUE(support::append_file_durable(path, tail).has_value());
  const std::vector<Op> points = iofault::trace();
  iofault::clear();
  ASSERT_EQ(points.size(), 4u) << "expected open/write/fsync/close";

  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const Kind kind : kinds_for(points[i])) {
      SCOPED_TRACE(std::string("point ") + std::to_string(i) + " op " +
                   iofault::op_name(points[i]) + " kind " +
                   iofault::kind_name(kind));
      write_clean(path, base);

      iofault::set_plan({kind, i, /*sticky=*/false});
      auto result = support::append_file_durable(path, tail);
      iofault::clear();
      ASSERT_FALSE(result.has_value());
      // Structured error naming the operation and the path.
      EXPECT_NE(result.fault().message.find("append"), std::string::npos)
          << result.fault().message;
      EXPECT_NE(result.fault().message.find(path), std::string::npos)
          << result.fault().message;

      // Invariant: the base content survives untouched and anything
      // after it is a prefix of the appended data — the torn-tail shape
      // AppendJournal::open is built to drop.
      auto content = support::read_file(path);
      ASSERT_TRUE(content.has_value());
      EXPECT_EQ(content.value().rfind(base, 0), 0u)
          << "append destroyed existing content";
      EXPECT_LE(content.value().size(), full.size());
      EXPECT_EQ(full.rfind(content.value(), 0), 0u)
          << "file is not a prefix of base+tail: " << content.value();
      // Appends never create temp files, so nothing can leak.
      EXPECT_TRUE(list_temps(path).empty());
    }
  }
  std::remove(path.c_str());
}

TEST_F(AtomicFileChaosTest, ShortWriteInjectionActuallyTearsTheTail) {
  // Prove the short-write kind persists a strict prefix (not nothing,
  // not everything) so the journal torn-tail recovery path is exercised
  // by real torn bytes, not just error returns.
  const std::string path = target_path("short_write");
  const std::string base = "header\n";
  const std::string tail = "0123456789\n";
  write_clean(path, base);
  // Fault point 1 is the write (0 is the open).
  iofault::set_plan({Kind::kShortWrite, 1, /*sticky=*/false});
  ASSERT_FALSE(support::append_file_durable(path, tail).has_value());
  iofault::clear();
  auto content = support::read_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_GT(content.value().size(), base.size()) << "nothing was torn on";
  EXPECT_LT(content.value().size(), base.size() + tail.size())
      << "short write persisted everything";
  std::remove(path.c_str());
}

TEST_F(AtomicFileChaosTest, RemoveStaleTempsTouchesOnlyMatchingTemps) {
  const std::string path = target_path("gc");
  const std::string sibling = path + "_sibling";
  write_clean(path, "live\n");
  write_clean(sibling, "sibling\n");
  const std::string stale_a = support::temp_prefix(path) + "1234";
  const std::string stale_b = support::temp_prefix(path) + "zz";
  write_clean(stale_a, "stale\n");
  write_clean(stale_b, "stale\n");

  EXPECT_EQ(support::remove_stale_temps(path), 2u);
  EXPECT_FALSE(support::file_exists(stale_a));
  EXPECT_FALSE(support::file_exists(stale_b));
  EXPECT_TRUE(support::file_exists(path));
  EXPECT_TRUE(support::file_exists(sibling));
  EXPECT_EQ(support::remove_stale_temps(path), 0u);
  std::remove(path.c_str());
  std::remove(sibling.c_str());
}

}  // namespace
}  // namespace bc
