// The fault-injection layer itself: spec parsing, the kind/op
// compatibility matrix, trace mode, exact-index targeting, sticky
// semantics, and seed-derived plans. Everything here is pure in-memory
// state machinery — no file I/O — so the sweep tests in this directory
// can lean on it without re-proving it.
//
// These tests mutate process-wide injection state; every test restores
// the disabled default with iofault::clear() before returning so the
// rest of the binary runs clean.

#include <cstdlib>

#include <gtest/gtest.h>

#include "support/iofault.h"

namespace bc {
namespace {

namespace iofault = support::iofault;
using iofault::Kind;
using iofault::Op;

class IofaultTest : public ::testing::Test {
 protected:
  // The disabled-state assertions depend on BC_IOFAULT being absent;
  // scrub it so a sweep wrapper's environment cannot leak in.
  void SetUp() override { ::unsetenv("BC_IOFAULT"); }
  void TearDown() override { iofault::clear(); }
};

TEST_F(IofaultTest, KindAppliesMatrix) {
  // ENOSPC: the filesystem runs out of space on open (temp creation)
  // or write, never on close/rename.
  EXPECT_TRUE(iofault::kind_applies(Kind::kEnospc, Op::kOpen));
  EXPECT_TRUE(iofault::kind_applies(Kind::kEnospc, Op::kWrite));
  EXPECT_FALSE(iofault::kind_applies(Kind::kEnospc, Op::kFsync));
  EXPECT_FALSE(iofault::kind_applies(Kind::kEnospc, Op::kRename));
  // EIO: any data-path op.
  EXPECT_TRUE(iofault::kind_applies(Kind::kEio, Op::kOpen));
  EXPECT_TRUE(iofault::kind_applies(Kind::kEio, Op::kWrite));
  EXPECT_TRUE(iofault::kind_applies(Kind::kEio, Op::kFsync));
  EXPECT_FALSE(iofault::kind_applies(Kind::kEio, Op::kClose));
  // Short write is a write-only phenomenon.
  EXPECT_TRUE(iofault::kind_applies(Kind::kShortWrite, Op::kWrite));
  EXPECT_FALSE(iofault::kind_applies(Kind::kShortWrite, Op::kOpen));
  EXPECT_FALSE(iofault::kind_applies(Kind::kShortWrite, Op::kFsync));
  // fsync/close failures hit exactly their own op class.
  EXPECT_TRUE(iofault::kind_applies(Kind::kFsyncFail, Op::kFsync));
  EXPECT_FALSE(iofault::kind_applies(Kind::kFsyncFail, Op::kWrite));
  EXPECT_TRUE(iofault::kind_applies(Kind::kCloseFail, Op::kClose));
  EXPECT_FALSE(iofault::kind_applies(Kind::kCloseFail, Op::kFsync));
  // All three rename kinds target the rename commit point only.
  for (Kind kind : {Kind::kRenameFail, Kind::kCrashBeforeRename,
                    Kind::kCrashAfterRename}) {
    EXPECT_TRUE(iofault::kind_applies(kind, Op::kRename));
    EXPECT_FALSE(iofault::kind_applies(kind, Op::kWrite));
    EXPECT_FALSE(iofault::kind_applies(kind, Op::kClose));
  }
  // kNone applies nowhere.
  for (int op = 0; op < static_cast<int>(Op::kNumOps); ++op) {
    EXPECT_FALSE(iofault::kind_applies(Kind::kNone, static_cast<Op>(op)));
  }
}

TEST_F(IofaultTest, ParsePlanAcceptsTheDocumentedSpecs) {
  iofault::Plan plan;
  ASSERT_TRUE(iofault::parse_plan("enospc@7", &plan));
  EXPECT_EQ(plan.kind, Kind::kEnospc);
  EXPECT_EQ(plan.at_op, 7u);
  EXPECT_FALSE(plan.sticky);

  ASSERT_TRUE(iofault::parse_plan("eio@3:sticky", &plan));
  EXPECT_EQ(plan.kind, Kind::kEio);
  EXPECT_EQ(plan.at_op, 3u);
  EXPECT_TRUE(plan.sticky);

  ASSERT_TRUE(iofault::parse_plan("crash_before_rename@0", &plan));
  EXPECT_EQ(plan.kind, Kind::kCrashBeforeRename);

  ASSERT_TRUE(iofault::parse_plan("trace", &plan));
  EXPECT_EQ(plan.kind, Kind::kNone);

  // seed:N must match the in-process derivation exactly.
  ASSERT_TRUE(iofault::parse_plan("seed:42", &plan));
  const iofault::Plan derived = iofault::plan_from_seed(42);
  EXPECT_EQ(plan.kind, derived.kind);
  EXPECT_EQ(plan.at_op, derived.at_op);
  EXPECT_EQ(plan.sticky, derived.sticky);
}

TEST_F(IofaultTest, ParsePlanRejectsMalformedSpecs) {
  iofault::Plan plan;
  const char* bad[] = {
      "",          "enospc",      "enospc@",   "@7",
      "bogus@1",   "enospc@x",    "enospc@1:", "enospc@1:bogus",
      "seed:",     "seed:x",      "none@1",    "eio@-1",
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(iofault::parse_plan(spec, &plan)) << "accepted: " << spec;
  }
}

TEST_F(IofaultTest, TraceModeCountsWithoutInjecting) {
  iofault::set_plan(iofault::Plan{});  // kNone = trace-only
  EXPECT_EQ(iofault::arm(Op::kOpen), Kind::kNone);
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);
  EXPECT_EQ(iofault::arm(Op::kFsync), Kind::kNone);
  EXPECT_EQ(iofault::arm(Op::kClose), Kind::kNone);
  EXPECT_EQ(iofault::arm(Op::kRename), Kind::kNone);
  EXPECT_EQ(iofault::ops_observed(), 5u);
  EXPECT_EQ(iofault::injected(), 0u);
  const std::vector<Op> trace = iofault::trace();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0], Op::kOpen);
  EXPECT_EQ(trace[4], Op::kRename);
}

TEST_F(IofaultTest, TargetedInjectionFiresExactlyOnce) {
  iofault::set_plan({Kind::kEnospc, 1, /*sticky=*/false});
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);    // index 0
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kEnospc);  // index 1: fires
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);    // index 2
  EXPECT_EQ(iofault::injected(), 1u);
  EXPECT_EQ(iofault::ops_observed(), 3u);
}

TEST_F(IofaultTest, IncompatibleOpAtTargetIndexStaysClean) {
  // fsync_fail aimed at index 0, but index 0 is a write: the index is
  // consumed without injection and the plan never fires.
  iofault::set_plan({Kind::kFsyncFail, 0, /*sticky=*/false});
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);
  EXPECT_EQ(iofault::arm(Op::kFsync), Kind::kNone);  // index 1 != 0
  EXPECT_EQ(iofault::injected(), 0u);
}

TEST_F(IofaultTest, StickyFailsEveryCompatibleOpFromIndexOn) {
  iofault::set_plan({Kind::kEio, 1, /*sticky=*/true});
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);  // index 0 < at_op
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kEio);
  EXPECT_EQ(iofault::arm(Op::kFsync), Kind::kEio);
  EXPECT_EQ(iofault::arm(Op::kClose), Kind::kNone);  // EIO skips close
  EXPECT_EQ(iofault::arm(Op::kOpen), Kind::kEio);
  EXPECT_EQ(iofault::injected(), 3u);
}

TEST_F(IofaultTest, SeedDerivationIsDeterministicAndNeverKNone) {
  bool saw_difference = false;
  iofault::Plan first = iofault::plan_from_seed(0);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const iofault::Plan a = iofault::plan_from_seed(seed);
    const iofault::Plan b = iofault::plan_from_seed(seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.at_op, b.at_op);
    EXPECT_EQ(a.sticky, b.sticky);
    EXPECT_NE(a.kind, Kind::kNone) << "seed " << seed << " injects nothing";
    EXPECT_LT(static_cast<int>(a.kind), static_cast<int>(Kind::kNumKinds));
    if (a.kind != first.kind || a.at_op != first.at_op ||
        a.sticky != first.sticky) {
      saw_difference = true;
    }
  }
  EXPECT_TRUE(saw_difference) << "64 seeds all derived the same plan";
}

TEST_F(IofaultTest, ClearResetsAllRecordedState) {
  iofault::set_plan({Kind::kEio, 0, /*sticky=*/true});
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kEio);
  iofault::clear();
  // Disabled again (BC_IOFAULT is unset in the test environment): arms
  // pass through without counting.
  EXPECT_EQ(iofault::arm(Op::kWrite), Kind::kNone);
  EXPECT_EQ(iofault::ops_observed(), 0u);
  EXPECT_EQ(iofault::injected(), 0u);
  EXPECT_TRUE(iofault::trace().empty());
}

TEST_F(IofaultTest, NamesAreStableForSweepOutput) {
  EXPECT_STREQ(iofault::op_name(Op::kRename), "rename");
  EXPECT_STREQ(iofault::op_name(Op::kFsync), "fsync");
  EXPECT_STREQ(iofault::kind_name(Kind::kEnospc), "enospc");
  EXPECT_STREQ(iofault::kind_name(Kind::kCrashAfterRename),
               "crash_after_rename");
  // Every name round-trips through parse_plan (the sweep logs specs).
  for (int k = 1; k < static_cast<int>(Kind::kNumKinds); ++k) {
    const Kind kind = static_cast<Kind>(k);
    iofault::Plan plan;
    const std::string spec = std::string(iofault::kind_name(kind)) + "@5";
    ASSERT_TRUE(iofault::parse_plan(spec, &plan)) << spec;
    EXPECT_EQ(plan.kind, kind) << spec;
  }
}

}  // namespace
}  // namespace bc
