#!/usr/bin/env python3
"""Summarise a bc-trace JSONL journal (written via --trace-out).

Usage:
    tools/trace_summary.py trace.jsonl [--top 10] [--tree]

Prints, per span name: call count, total/mean/max duration, and the
attribute keys seen. With --tree, additionally reprints the journal as an
indented call tree in sequence order. Works on both steady- and
virtual-clock journals (virtual durations are synthetic step counts, but
call counts and the tree are exact either way).

When the journal contains bundlecharged spans (``service.*``), a service
layer section is appended: the plan-request funnel split by how each
request was served (cold solve / cache hit / incremental patch), the
cache hit rate, and the patch attempt outcomes by verdict — the
at-a-glance answer to "is the fast path actually taking requests".
"""

import argparse
import json
import sys


def load_journal(path):
    header = None
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                sys.exit(f"{path}:{lineno}: invalid JSON ({err})")
            if lineno == 1:
                if obj.get("schema") != "bc-trace":
                    sys.exit(f"{path}: not a bc-trace journal "
                             f"(schema={obj.get('schema')!r})")
                if obj.get("version") != 1:
                    sys.exit(f"{path}: unknown bc-trace version "
                             f"{obj.get('version')!r} (known: 1)")
                header = obj
            else:
                records.append(obj)
    if header is None:
        sys.exit(f"{path}: empty journal (missing header line)")
    return header, records


def duration_ns(record):
    if record.get("type") == "span":
        return record["t1_ns"] - record["t0_ns"]
    return 0


def summarize(records):
    stats = {}
    for rec in records:
        name = rec["name"]
        entry = stats.setdefault(
            name, {"kind": rec.get("type", "?"), "count": 0, "total_ns": 0,
                   "max_ns": 0, "attr_keys": set()})
        entry["count"] += 1
        dur = duration_ns(rec)
        entry["total_ns"] += dur
        entry["max_ns"] = max(entry["max_ns"], dur)
        entry["attr_keys"].update(rec.get("attrs", {}).keys())
    return stats


def fmt_ns(ns):
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def is_true(value):
    # Span attrs journal booleans as JSON true/false, but keep this robust
    # to older journals that rendered them as strings.
    return value is True or value == "true"


def print_service_summary(records, out):
    plans = [r for r in records
             if r.get("type") == "span" and r["name"] == "service.plan"]
    replans = [r for r in records
               if r.get("type") == "span" and r["name"] == "service.replan"]
    lookups = [r for r in records
               if r.get("type") == "span" and r["name"] == "service.cache.lookup"]
    patches = [r for r in records
               if r.get("type") == "span"
               and r["name"] == "service.incremental.patch"]
    if not (plans or replans or lookups or patches):
        return

    out.write("\nservice layer:\n")
    if plans:
        served = {"cached": [], "incremental": [], "cold": []}
        degraded = 0
        for rec in plans:
            attrs = rec.get("attrs", {})
            if is_true(attrs.get("cached")):
                served["cached"].append(rec)
            elif is_true(attrs.get("incremental")):
                served["incremental"].append(rec)
            else:
                served["cold"].append(rec)
            if is_true(attrs.get("degraded")):
                degraded += 1
        parts = []
        for how in ("cold", "cached", "incremental"):
            group = served[how]
            if group:
                mean = sum(duration_ns(r) for r in group) // len(group)
                parts.append(f"{how} {len(group)} (mean {fmt_ns(mean)})")
        out.write(f"  plan requests   {len(plans):>6}  "
                  f"{', '.join(parts)}\n")
        if degraded:
            out.write(f"  degraded        {degraded:>6}\n")
    if replans:
        mean = sum(duration_ns(r) for r in replans) // len(replans)
        out.write(f"  replan requests {len(replans):>6}  "
                  f"mean {fmt_ns(mean)}\n")
    if lookups:
        hits = sum(1 for r in lookups
                   if is_true(r.get("attrs", {}).get("hit")))
        out.write(f"  cache lookups   {len(lookups):>6}  "
                  f"hits {hits} ({100.0 * hits / len(lookups):.0f}%)\n")
    if patches:
        verdicts = {}
        for rec in patches:
            verdict = rec.get("attrs", {}).get("verdict", "?")
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
        breakdown = ", ".join(f"{v}={n}"
                              for v, n in sorted(verdicts.items()))
        out.write(f"  patch attempts  {len(patches):>6}  {breakdown}\n")


def print_tree(records, out):
    # Spans are journaled at span end; replay in sequence order and indent
    # by the recorded nesting depth.
    for rec in records:
        indent = "  " * rec.get("depth", 0)
        attrs = rec.get("attrs", {})
        attr_text = ", ".join(f"{k}={v}" for k, v in attrs.items())
        if rec.get("type") == "span":
            out.write(f"{indent}{rec['name']} [{fmt_ns(duration_ns(rec))}]"
                      f"{'  ' + attr_text if attr_text else ''}\n")
        else:
            out.write(f"{indent}* {rec['name']}"
                      f"{'  ' + attr_text if attr_text else ''}\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("journal", help="JSONL file from --trace-out")
    parser.add_argument("--top", type=int, default=0,
                        help="only show the N span names with the largest "
                             "total duration (default: all)")
    parser.add_argument("--tree", action="store_true",
                        help="also print the journal as an indented tree")
    args = parser.parse_args()

    header, records = load_journal(args.journal)
    stats = summarize(records)

    print(f"journal: {args.journal} ({len(records)} records, "
          f"clock={header.get('clock', '?')})")
    rows = sorted(stats.items(),
                  key=lambda kv: (-kv[1]["total_ns"], kv[0]))
    if args.top > 0:
        rows = rows[:args.top]
    name_width = max([len(name) for name, _ in rows], default=4)
    print(f"{'name':<{name_width}}  {'kind':<5} {'count':>7} "
          f"{'total':>10} {'mean':>10} {'max':>10}  attrs")
    for name, entry in rows:
        mean = entry["total_ns"] // entry["count"] if entry["count"] else 0
        keys = ",".join(sorted(entry["attr_keys"]))
        print(f"{name:<{name_width}}  {entry['kind']:<5} "
              f"{entry['count']:>7} {fmt_ns(entry['total_ns']):>10} "
              f"{fmt_ns(mean):>10} {fmt_ns(entry['max_ns']):>10}  {keys}")

    print_service_summary(records, sys.stdout)

    if args.tree:
        print("\ncall tree (sequence order):")
        print_tree(records, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_summary.py ... | head`
        sys.exit(0)
