#!/usr/bin/env python3
"""Compare BENCH_<kernel>.json files against a committed baseline.

Usage:
    tools/check_bench_regression.py --baseline bench/baselines --current out/
        [--threshold 0.25]

Every case present in the baseline must exist in the current results and
must not be slower than ``wall_ms * (1 + threshold)``. Counters that exist
on both sides must match exactly — they are deterministic per build, so a
counter drift means the kernel changed behaviour, not just speed. Exits
non-zero on any regression, on malformed/missing input files, or on an
unknown schema version, printing how to refresh the baseline when the
change is intentional.
"""

import argparse
import json
import pathlib
import sys

# Schema v1: bench/threads/cases. Schema v2 adds an "observability" block
# (metrics snapshot) that this checker ignores; cases diff identically.
KNOWN_SCHEMA_VERSIONS = (1, 2)


class BenchFormatError(ValueError):
    """A BENCH_*.json file that cannot be diffed."""


def load_cases(path):
    try:
        data = json.loads(path.read_text())
    except OSError as err:
        raise BenchFormatError(f"{path}: unreadable ({err})") from err
    except json.JSONDecodeError as err:
        raise BenchFormatError(f"{path}: invalid JSON ({err})") from err
    if not isinstance(data, dict):
        raise BenchFormatError(f"{path}: top level is not a JSON object")
    version = data.get("schema_version")
    if version not in KNOWN_SCHEMA_VERSIONS:
        known = ", ".join(str(v) for v in KNOWN_SCHEMA_VERSIONS)
        raise BenchFormatError(
            f"{path}: unknown schema_version {version!r} (known: {known})")
    cases = {}
    for case in data.get("cases", []):
        if "name" not in case or "wall_ms" not in case:
            raise BenchFormatError(
                f"{path}: case missing 'name'/'wall_ms': {case!r}")
        cases[case["name"]] = case
    return data, cases


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional wall-clock slowdown "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    if not args.baseline.is_dir():
        print(f"error: baseline directory {args.baseline} does not exist",
              file=sys.stderr)
        return 2
    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for base_path in baseline_files:
        cur_path = args.current / base_path.name
        if not cur_path.is_file():
            failures.append(f"{base_path.name}: missing from {args.current}")
            continue
        try:
            base_data, base_cases = load_cases(base_path)
            cur_data, cur_cases = load_cases(cur_path)
        except BenchFormatError as err:
            failures.append(str(err))
            continue
        bench = base_data.get("bench", base_path.stem)
        # A baseline that names a kernel the candidate run did not execute
        # must fail loudly: a silently skipped suite would make every
        # regression in it invisible.
        cur_bench = cur_data.get("bench", cur_path.stem)
        if bench != cur_bench:
            failures.append(
                f"{base_path.name}: baseline benches '{bench}' but the "
                f"current run produced '{cur_bench}' — the kernel named by "
                "the baseline was not run")
            continue
        if not base_cases:
            failures.append(
                f"{base_path.name}: baseline has no cases — nothing would "
                "be checked; refresh or delete the baseline")
            continue
        for name, base_case in base_cases.items():
            cur_case = cur_cases.get(name)
            if cur_case is None:
                failures.append(f"{bench}/{name}: case missing from current run")
                continue
            base_ms = base_case["wall_ms"]
            cur_ms = cur_case["wall_ms"]
            limit = base_ms * (1.0 + args.threshold)
            ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
            status = "ok"
            if cur_ms > limit:
                status = "REGRESSION"
                failures.append(
                    f"{bench}/{name}: {cur_ms:.3f} ms vs baseline "
                    f"{base_ms:.3f} ms ({ratio:.2f}x, limit "
                    f"{1.0 + args.threshold:.2f}x)")
            print(f"{bench:>12}/{name:<16} {cur_ms:10.3f} ms  "
                  f"baseline {base_ms:10.3f} ms  {ratio:5.2f}x  {status}")
            for key, base_val in base_case.get("counters", {}).items():
                cur_val = cur_case.get("counters", {}).get(key)
                if cur_val is not None and cur_val != base_val:
                    failures.append(
                        f"{bench}/{name}: counter '{key}' drifted "
                        f"{base_val} -> {cur_val} (kernel behaviour changed)")

    if failures:
        print("\nperf-smoke failed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf this slowdown or counter change is intentional, refresh the\n"
            "baseline and commit it together with the change:\n"
            "    cmake --build build -j --target bench_perf_kernels\n"
            "    ./build/bench/bench_perf_kernels --out-dir=bench/baselines "
            "--repeats=9\n",
            file=sys.stderr)
        return 1
    print("perf-smoke: all cases within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
