#!/usr/bin/env python3
"""Tests for check_bench_regression.py.

Runs under pytest (CI) or standalone (``python3
tools/test_check_bench_regression.py``) for environments without pytest.
Each test drives the checker through its CLI entry point against
temporary baseline/current directories, asserting on exit codes so the
tests pin exactly what the CI perf-smoke job observes.
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_bench_regression as cbr  # noqa: E402


def _bench_json(wall_ms, schema_version=1, counters=None, extra=None):
    data = {
        "bench": "candidates",
        "schema_version": schema_version,
        "threads": 1,
        "cases": [{
            "name": "n=100",
            "wall_ms": wall_ms,
            "repeats": 3,
            "counters": counters or {"candidates": 74},
        }],
    }
    if extra:
        data.update(extra)
    return json.dumps(data)


def _run(baseline_files, current_files, threshold=0.25):
    """Materialise the two directories and invoke the checker's main()."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        base_dir = root / "baseline"
        cur_dir = root / "current"
        base_dir.mkdir()
        cur_dir.mkdir()
        for name, text in baseline_files.items():
            (base_dir / name).write_text(text)
        for name, text in current_files.items():
            (cur_dir / name).write_text(text)
        argv = sys.argv
        sys.argv = ["check_bench_regression.py",
                    "--baseline", str(base_dir),
                    "--current", str(cur_dir),
                    "--threshold", str(threshold)]
        try:
            return cbr.main()
        finally:
            sys.argv = argv


def test_within_threshold_passes():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": _bench_json(1.1)})
    assert rc == 0


def test_slowdown_beyond_threshold_fails():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": _bench_json(2.0)})
    assert rc == 1


def test_counter_drift_fails_even_when_fast():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json":
               _bench_json(0.5, counters={"candidates": 75})})
    assert rc == 1


def test_missing_baseline_dir_fails():
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        cur_dir = root / "current"
        cur_dir.mkdir()
        (cur_dir / "BENCH_candidates.json").write_text(_bench_json(1.0))
        argv = sys.argv
        sys.argv = ["check_bench_regression.py",
                    "--baseline", str(root / "nope"),
                    "--current", str(cur_dir)]
        try:
            assert cbr.main() == 2
        finally:
            sys.argv = argv


def test_empty_baseline_dir_fails():
    rc = _run({}, {"BENCH_candidates.json": _bench_json(1.0)})
    assert rc == 2


def test_missing_current_file_fails():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)}, {})
    assert rc == 1


def test_unknown_schema_version_fails():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": _bench_json(1.0, schema_version=99)})
    assert rc == 1


def test_invalid_json_fails():
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": "{not json"})
    assert rc == 1


def test_bench_name_mismatch_fails():
    """A baseline naming a kernel absent from the candidate run must fail."""
    renamed = json.loads(_bench_json(1.0))
    renamed["bench"] = "exact_cover"
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": json.dumps(renamed)})
    assert rc == 1


def test_empty_baseline_cases_fails():
    """A baseline with zero cases checks nothing and must not pass."""
    empty = json.loads(_bench_json(1.0))
    empty["cases"] = []
    rc = _run({"BENCH_candidates.json": json.dumps(empty)},
              {"BENCH_candidates.json": _bench_json(1.0)})
    assert rc == 1


def test_v2_current_against_v1_baseline_passes():
    """The bench writer emits schema v2; committed baselines are v1."""
    v2 = _bench_json(1.0, schema_version=2,
                     extra={"observability": {"counters": {"x.calls": 3}}})
    rc = _run({"BENCH_candidates.json": _bench_json(1.0)},
              {"BENCH_candidates.json": v2})
    assert rc == 0


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError:
            failed += 1
            print(f"FAIL {name}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
