#!/usr/bin/env python3
"""Command-line client for the bundlecharged planning daemon.

Talks the daemon's localhost HTTP protocol (DESIGN.md §11) using only the
standard library. Subcommands map one-to-one onto endpoints:

    tools/bundlecharged_client.py health --port 8410
    tools/bundlecharged_client.py stats  --port 8410
    tools/bundlecharged_client.py plan   --port 8410 \
        --positions "10,10;20,20;700,300" --radius 120 --deadline-ms 2000
    tools/bundlecharged_client.py replan --port 8410 \
        --positions "10,10;20,20" --current 500,500 --remaining "0:1.5;1:0.5"

``plan``/``replan`` read ``--positions-file`` (one ``x,y`` per line) as an
alternative to ``--positions``. The response body (JSON) is printed to
stdout unchanged. Exit status: 0 on HTTP 200, 3 on 503 (overloaded — the
``Retry-After`` header is echoed to stderr), 4 on 504 (deadline exceeded),
1 on any other error.

``--retries N`` (default 0: fail fast) re-sends a request shed with 503
up to N times, sleeping the server's advertised ``Retry-After`` between
attempts — polite backpressure cooperation, never a hot retry loop. Only
503s are retried: they promise the identical request can succeed later,
which a 4xx/504 does not.

``plan --repeat N`` sends the request N times and prints every response;
``--mutate K`` additionally nudges K sensors by small deterministic
offsets before each resend, so repeat ``i`` is a distinct-but-nearby
deployment. Together they generate the near-duplicate request stream
that exercises the daemon's incremental fast path (repeat 0 cold-solves
and becomes the base; later repeats should patch). The mutation schedule
depends only on the repeat index, so two daemons fed the same flags see
byte-identical request streams — which is what the CI determinism leg
compares.
"""

import argparse
import http.client
import json
import pathlib
import sys
import time


def positions_text(args):
    if args.positions_file:
        points = [
            line.strip()
            for line in pathlib.Path(args.positions_file).read_text().splitlines()
            if line.strip()
        ]
        return ";".join(points)
    if args.positions:
        return args.positions
    sys.exit("error: --positions or --positions-file is required")


def mutate_positions(text, repeat, k):
    """Nudge k sensors of the ``x,y;...`` string for repeat index ``repeat``.

    Pure function of (text, repeat, k): the LCG-free integer schedule keeps
    the stream reproducible across runs and machines.
    """
    points = []
    for pair in text.split(";"):
        x, y = pair.split(",")
        points.append([float(x), float(y)])
    n = len(points)
    for m in range(k):
        idx = (repeat * 97 + m * 41 + 3) % n
        points[idx][0] += (repeat * 31 + m * 17) % 51 - 25
        points[idx][1] += (repeat * 13 + m * 29) % 51 - 25
    return ";".join(f"{x:g},{y:g}" for x, y in points)


def build_body(args, positions=None):
    lines = []
    if args.profile:
        lines.append(f"profile={args.profile}")
    if args.algorithm:
        lines.append(f"algorithm={args.algorithm}")
    if args.radius is not None:
        lines.append(f"radius={args.radius:g}")
    if args.deadline_ms is not None:
        lines.append(f"deadline_ms={args.deadline_ms:g}")
    if args.demand is not None:
        lines.append(f"demand={args.demand:g}")
    lines.append(f"depot={args.depot}")
    lines.append("positions=" +
                 (positions if positions is not None else positions_text(args)))

    if args.command == "replan":
        lines.append(f"current={args.current}")
        if args.remaining:
            lines.append(f"remaining={args.remaining}")
    return "\n".join(lines) + "\n"


def roundtrip(args, method, path, body):
    connection = http.client.HTTPConnection("127.0.0.1", args.port,
                                            timeout=args.timeout)
    try:
        connection.request(method, path, body=body.encode(),
                           headers={"Content-Type": "text/plain"})
        response = connection.getresponse()
        payload = response.read().decode(errors="replace")
    except (ConnectionError, OSError) as err:
        sys.exit(f"error: cannot reach bundlecharged on port {args.port}: "
                 f"{err}")
    finally:
        connection.close()
    return response, payload


def request(args, method, path, body=""):
    retries = getattr(args, "retries", 0)
    attempt = 0
    while True:
        response, payload = roundtrip(args, method, path, body)
        if response.status != 503 or attempt >= retries:
            break
        # Shed by admission control: honour the server's advisory backoff
        # before re-sending the identical request.
        try:
            retry_after_s = float(response.getheader("Retry-After", "1"))
        except ValueError:
            retry_after_s = 1.0
        attempt += 1
        print(f"overloaded (503); retry {attempt}/{retries} in "
              f"{retry_after_s:g} s", file=sys.stderr)
        time.sleep(max(0.0, retry_after_s))

    print(payload, end="" if payload.endswith("\n") else "\n")
    if response.status == 200:
        return 0
    if response.status == 503:
        retry_after = response.getheader("Retry-After", "?")
        print(f"server overloaded; retry after {retry_after} s",
              file=sys.stderr)
        return 3
    if response.status == 504:
        print("deadline exceeded before a plan was ready", file=sys.stderr)
        return 4
    print(f"HTTP {response.status} {response.reason}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, required=True,
                        help="bundlecharged port (it prints this at startup)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in seconds (default 30)")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-send a 503-shed request up to N times, "
                             "sleeping the server's Retry-After between "
                             "attempts (default 0: fail fast)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("health", help="GET /healthz")
    sub.add_parser("stats", help="GET /statsz")

    for name, help_text in (("plan", "POST /v1/plan"),
                            ("replan", "POST /v1/replan")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--positions",
                         help="semicolon-separated x,y pairs")
        cmd.add_argument("--positions-file",
                         help="file with one x,y pair per line")
        cmd.add_argument("--depot", default="0,0", help="depot x,y")
        cmd.add_argument("--profile", default="",
                         help="named profile (default icdcs2019)")
        cmd.add_argument("--algorithm", default="",
                         help="planning algorithm (default BC)")
        cmd.add_argument("--radius", type=float, default=None,
                         help="bundle radius in metres")
        cmd.add_argument("--deadline-ms", type=float, default=None,
                         help="request deadline; expiry yields a degraded "
                              "anytime plan (plan) or 504 (replan)")
        cmd.add_argument("--demand", type=float, default=None,
                         help="per-sensor energy demand in joules")
        if name == "plan":
            cmd.add_argument("--repeat", type=int, default=1, metavar="N",
                             help="send the request N times, printing every "
                                  "response (default 1)")
            cmd.add_argument("--mutate", type=int, default=0, metavar="K",
                             help="with --repeat: nudge K sensors by small "
                                  "deterministic offsets before each resend, "
                                  "producing a near-duplicate stream for the "
                                  "incremental fast path (default 0: exact "
                                  "duplicates)")
        if name == "replan":
            cmd.add_argument("--current", default="0,0",
                             help="charger's current x,y")
            cmd.add_argument("--remaining", default="",
                             help="id:deficit pairs, semicolon-separated "
                                  "(empty = all sensors at full demand)")

    args = parser.parse_args()
    if args.command == "health":
        return request(args, "GET", "/healthz")
    if args.command == "stats":
        return request(args, "GET", "/statsz")
    if args.command == "plan" and args.repeat > 1:
        base = positions_text(args)
        for repeat in range(args.repeat):
            positions = (mutate_positions(base, repeat, args.mutate)
                         if args.mutate > 0 and repeat > 0 else base)
            status = request(args, "POST", "/v1/plan",
                             build_body(args, positions))
            if status != 0:
                return status
        return 0
    path = "/v1/plan" if args.command == "plan" else "/v1/replan"
    return request(args, "POST", path, build_body(args))


if __name__ == "__main__":
    sys.exit(main())
