#!/usr/bin/env python3
"""Metric-discipline lint: no raw Euclidean distances on movement paths.

Movement distances in the planner stack must go through the MetricSpace
abstraction (net/metric.h): either net::metric_distance(metric, a, b) or
an explicit `metric == nullptr` fast-path ternary. A raw
geometry::distance / geometry::distance_squared call in src/tour, src/tsp
or src/sim silently hardwires free-space movement and breaks graph-world
support — exactly the bug class the differential oracle suite exists to
catch, except the oracle only sees it when a test happens to cross the
call site. This lint fails the build the moment such a call appears.

Legitimate Euclidean geometry is exempted *explicitly*:

  * a `// metric-exempt: <reason>` comment on the call line or within the
    three lines above it (radio physics, geometric predicates, proposal
    heuristics whose acceptance is metric-judged), or
  * a `metric == nullptr` guard in the same window (the bit-exact
    null-metric fast-path idiom).

Run from the repository root:  python3 tools/check_metric_discipline.py
Exit status 0 = clean, 1 = violations (listed file:line), 2 = usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CHECKED_DIRS = ("src/tour", "src/tsp", "src/sim")
SOURCE_SUFFIXES = {".cc", ".h"}
CALL_RE = re.compile(r"\bgeometry::distance(_squared)?\s*\(")
EXEMPT_RE = re.compile(r"metric-exempt")
NULL_GUARD_RE = re.compile(r"metric\s*==\s*nullptr")
WINDOW = 3  # lines above the call that may carry the exemption


def find_violations(root: pathlib.Path) -> list[str]:
    violations: list[str] = []
    for directory in CHECKED_DIRS:
        base = root / directory
        if not base.is_dir():
            violations.append(f"{directory}: checked directory missing")
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            lines = path.read_text(encoding="utf-8").splitlines()
            for i, line in enumerate(lines):
                if not CALL_RE.search(line):
                    continue
                window = lines[max(0, i - WINDOW) : i + 1]
                if any(EXEMPT_RE.search(w) for w in window):
                    continue
                if any(NULL_GUARD_RE.search(w) for w in window):
                    continue
                rel = path.relative_to(root)
                violations.append(f"{rel}:{i + 1}: {line.strip()}")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root", file=sys.stderr)
        return 2

    violations = find_violations(root)
    if violations:
        print(
            "metric-discipline violations (route movement distances through\n"
            "net::metric_distance, or annotate genuine geometry with a\n"
            "`// metric-exempt: <reason>` comment):\n",
            file=sys.stderr,
        )
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("metric discipline clean: all raw distance calls are exempted")
    return 0


if __name__ == "__main__":
    sys.exit(main())
