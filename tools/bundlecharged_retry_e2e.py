#!/usr/bin/env python3
"""End-to-end shed-then-succeed test for the client's --retries flag.

Boots a real bundlecharged with one worker and a one-slot queue, wedges
both with stalled requests (the --enable-test-hooks stall_ms knob), then
runs tools/bundlecharged_client.py with --retries against the saturated
daemon. The first attempt(s) must be shed with 503 + Retry-After; the
client must sleep the advertised backoff and eventually land a 200 once
the stalled work drains. Run by ctest as `client_retry_e2e`:

    tools/bundlecharged_retry_e2e.py --daemon build/src/bundlecharged \
        --client tools/bundlecharged_client.py
"""

import argparse
import http.client
import re
import signal
import subprocess
import sys
import threading
import time

STALL_MS = 2000
POSITIONS = ";".join(
    f"{(j * 131 + 17) % 997},{(j * 197 + 5) % 991}" for j in range(40)
)


def fail(daemon, message):
    daemon.terminate()
    sys.exit(f"FAIL: {message}")


def post_plan(port, body, timeout=30.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("POST", "/v1/plan", body=body.encode(),
                           headers={"Content-Type": "text/plain"})
        response = connection.getresponse()
        return response.status, response.read().decode(errors="replace")
    finally:
        connection.close()


def stats_field(port, name):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        connection.request("GET", "/statsz")
        body = connection.getresponse().read().decode(errors="replace")
    finally:
        connection.close()
    match = re.search(rf'"{name}": (\d+)', body)
    if match is None:
        sys.exit(f"FAIL: /statsz has no field {name}: {body}")
    return int(match.group(1))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--daemon", required=True)
    parser.add_argument("--client", required=True)
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.daemon, "--port", "0", "--workers", "1",
         "--queue-capacity", "1", "--enable-test-hooks"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = daemon.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    if match is None:
        fail(daemon, f"daemon did not announce a port: {line!r}")
    port = int(match.group(1))

    try:
        # Wedge the single worker and the single queue slot.
        stall_body = (f"algorithm=BC\nradius=120\nstall_ms={STALL_MS}\n"
                      f"positions={POSITIONS}\ndepot=0,0\n")
        stalled = [
            threading.Thread(target=post_plan, args=(port, stall_body))
            for _ in range(2)
        ]
        stalled[0].start()
        deadline = time.monotonic() + 30.0
        # Wait for the worker to *pop* the first stalled request (admitted
        # and queue drained) — starting the second one while the first
        # still holds the queue slot would shed it and wedge nothing.
        while (stats_field(port, "accepted") < 1
               or stats_field(port, "queue_depth") > 0):
            if time.monotonic() > deadline:
                fail(daemon, "first stalled request was never admitted")
            time.sleep(0.01)
        stalled[1].start()
        while stats_field(port, "queue_depth") < 1:
            if time.monotonic() > deadline:
                fail(daemon, "queue slot never filled")
            time.sleep(0.01)

        # The saturated daemon must shed the client at least once; with
        # --retries the client honours Retry-After and ultimately lands.
        client = subprocess.run(
            [sys.executable, args.client, "--port", str(port),
             "--retries", "8", "plan", "--positions", POSITIONS,
             "--radius", "120"],
            capture_output=True, text=True, timeout=90)
        for thread in stalled:
            thread.join()

        if client.returncode != 0:
            fail(daemon, f"client failed (exit {client.returncode}):\n"
                         f"stdout: {client.stdout}\nstderr: {client.stderr}")
        if '"plan"' not in client.stdout:
            fail(daemon, f"no plan in client output: {client.stdout}")
        if "retry" not in client.stderr:
            fail(daemon, "client was never shed — overload did not happen; "
                         f"stderr: {client.stderr}")
        shed = stats_field(port, "shed")
        completed = stats_field(port, "completed")
        if shed < 1:
            fail(daemon, f"daemon sheds not recorded (shed={shed})")
        if completed != 3:
            fail(daemon, f"expected 3 completions (2 stalled + client), "
                         f"got {completed}")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()

    print(f"OK: client was shed then succeeded (shed={shed}, "
          f"completed={completed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
